//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.5 API this workspace's benches
//! use: `Criterion::default()` with the `warm_up_time` / `measurement_time`
//! / `sample_size` builders, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros (both the simple and the
//! `name/config/targets` forms).
//!
//! Measurement is a plain calibrated timing loop: warm up for the
//! configured duration to estimate per-iteration cost, then run
//! `sample_size` samples sized to fill the measurement window and report
//! the mean, minimum, and maximum per-iteration time on stdout. No plots,
//! no statistics machinery, no baseline comparison — enough to see relative
//! performance and keep `cargo bench` compiling offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Sets how long each benchmark warms up before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the target total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets how many samples are collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A named benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function.into(), parameter) }
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> Self {
        id.id
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.criterion, &mut f);
        self
    }

    /// Runs one parameterized benchmark under this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.criterion, &mut |b| f(b, input));
        self
    }

    /// Ends the group. (No-op; exists for API compatibility.)
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_sample<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    b.elapsed
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, config: &Criterion, f: &mut F) {
    // Warm-up doubles the iteration count until the window is filled,
    // which also calibrates the per-iteration cost.
    let warm_start = Instant::now();
    let mut iters: u64 = 1;
    let mut last = run_sample(f, iters);
    while warm_start.elapsed() < config.warm_up {
        iters = iters.saturating_mul(2);
        last = run_sample(f, iters);
    }
    let per_iter = last.as_secs_f64() / iters as f64;

    let samples = config.sample_size;
    let total_iters = (config.measurement.as_secs_f64() / per_iter.max(1e-12)) as u64;
    let iters_per_sample = (total_iters / samples as u64).max(1);

    let mut mean_sum = 0.0;
    let mut lo = f64::INFINITY;
    let mut hi: f64 = 0.0;
    for _ in 0..samples {
        let t = run_sample(f, iters_per_sample).as_secs_f64() / iters_per_sample as f64;
        mean_sum += t;
        lo = lo.min(t);
        hi = hi.max(t);
    }
    let mean = mean_sum / samples as f64;
    println!(
        "{name:<48} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_time(lo),
        fmt_time(mean),
        fmt_time(hi),
        samples,
        iters_per_sample,
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

/// Defines a benchmark-group function from target functions, with an
/// optional explicit `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Defines `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5)
    }

    #[test]
    fn group_runs_benches() {
        let mut c = quick();
        let mut group = c.benchmark_group("shim");
        let mut hits = 0u64;
        group.bench_function("count", |b| b.iter(|| hits = hits.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, n| {
            b.iter(|| std::hint::black_box(*n * 2))
        });
        group.finish();
        assert!(hits > 0);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.5e-9).ends_with("ns"));
        assert!(fmt_time(2.5e-6).ends_with("µs"));
        assert!(fmt_time(2.5e-3).ends_with("ms"));
        assert!(fmt_time(2.5).ends_with('s'));
    }
}
