//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to the crates-io registry, so the
//! workspace vendors the small slice of the `rand` 0.8 API it actually
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen_range` over
//! half-open and inclusive numeric ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every consumer in this
//! workspace only requires determinism and seed-sensitivity, which this
//! implementation provides: the same seed always yields the same sequence
//! on every platform.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A value that can be sampled uniformly from a range. Mirrors the subset
/// of `rand::distributions::uniform::SampleUniform` used here.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                // Modulo bias is acceptable for simulation workloads; spans
                // here are far below 2^64.
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range requires a non-empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = lo + unit * (hi - lo);
        // Floating rounding can land exactly on `hi`; stay half-open.
        if v >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v
        }
    }
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range requires a non-empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
}

/// A range a value can be drawn from (`lo..hi` or `lo..=hi`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_unit(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_unit() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand a `u64` seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xa: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let xb: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        let xc: Vec<f64> = (0..8).map(|_| c.gen_range(0.0..1.0)).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&v));
            let i: usize = rng.gen_range(0..5);
            assert!(i < 5);
            let j: u64 = rng.gen_range(10..=12);
            assert!((10..=12).contains(&j));
            let f: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn unit_interval_covers_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean: f64 = (0..4096).map(|_| rng.gen_unit()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
