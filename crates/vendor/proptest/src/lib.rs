//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! range and tuple strategies, `collection::vec`, `bool::ANY`,
//! `Strategy::prop_map`, and `ProptestConfig::with_cases`.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! - **No shrinking.** A failing case reports its inputs via the panic
//!   message (every generated binding is included) but is not minimized.
//! - **Deterministic cases.** Inputs derive from a hash of the test's
//!   module path, name, and case index, so failures reproduce exactly
//!   across runs and machines.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Test-runner configuration (`cases` only).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Config {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the suite fast while
            // still exercising each property broadly.
            Self { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Derives the deterministic RNG for one test case.
pub fn case_rng(test_path: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64)
}

/// Strategies: value generators composable with `prop_map`.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<F, T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.start..self.end)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub use strategy::Strategy;

/// Collection strategies (`vec` only).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A length specification: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec strategy requires a non-empty length range");
            Self(r)
        }
    }

    /// A strategy producing `Vec`s whose length is drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `Vec` strategy: elements from `element`, length from `len` (a fixed
    /// `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = &self.len.0;
            let n = if len.end - len.start == 1 {
                len.start
            } else {
                rng.gen_range(len.start..len.end)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`ANY` only).
pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Declares property tests. Each `fn name(binding in strategy, ...)` body
/// runs once per generated case; a panic inside the body fails the test
/// with the case index and generated inputs in the message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::Config as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($bind:pat in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __path = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let __run = || {
                    let mut __rng = $crate::case_rng(__path, __case);
                    $(let $bind = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                };
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run));
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest case {}/{} of {} failed (deterministic; rerun reproduces it)",
                        __case + 1, __config.cases, __path,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(x in 0.5f64..2.0, n in 1usize..9) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_and_tuples_compose(
            v in prop::collection::vec((0.0f64..1.0, 0u64..10), 2..6),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (f, i) in &v {
                prop_assert!((0.0..1.0).contains(f));
                prop_assert!(*i < 10);
            }
            let _ = flag;
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (0.0f64..1.0).prop_map(|x| x + 10.0);
        let mut rng = crate::case_rng("map", 0);
        for _ in 0..16 {
            let v = strat.generate(&mut rng);
            assert!((10.0..11.0).contains(&v));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: f64 = crate::strategy::Strategy::generate(&(0.0f64..1.0), &mut crate::case_rng("t", 3));
        let b: f64 = crate::strategy::Strategy::generate(&(0.0f64..1.0), &mut crate::case_rng("t", 3));
        assert_eq!(a, b);
    }
}
