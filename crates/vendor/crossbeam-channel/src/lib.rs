//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! The workspace only uses `unbounded()`, cloneable `Sender`s, and
//! blocking `recv()` — exactly what `std::sync::mpsc` provides — so this
//! shim wraps the std channel behind crossbeam's names and error types.

#![forbid(unsafe_code)]

use std::sync::mpsc;

/// Error returned by [`Sender::send`] when the receiving side is gone.
/// Carries back the unsent message, like crossbeam's.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Like upstream, `Debug` elides the message so `T: Debug` is not required.
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// The sending half of a channel. Clone freely; the channel disconnects
/// when every clone is dropped.
#[derive(Debug)]
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self { inner: self.inner.clone() }
    }
}

impl<T> Sender<T> {
    /// Sends `msg`, failing only if the receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.inner.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
    }
}

/// The receiving half of a channel.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Receives without blocking, if a message is ready.
    pub fn try_recv(&self) -> Result<T, RecvError> {
        self.inner.try_recv().map_err(|_| RecvError)
    }
}

/// Creates a channel with unbounded capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_with_clones() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap());
        tx.send(3).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, [3, 7]);
    }

    #[test]
    fn disconnection_is_reported() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
