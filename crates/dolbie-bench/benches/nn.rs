//! The from-scratch trainer: one synchronous SGD round at the paper's
//! global batch size, and the oracle solve as a function of N.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dolbie_core::instantaneous_minimizer;
use dolbie_mlsim::nn::{Mlp, Momentum};
use dolbie_mlsim::{generate_mixture, Cluster, ClusterConfig, MixtureConfig, MlModel};
use std::hint::black_box;

fn bench_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_training");
    let data = generate_mixture(MixtureConfig::cifar_like(), 4096, 7);
    let (x, y) = data.batch(0, 256);
    group.bench_function("train_batch_b256", |b| {
        let mut mlp = Mlp::new(data.dim(), 48, data.num_classes(), 3);
        b.iter(|| mlp.train_batch(black_box(&x), black_box(&y), 0.04));
    });
    group.bench_function("train_batch_momentum_b256", |b| {
        let mut mlp = Mlp::new(data.dim(), 48, data.num_classes(), 3);
        let mut state = Momentum::new(0.9);
        b.iter(|| mlp.train_batch_momentum(black_box(&x), black_box(&y), 0.04, &mut state));
    });
    group.bench_function("full_train_accuracy_eval", |b| {
        let mlp = Mlp::new(data.dim(), 48, data.num_classes(), 3);
        b.iter(|| mlp.accuracy(black_box(data.features()), black_box(data.labels())));
    });
    group.finish();

    let mut group = c.benchmark_group("oracle_scaling");
    for n in [10usize, 30, 100, 300] {
        let mut cfg = ClusterConfig::paper(MlModel::ResNet18);
        cfg.num_workers = n;
        let mut cluster = Cluster::sample(cfg, 5);
        let costs = dolbie_core::Environment::reveal(&mut cluster, 0);
        group.bench_with_input(BenchmarkId::new("instantaneous_minimizer", n), &n, |b, _| {
            b.iter(|| instantaneous_minimizer(black_box(&costs)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(30);
    targets = bench_nn
);
criterion_main!(benches);
