//! Large-N engine microbenchmarks: per-round cost of the sequential
//! `Dolbie`, the chunked SoA engine (`ChunkedDolbie`), the fused and
//! SIMD round kernels (`FusedDolbie`), and the fixed-shape compensated
//! summation primitive they all share.
//!
//! Criterion keeps the fleets small enough to iterate quickly
//! (N <= 10^5); the full sweep to N = 10^6 with RSS tracking is the
//! `large_n` experiment (`scripts/bench_large_n.sh`), which also checks
//! bitwise equivalence and writes `BENCH_large_n.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dolbie_core::cost::{DynCost, LatencyCost};
use dolbie_core::engine::DEFAULT_CHUNK_SIZE;
use dolbie_core::kernel::{FusedDolbie, KernelVariant};
use dolbie_core::{pairwise_neumaier_sum, run_episode_with_static_costs, ChunkedDolbie, Dolbie};
use std::hint::black_box;

fn splitmix(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z = z ^ (z >> 31);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

fn latency_fleet(n: usize, seed: u64) -> Vec<DynCost> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            let speed = 64.0 + 448.0 * splitmix(&mut state);
            Box::new(LatencyCost::new(256.0, speed, 0.05)) as DynCost
        })
        .collect()
}

/// Rounds/sec of a short episode over a static fleet, per engine.
fn bench_round_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("large_n_rounds");
    const ROUNDS: usize = 10;
    for n in [1_000usize, 10_000, 100_000] {
        let costs = latency_fleet(n, 0x1a6e);
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| {
                let mut balancer = Dolbie::new(n);
                black_box(run_episode_with_static_costs(&mut balancer, &costs, ROUNDS, None));
            });
        });
        group.bench_with_input(BenchmarkId::new("chunked", n), &n, |b, _| {
            b.iter(|| {
                let mut balancer = ChunkedDolbie::new(n);
                black_box(run_episode_with_static_costs(
                    &mut balancer,
                    &costs,
                    ROUNDS,
                    Some(DEFAULT_CHUNK_SIZE),
                ));
            });
        });
        group.bench_with_input(BenchmarkId::new("fused", n), &n, |b, _| {
            b.iter(|| {
                let mut kernel = FusedDolbie::from_costs(&costs).unwrap();
                black_box(kernel.run(ROUNDS));
            });
        });
        group.bench_with_input(BenchmarkId::new("simd", n), &n, |b, _| {
            b.iter(|| {
                let mut kernel =
                    FusedDolbie::from_costs(&costs).unwrap().with_variant(KernelVariant::Simd);
                black_box(kernel.run(ROUNDS));
            });
        });
    }
    group.finish();
}

/// The shared summation primitive on its own: naive accumulation as the
/// baseline vs the fixed-shape Neumaier/pairwise reduction.
fn bench_summation(c: &mut Criterion) {
    let mut group = c.benchmark_group("large_n_summation");
    for n in [10_000usize, 1_000_000] {
        let mut state = 99u64;
        let values: Vec<f64> = (0..n).map(|_| splitmix(&mut state) - 0.5).collect();
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(values.iter().sum::<f64>()));
        });
        group.bench_with_input(BenchmarkId::new("pairwise_neumaier", n), &n, |b, _| {
            b.iter(|| black_box(pairwise_neumaier_sum(black_box(&values))));
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(10);
    targets = bench_round_throughput, bench_summation
);
criterion_main!(benches);
