//! Protocol-simulation throughput: full simulated rounds of Algorithm 1
//! (master-worker, 3N messages) vs Algorithm 2 (fully-distributed, ~N²
//! messages).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dolbie_core::environment::StaticLinearEnvironment;
use dolbie_core::DolbieConfig;
use dolbie_simnet::{FixedLatency, FullyDistributedSim, MasterWorkerSim};

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_round");
    for n in [8usize, 30, 64] {
        let slopes: Vec<f64> = (1..=n).map(|i| 0.5 + i as f64).collect();
        group.bench_with_input(BenchmarkId::new("master_worker", n), &n, |b, _| {
            b.iter(|| {
                let env = StaticLinearEnvironment::from_slopes(slopes.clone());
                MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan()).run(10)
            });
        });
        group.bench_with_input(BenchmarkId::new("fully_distributed", n), &n, |b, _| {
            b.iter(|| {
                let env = StaticLinearEnvironment::from_slopes(slopes.clone());
                FullyDistributedSim::new(env, DolbieConfig::new(), FixedLatency::lan()).run(10)
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(30);
    targets = bench_protocols
);
criterion_main!(benches);
