//! Euclidean simplex projection: the per-round cost OGD pays and DOLBIE
//! avoids (§IV-B "no projection calculation").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dolbie_baselines::simplex::{project_michelot, project_sorted};
use std::hint::black_box;

fn inputs(n: usize) -> Vec<f64> {
    // Deterministic pseudo-random inputs straddling the simplex.
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (h % 1000) as f64 / 500.0 - 1.0
        })
        .collect()
}

fn bench_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_projection");
    for n in [30usize, 300, 3000] {
        let v = inputs(n);
        group.bench_with_input(BenchmarkId::new("sorted", n), &v, |b, v| {
            b.iter(|| project_sorted(black_box(v)));
        });
        group.bench_with_input(BenchmarkId::new("michelot", n), &v, |b, v| {
            b.iter(|| project_michelot(black_box(v)));
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(30);
    targets = bench_projection
);
criterion_main!(benches);
