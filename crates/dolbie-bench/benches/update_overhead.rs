//! Decision-update overhead per algorithm (the Fig. 11 lower panel as a
//! Criterion microbenchmark): one `observe` call at N = 30 and N = 300,
//! plus the clairvoyant oracle solve that OPT performs each round.
//!
//! Expected shape (§IV-C): DOLBIE and the other lightweight rules are
//! O(N) scalar work; OGD pays sorting + projection; OPT pays a bisection
//! over level values with an inverse per worker per probe.
//!
//! Two additional groups cover the episode hot path: `oracle_solve`
//! compares cold solves against warm-started solves over a drifting round
//! sequence, and `episode_throughput` measures whole episodes (rounds/sec)
//! with and without optimum tracking, recorded vs. streaming.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dolbie_baselines::{Abs, Equ, LbBsp, Ogd};
use dolbie_core::cost::DynCost;
use dolbie_core::{
    instantaneous_minimizer, instantaneous_minimizer_cached, run_episode, run_episode_streaming,
    Allocation, Dolbie, EpisodeOptions, LoadBalancer, Observation, OracleCache,
};
use dolbie_mlsim::{Cluster, ClusterConfig, MlModel};
use std::hint::black_box;

fn costs_for(n: usize) -> Vec<DynCost> {
    let mut cfg = ClusterConfig::paper(MlModel::ResNet18);
    cfg.num_workers = n;
    let mut cluster = Cluster::sample(cfg, 7);
    dolbie_core::Environment::reveal(&mut cluster, 0)
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_overhead");
    for n in [30usize, 300] {
        let costs = costs_for(n);
        let allocation = Allocation::uniform(n);

        macro_rules! bench_balancer {
            ($name:expr, $make:expr) => {
                group.bench_with_input(BenchmarkId::new($name, n), &n, |b, _| {
                    let mut balancer = $make;
                    b.iter(|| {
                        let obs = Observation::from_costs(0, &allocation, &costs);
                        balancer.observe(black_box(&obs));
                    });
                });
            };
        }

        bench_balancer!("EQU", Equ::new(n));
        bench_balancer!("OGD", Ogd::new(n, 0.001));
        bench_balancer!("ABS", Abs::new(n, 5));
        bench_balancer!("LB-BSP", LbBsp::new(n, 5.0 / 256.0, 5));
        bench_balancer!("DOLBIE", Dolbie::new(n));

        group.bench_with_input(BenchmarkId::new("OPT-solve", n), &n, |b, _| {
            b.iter(|| instantaneous_minimizer(black_box(&costs)).unwrap());
        });
    }
    group.finish();
}

/// Cold vs warm-started oracle over a sequence of drifting rounds — the
/// access pattern of `OPT` and of `run_episode` with optimum tracking.
fn bench_oracle_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_solve");
    const ROUNDS: usize = 16;
    for n in [30usize, 300] {
        let mut cfg = ClusterConfig::paper(MlModel::ResNet18);
        cfg.num_workers = n;
        let mut cluster = Cluster::sample(cfg, 7);
        let rounds: Vec<Vec<DynCost>> =
            (0..ROUNDS).map(|t| dolbie_core::Environment::reveal(&mut cluster, t)).collect();

        group.bench_with_input(BenchmarkId::new("cold", n), &n, |b, _| {
            b.iter(|| {
                for costs in &rounds {
                    black_box(instantaneous_minimizer(black_box(costs)).unwrap());
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("warm", n), &n, |b, _| {
            b.iter(|| {
                let mut cache = OracleCache::new();
                for costs in &rounds {
                    black_box(
                        instantaneous_minimizer_cached(black_box(costs), &mut cache).unwrap(),
                    );
                }
            });
        });
    }
    group.finish();
}

/// Whole-episode throughput at N = 30: recorded vs streaming, with and
/// without per-round optimum tracking (divide the reported time by the
/// round count for rounds/sec).
fn bench_episode(c: &mut Criterion) {
    let mut group = c.benchmark_group("episode_throughput");
    const ROUNDS: usize = 100;
    let mut cfg = ClusterConfig::paper(MlModel::ResNet18);
    cfg.num_workers = 30;
    let cluster = Cluster::sample(cfg, 7);

    for (label, options) in [
        ("plain", EpisodeOptions::new(ROUNDS)),
        ("tracked", EpisodeOptions::new(ROUNDS).with_optimum()),
    ] {
        group.bench_function(BenchmarkId::new("recorded", label), |b| {
            b.iter(|| {
                let mut balancer = Dolbie::new(30);
                let mut env = cluster.clone();
                black_box(run_episode(&mut balancer, &mut env, options));
            });
        });
        group.bench_function(BenchmarkId::new("streaming", label), |b| {
            b.iter(|| {
                let mut balancer = Dolbie::new(30);
                let mut env = cluster.clone();
                black_box(run_episode_streaming(&mut balancer, &mut env, options));
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(30);
    targets = bench_updates, bench_oracle_warm, bench_episode
);
criterion_main!(benches);
