//! Decision-update overhead per algorithm (the Fig. 11 lower panel as a
//! Criterion microbenchmark): one `observe` call at N = 30 and N = 300,
//! plus the clairvoyant oracle solve that OPT performs each round.
//!
//! Expected shape (§IV-C): DOLBIE and the other lightweight rules are
//! O(N) scalar work; OGD pays sorting + projection; OPT pays a bisection
//! over level values with an inverse per worker per probe.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dolbie_baselines::{Abs, Equ, LbBsp, Ogd};
use dolbie_core::cost::DynCost;
use dolbie_core::{instantaneous_minimizer, Allocation, Dolbie, LoadBalancer, Observation};
use dolbie_mlsim::{Cluster, ClusterConfig, MlModel};
use std::hint::black_box;

fn costs_for(n: usize) -> Vec<DynCost> {
    let mut cfg = ClusterConfig::paper(MlModel::ResNet18);
    cfg.num_workers = n;
    let mut cluster = Cluster::sample(cfg, 7);
    dolbie_core::Environment::reveal(&mut cluster, 0)
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_overhead");
    for n in [30usize, 300] {
        let costs = costs_for(n);
        let allocation = Allocation::uniform(n);

        macro_rules! bench_balancer {
            ($name:expr, $make:expr) => {
                group.bench_with_input(BenchmarkId::new($name, n), &n, |b, _| {
                    let mut balancer = $make;
                    b.iter(|| {
                        let obs = Observation::from_costs(0, &allocation, &costs);
                        balancer.observe(black_box(&obs));
                    });
                });
            };
        }

        bench_balancer!("EQU", Equ::new(n));
        bench_balancer!("OGD", Ogd::new(n, 0.001));
        bench_balancer!("ABS", Abs::new(n, 5));
        bench_balancer!("LB-BSP", LbBsp::new(n, 5.0 / 256.0, 5));
        bench_balancer!("DOLBIE", Dolbie::new(n));

        group.bench_with_input(BenchmarkId::new("OPT-solve", n), &n, |b, _| {
            b.iter(|| instantaneous_minimizer(black_box(&costs)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(30);
    targets = bench_updates
);
criterion_main!(benches);
