//! The monotone inverse behind `x'_{i,t}` (eq. (4)): closed form for the
//! latency model of §VI-A vs generic bisection.

use criterion::{criterion_group, criterion_main, Criterion};
use dolbie_core::cost::{CostFunction, ExponentialCost, LatencyCost, PowerCost};
use std::hint::black_box;

fn bench_inverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("monotone_inverse");
    let latency = LatencyCost::new(256.0, 480.0, 0.12);
    group.bench_function("latency_closed_form", |b| {
        b.iter(|| latency.max_share_within(black_box(0.4)));
    });

    // PowerCost overrides with a closed form too; wrap it so the default
    // bisection path is what gets measured.
    #[derive(Debug)]
    struct ViaBisection<T>(T);
    impl<T: CostFunction> CostFunction for ViaBisection<T> {
        fn eval(&self, x: f64) -> f64 {
            self.0.eval(x)
        }
    }
    let quadratic = ViaBisection(PowerCost::new(3.0, 2.0, 0.1));
    group.bench_function("quadratic_bisection", |b| {
        b.iter(|| quadratic.max_share_within(black_box(1.4)));
    });
    let expo = ViaBisection(ExponentialCost::new(0.8, 3.0, 0.05));
    group.bench_function("exponential_bisection", |b| {
        b.iter(|| expo.max_share_within(black_box(2.0)));
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(30);
    targets = bench_inverse
);
criterion_main!(benches);
