//! Regression test for the parallel experiment engine's determinism
//! guarantee: the CSV a figure writes must be byte-identical whether the
//! realization fan-out runs on one thread or several.

use dolbie_bench::experiments::{chaos, churn, latency};
use dolbie_bench::{common, harness};

#[test]
fn parallel_figure_csv_is_byte_identical_to_sequential() {
    let read = |name: &str| {
        let path = common::results_dir().join(format!("{name}.csv"));
        let bytes =
            std::fs::read(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        // Clean up both the CSV and the companion SVG.
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(common::results_dir().join(format!("{name}.svg")));
        bytes
    };

    harness::set_threads(1);
    latency::ci_figure(false, "test_determinism_seq", "determinism regression (sequential)", 2);
    let sequential = read("test_determinism_seq");

    harness::set_threads(4);
    latency::ci_figure(false, "test_determinism_par", "determinism regression (4 threads)", 2);
    harness::set_threads(0);
    let parallel = read("test_determinism_par");

    assert!(!sequential.is_empty(), "figure produced an empty CSV");
    assert_eq!(sequential, parallel, "4-thread CSV bytes must match the sequential run exactly");
}

fn read_and_remove(name: &str) -> Vec<u8> {
    let path = common::results_dir().join(format!("{name}.csv"));
    let bytes = std::fs::read(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(common::results_dir().join(format!("{name}.svg")));
    bytes
}

#[test]
fn churn_recovery_csv_is_byte_identical_across_thread_counts() {
    harness::set_threads(1);
    churn::churn_named("test_churn_det_seq");
    let sequential = read_and_remove("test_churn_det_seq");

    harness::set_threads(4);
    churn::churn_named("test_churn_det_par");
    harness::set_threads(0);
    let parallel = read_and_remove("test_churn_det_par");

    assert!(!sequential.is_empty(), "churn experiment produced an empty CSV");
    assert_eq!(sequential, parallel, "churn CSV bytes must match the sequential run exactly");
}

#[test]
fn chaos_sweep_csv_is_byte_identical_across_thread_counts() {
    harness::set_threads(1);
    chaos::chaos_named(true, "test_chaos_det_seq");
    let sequential = read_and_remove("test_chaos_det_seq");

    harness::set_threads(4);
    chaos::chaos_named(true, "test_chaos_det_par");
    harness::set_threads(0);
    let parallel = read_and_remove("test_chaos_det_par");

    assert!(!sequential.is_empty(), "chaos sweep produced an empty CSV");
    assert_eq!(sequential, parallel, "chaos CSV bytes must match the sequential run exactly");
}
