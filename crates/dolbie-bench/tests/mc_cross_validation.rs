//! Cross-validation between the sampled chaos sweep and the model
//! checker's controlled scheduler.
//!
//! The model checker's claim to relevance is that its controlled runs
//! are the *same* executions the chaos sweep samples — the default
//! (all-zeros) decision prefix must reproduce each uncontrolled
//! simulation bitwise, and the shared invariant detectors must return
//! the same verdict on the replayed trajectory that the sweep reports
//! for the case. This test replays the first 20 seeded sweep schedules
//! through [`dolbie_mc::ReplayScheduler`] across all three flat
//! architectures and checks both properties.

use dolbie_bench::experiments::chaos::{self, ChaosCase};
use dolbie_core::DolbieConfig;
use dolbie_mc::ReplayScheduler;
use dolbie_simnet::invariants;
use dolbie_simnet::{FixedLatency, FullyDistributedSim, MasterWorkerSim, ProtocolTrace, RingSim};

const CASES: usize = 20;

/// Runs one architecture both uncontrolled (`run`) and under the model
/// checker's canonical all-defaults schedule (`run_with_scheduler`).
fn controlled_and_free(case: &ChaosCase, arch: &str) -> (ProtocolTrace, ProtocolTrace) {
    let plan = case.flat_plan();
    let make_mw = || {
        MasterWorkerSim::new(
            chaos::env_for(case.env_seed, case.n),
            DolbieConfig::new(),
            FixedLatency::lan(),
        )
        .with_fault_plan(plan.clone())
        .with_membership(case.schedule.clone())
    };
    let make_fd = || {
        FullyDistributedSim::new(
            chaos::env_for(case.env_seed, case.n),
            DolbieConfig::new(),
            FixedLatency::lan(),
        )
        .with_fault_plan(plan.clone())
        .with_membership(case.schedule.clone())
    };
    let make_ring = || {
        RingSim::new(
            chaos::env_for(case.env_seed, case.n),
            DolbieConfig::new(),
            FixedLatency::lan(),
        )
        .with_fault_plan(plan.clone())
        .with_membership(case.schedule.clone())
    };
    let mut sched = ReplayScheduler::new(&[]);
    match arch {
        "master-worker" => {
            (make_mw().run(case.rounds), make_mw().run_with_scheduler(case.rounds, &mut sched))
        }
        "fully-distributed" => {
            (make_fd().run(case.rounds), make_fd().run_with_scheduler(case.rounds, &mut sched))
        }
        "ring" => {
            (make_ring().run(case.rounds), make_ring().run_with_scheduler(case.rounds, &mut sched))
        }
        other => unreachable!("unknown architecture {other}"),
    }
}

#[test]
fn sweep_schedules_replay_bitwise_with_matching_verdicts() {
    for id in 0..CASES {
        let case = chaos::case_from_seed(id, chaos::MASTER_SEED);
        // The sweep's own verdict on this case: it must pass — the model
        // checker cross-validates against a green baseline.
        assert!(
            chaos::run_case(&case).is_ok(),
            "case {id}: the chaos sweep itself fails this case"
        );
        for arch in ["master-worker", "fully-distributed", "ring"] {
            let (free, controlled) = controlled_and_free(&case, arch);
            // (1) The canonical decision path IS the uncontrolled run:
            // every round agrees bitwise, active masks included.
            assert_eq!(
                free.rounds.len(),
                controlled.rounds.len(),
                "case {id} {arch}: round counts diverge under the controlled scheduler"
            );
            for (t, (a, b)) in free.rounds.iter().zip(&controlled.rounds).enumerate() {
                assert!(
                    invariants::rounds_agree_bitwise(a, b) && a.active == b.active,
                    "case {id} {arch}: controlled replay diverges at round {t}"
                );
            }
            // (2) The shared detectors return the sweep's verdict on the
            // replayed trajectory: this reachable path is invariant-clean.
            let verdict = invariants::check_trace(&controlled, case.rounds, |t| {
                case.schedule.members_at(case.n, t)
            });
            assert!(
                verdict.is_ok(),
                "case {id} {arch}: replayed path fails invariants the sweep passed: {:?}",
                verdict
            );
        }
    }
}
