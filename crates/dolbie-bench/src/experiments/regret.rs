//! Experiment T1: empirical validation of the Theorem 1 dynamic-regret
//! bound, across horizons, worker counts, and adversary classes.

use crate::common::emit_csv;
use crate::harness;
use dolbie_core::environment::{
    PiecewiseStationaryEnvironment, RotatingStragglerEnvironment, SinusoidalDriftEnvironment,
};
use dolbie_core::{run_episode, theorem1_bound, Dolbie, Environment, EpisodeOptions};
use dolbie_metrics::Table;

fn make_adversary(kind: &str, n: usize) -> Box<dyn Environment> {
    match kind {
        "rotating" => Box::new(RotatingStragglerEnvironment::new(n, 10, 3.0, 1.0)),
        "piecewise" => {
            // Two mirrored regimes shifting every 25 rounds.
            let fast_first: Vec<f64> = (0..n).map(|i| if i < n / 2 { 1.0 } else { 3.0 }).collect();
            let slow_first: Vec<f64> = (0..n).map(|i| if i < n / 2 { 3.0 } else { 1.0 }).collect();
            Box::new(PiecewiseStationaryEnvironment::new(vec![fast_first, slow_first], 25))
        }
        "sinusoidal" => {
            let bases: Vec<f64> = (0..n).map(|i| 1.0 + 2.0 * (i % 3) as f64).collect();
            Box::new(SinusoidalDriftEnvironment::new(bases, 0.5, 60.0))
        }
        other => unreachable!("unknown adversary {other}"),
    }
}

/// Runs DOLBIE against three adversary classes across sweeps of the
/// horizon `T` and the worker count `N`, comparing the measured dynamic
/// regret against the Theorem 1 upper bound.
pub fn regret(quick: bool) {
    println!("== Theorem 1: measured dynamic regret vs the upper bound ==");
    let horizons: &[usize] = if quick { &[50, 100] } else { &[50, 100, 200, 400, 800] };
    let workers: &[usize] = if quick { &[5, 10] } else { &[5, 10, 20, 40] };
    let adversaries = ["rotating", "piecewise", "sinusoidal"];

    let mut table = Table::new(vec![
        "adversary",
        "T",
        "N",
        "regret",
        "path_length",
        "bound",
        "regret_over_bound",
        "regret_per_round",
    ]);
    // Flatten the adversary × N × T sweep into one task list: the biggest
    // configurations (T = 800 with per-round oracle solves) dominate the
    // wall-clock, so work stealing keeps every core busy. Rows come back
    // in the sequential sweep order; printing and table assembly stay on
    // the main thread so stdout and the CSV are byte-identical.
    let mut configs: Vec<(&str, usize, usize)> = Vec::new();
    for kind in adversaries {
        for &n in workers {
            for &t in horizons {
                configs.push((kind, n, t));
            }
        }
    }
    let results = harness::parallel_map_items(&configs, |&(kind, n, t)| {
        // The initial step size is fixed (as in the paper's
        // experiments) so eq. (7) tightens it gradually instead of
        // collapsing it on an extreme first step, keeping the
        // Theorem 1 bound finite.
        let mut env = make_adversary(kind, n);
        let mut dolbie = Dolbie::with_config(
            dolbie_core::Allocation::uniform(n),
            dolbie_core::DolbieConfig::new().with_initial_alpha(0.01),
        );
        let trace = run_episode(&mut dolbie, env.as_mut(), EpisodeOptions::new(t).with_optimum());
        let tracker = trace.regret().expect("optimum tracked");
        let lipschitz = trace.max_lipschitz().expect("lipschitz tracked");
        let bound = theorem1_bound(n, lipschitz, tracker.path_length(), dolbie.alphas_used());
        (tracker.dynamic_regret(), tracker.path_length(), bound)
    });
    let mut all_within = true;
    for (&(kind, n, t), &(regret, path_length, bound)) in configs.iter().zip(&results) {
        let ratio = if bound.is_finite() { regret / bound } else { 0.0 };
        if regret > bound {
            all_within = false;
        }
        table.push_row(vec![
            kind.to_string(),
            t.to_string(),
            n.to_string(),
            format!("{regret:.4}"),
            format!("{path_length:.4}"),
            // `unbounded`, not a bare `inf`: the Theorem 1 bound diverges
            // by design when P_T grows linearly (the adversary defeats the
            // comparator), and downstream CSV readers should not have to
            // guess which float parser's infinity spelling they will meet.
            if bound.is_finite() { format!("{bound:.2}") } else { "unbounded".into() },
            format!("{ratio:.4}"),
            format!("{:.6}", regret / t as f64),
        ]);
        println!(
            "  {kind:10} T={t:4} N={n:3}: regret {regret:10.3}  P_T {path_length:8.3}  bound {:>12}  ratio {ratio:.3}",
            if bound.is_finite() { format!("{bound:.1}") } else { "unbounded".into() },
        );
    }
    emit_csv(&table, "regret_theorem1");
    println!(
        "  measured regret within the Theorem 1 bound in every configuration: {}",
        if all_within { "YES" } else { "NO (violation!)" }
    );
}
