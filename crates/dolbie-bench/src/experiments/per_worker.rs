//! Figures 9–10: per-worker latency and batch-size traces.

use crate::common::{emit_csv, paper_cluster, run_suite};
use dolbie_metrics::Table;
use dolbie_mlsim::{MlModel, TrainingConfig};

const ROUNDS: usize = 100;

fn per_worker_figure(batch_sizes: bool, name: &str, title: &str) {
    println!("== {title} (one realization, ResNet18) ==");
    let cluster = paper_cluster(MlModel::ResNet18, 42);
    let batch = cluster.config().global_batch;
    let outcomes = run_suite(&cluster, TrainingConfig::latency_only(ROUNDS));
    let processors = outcomes[0].processors.clone();

    let mut table = Table::new(vec!["algorithm", "worker", "processor", "round", "value"]);
    for o in &outcomes {
        for r in &o.rounds {
            for (w, processor) in processors.iter().enumerate() {
                let value =
                    if batch_sizes { r.batch_fractions[w] * batch } else { r.worker_latencies[w] };
                table.push_row(vec![
                    o.algorithm.clone(),
                    w.to_string(),
                    processor.to_string(),
                    r.round.to_string(),
                    format!("{value:.6}"),
                ]);
            }
        }
    }
    emit_csv(&table, name);

    // Summary: how tightly each algorithm equalizes the workers by the
    // final round — the "lines converge much more quickly in DOLBIE"
    // observation. For latencies we report the max/min spread; for batch
    // sizes the straggler's share of the batch.
    println!("  final-round per-worker spread:");
    for o in &outcomes {
        let last = o.rounds.last().unwrap();
        if batch_sizes {
            let smallest = last.batch_fractions.iter().cloned().fold(f64::MAX, f64::min) * batch;
            let largest = last.batch_fractions.iter().cloned().fold(f64::MIN, f64::max) * batch;
            println!(
                "    {:8} batch sizes range {:7.2} .. {:7.2} samples",
                o.algorithm, smallest, largest
            );
        } else {
            let fastest = last.worker_latencies.iter().cloned().fold(f64::MAX, f64::min);
            let slowest = last.worker_latencies.iter().cloned().fold(f64::MIN, f64::max);
            println!(
                "    {:8} latency spread {:.4} s (fastest {:.4}, slowest {:.4})",
                o.algorithm,
                slowest - fastest,
                fastest,
                slowest
            );
        }
    }
}

/// Fig. 9: latency per worker per round, per algorithm.
pub fn fig9() {
    per_worker_figure(false, "fig9_per_worker_latency", "Fig. 9: latency per worker per round");
}

/// Fig. 10: batch size per worker per round, per algorithm.
pub fn fig10() {
    per_worker_figure(true, "fig10_per_worker_batch", "Fig. 10: batch size per worker per round");
}
