//! Experiment X1 (extension): fault robustness of all three protocol
//! architectures.
//!
//! The paper motivates the fully-distributed architecture with fault
//! tolerance ("avoid a single point of failure") but does not evaluate
//! faults. This experiment runs two studies:
//!
//! 1. **Crash/timeout recovery (master-worker)** — injects a worker crash
//!    window and an extreme straggler handled by a master-side timeout,
//!    and measures how the protocol re-balances around the failure and
//!    recovers (`faults_crash_recovery` CSV).
//! 2. **Architecture comparison under one seeded fault plan** — the same
//!    `FaultPlan` (crash window + 5% message drop + 1% duplication) is
//!    run against master-worker, fully-distributed, and ring; the
//!    trajectories stay identical (the protocols implement one recovery
//!    policy) while the link-layer costs diverge
//!    (`faults_architecture_comparison` CSV).
//!
//! Both CSVs are byte-identical at any `--threads` setting: the fault
//! decisions are pure hashes of the plan seed and message coordinates,
//! not draws from shared RNG state.

use crate::common::emit_csv;
use crate::harness;
use dolbie_core::DolbieConfig;
use dolbie_metrics::Table;
use dolbie_mlsim::{Cluster, ClusterConfig, MlModel};
use dolbie_simnet::{
    Crash, FaultPlan, FixedLatency, FullyDistributedSim, MasterWorkerSim, RingSim,
};

const ROUNDS: usize = 60;
const CRASH: Crash = Crash { worker: 2, from_round: 20, until_round: 35 };

/// Runs the crash-recovery scenario on a small cluster.
pub fn faults() {
    println!("== Fault injection: crash window + cost timeout (master-worker protocol) ==");
    let mut cfg = ClusterConfig::paper(MlModel::ResNet18);
    cfg.num_workers = 10;
    let env = Cluster::sample(cfg, 77);

    // The three scenarios are independent protocol runs on copies of the
    // same cluster; fan them out.
    let mut scenarios = harness::parallel_map(3, |i| {
        let mut sim = MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan());
        match i {
            0 => sim.run(ROUNDS),
            1 => sim.with_crash(CRASH).run(ROUNDS),
            _ => sim.with_cost_timeout(0.25).run(ROUNDS),
        }
    });
    let timed_out = scenarios.pop().expect("three scenarios");
    let crashed = scenarios.pop().expect("three scenarios");
    let healthy = scenarios.pop().expect("three scenarios");

    let mut table = Table::new(vec![
        "round",
        "healthy_cost",
        "crashed_cost",
        "crashed_share_w2",
        "crashed_active_w2",
        "timeout_cost",
        "timeout_active_count",
    ]);
    for t in 0..ROUNDS {
        table.push_row(vec![
            t.to_string(),
            format!("{:.6}", healthy.rounds[t].global_cost),
            format!("{:.6}", crashed.rounds[t].global_cost),
            format!("{:.6}", crashed.rounds[t].allocation.share(2)),
            (crashed.rounds[t].active[2] as u8).to_string(),
            format!("{:.6}", timed_out.rounds[t].global_cost),
            timed_out.rounds[t].active.iter().filter(|&&a| a).count().to_string(),
        ]);
    }
    emit_csv(&table, "faults_crash_recovery");

    let share_before = crashed.rounds[19].allocation.share(2);
    let share_frozen = crashed.rounds[30].allocation.share(2);
    let share_after = crashed.rounds[ROUNDS - 1].allocation.share(2);
    println!(
        "  crash of worker 2 over rounds 20..35: share {share_before:.4} -> frozen {share_frozen:.4} -> recovered {share_after:.4}"
    );
    println!(
        "  makespan: healthy {:.2} s, with crash {:.2} s, with 0.25 s timeout {:.2} s",
        healthy.makespan(),
        crashed.makespan(),
        timed_out.makespan()
    );
    let timeout_exclusions: usize =
        timed_out.rounds.iter().map(|r| r.active.iter().filter(|&&a| !a).count()).sum();
    println!("  timeout excluded workers {timeout_exclusions} times across {ROUNDS} rounds");
    println!("  every round remained feasible and the protocol never deadlocked.");

    architecture_comparison(&env);
}

/// Runs one seeded fault plan against all three architectures and emits
/// the link-layer comparison CSV.
fn architecture_comparison(env: &Cluster) {
    println!("== Fault injection: one seeded plan, three architectures ==");
    // Cost timeouts are a coordinator concept, so the shared plan carries
    // only faults every architecture can express: a crash window plus
    // lossy links.
    let plan = FaultPlan::seeded(2023)
        .with_crash(CRASH)
        .with_drop_probability(0.05)
        .with_duplicate_probability(0.01);

    let mut traces = harness::parallel_map(3, |i| match i {
        0 => MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(plan.clone())
            .run(ROUNDS),
        1 => FullyDistributedSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(plan.clone())
            .run(ROUNDS),
        _ => RingSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(plan.clone())
            .run(ROUNDS),
    });
    let ring = traces.pop().expect("three traces");
    let fd = traces.pop().expect("three traces");
    let mw = traces.pop().expect("three traces");

    // One recovery policy across architectures: the trajectories agree
    // bit-for-bit through the crash window and the lossy links.
    for (a, b) in mw.rounds.iter().zip(&fd.rounds) {
        assert!(
            a.allocation.l2_distance(&b.allocation) < 1e-9,
            "round {}: master-worker and fully-distributed diverged",
            a.round
        );
    }
    for (a, b) in mw.rounds.iter().zip(&ring.rounds) {
        assert!(
            a.allocation.l2_distance(&b.allocation) < 1e-9,
            "round {}: master-worker and ring diverged",
            a.round
        );
    }

    let mut table = Table::new(vec![
        "architecture",
        "messages",
        "retries",
        "acks",
        "duplicates",
        "bytes",
        "makespan_s",
        "recovery_rounds",
        "total_cost",
    ]);
    for trace in [&mw, &fd, &ring] {
        table.push_row(vec![
            trace.architecture.to_string(),
            trace.total_messages().to_string(),
            trace.total_retries().to_string(),
            trace.total_acks().to_string(),
            trace.rounds.iter().map(|r| r.duplicates).sum::<usize>().to_string(),
            trace.total_bytes().to_string(),
            format!("{:.4}", trace.makespan()),
            trace.degraded_rounds().to_string(),
            format!("{:.6}", trace.total_cost()),
        ]);
        println!(
            "  {:>17}: {} msgs, {} retries, {} acks, {} B, makespan {:.2} s, {} degraded rounds",
            trace.architecture,
            trace.total_messages(),
            trace.total_retries(),
            trace.total_acks(),
            trace.total_bytes(),
            trace.makespan(),
            trace.degraded_rounds()
        );
    }
    emit_csv(&table, "faults_architecture_comparison");
    println!("  identical trajectories across architectures; only link-layer costs differ.");
}
