//! Experiment X1 (extension): crash and timeout robustness of the
//! master-worker protocol.
//!
//! The paper motivates the fully-distributed architecture with fault
//! tolerance ("avoid a single point of failure") but does not evaluate
//! faults. This experiment injects a worker crash window and an extreme
//! straggler handled by a master-side timeout, and measures how the
//! protocol re-balances around the failure and recovers.

use crate::common::emit_csv;
use crate::harness;
use dolbie_core::DolbieConfig;
use dolbie_metrics::Table;
use dolbie_mlsim::{Cluster, ClusterConfig, MlModel};
use dolbie_simnet::master_worker::Crash;
use dolbie_simnet::{FixedLatency, MasterWorkerSim};

/// Runs the crash-recovery scenario on a small cluster.
pub fn faults() {
    println!("== Fault injection: crash window + cost timeout (master-worker protocol) ==");
    const ROUNDS: usize = 60;
    let mut cfg = ClusterConfig::paper(MlModel::ResNet18);
    cfg.num_workers = 10;
    let env = Cluster::sample(cfg, 77);

    // The three scenarios are independent protocol runs on copies of the
    // same cluster; fan them out.
    let crash = Crash { worker: 2, from_round: 20, until_round: 35 };
    let mut scenarios = harness::parallel_map(3, |i| {
        let mut sim = MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan());
        match i {
            0 => sim.run(ROUNDS),
            1 => sim.with_crash(crash).run(ROUNDS),
            _ => sim.with_cost_timeout(0.25).run(ROUNDS),
        }
    });
    let timed_out = scenarios.pop().expect("three scenarios");
    let crashed = scenarios.pop().expect("three scenarios");
    let healthy = scenarios.pop().expect("three scenarios");

    let mut table = Table::new(vec![
        "round",
        "healthy_cost",
        "crashed_cost",
        "crashed_share_w2",
        "crashed_active_w2",
        "timeout_cost",
        "timeout_active_count",
    ]);
    for t in 0..ROUNDS {
        table.push_row(vec![
            t.to_string(),
            format!("{:.6}", healthy.rounds[t].global_cost),
            format!("{:.6}", crashed.rounds[t].global_cost),
            format!("{:.6}", crashed.rounds[t].allocation.share(2)),
            (crashed.rounds[t].active[2] as u8).to_string(),
            format!("{:.6}", timed_out.rounds[t].global_cost),
            timed_out.rounds[t].active.iter().filter(|&&a| a).count().to_string(),
        ]);
    }
    emit_csv(&table, "faults_crash_recovery");

    let share_before = crashed.rounds[19].allocation.share(2);
    let share_frozen = crashed.rounds[30].allocation.share(2);
    let share_after = crashed.rounds[ROUNDS - 1].allocation.share(2);
    println!(
        "  crash of worker 2 over rounds 20..35: share {share_before:.4} -> frozen {share_frozen:.4} -> recovered {share_after:.4}"
    );
    println!(
        "  makespan: healthy {:.2} s, with crash {:.2} s, with 0.25 s timeout {:.2} s",
        healthy.makespan(),
        crashed.makespan(),
        timed_out.makespan()
    );
    let timeout_exclusions: usize = timed_out
        .rounds
        .iter()
        .map(|r| r.active.iter().filter(|&&a| !a).count())
        .sum();
    println!("  timeout excluded workers {timeout_exclusions} times across {ROUNDS} rounds");
    println!("  every round remained feasible and the protocol never deadlocked.");
}
