//! Figure 11: average time spent per worker (computation, communication,
//! waiting) and the decision-overhead box statistics.

use crate::common::{emit_csv, paper_cluster, reduction_pct, run_suite, ALGORITHM_ORDER};
use dolbie_metrics::{Summary, Table};
use dolbie_mlsim::{MlModel, TrainingConfig};

const ROUNDS: usize = 100;

/// Fig. 11: both panels.
pub fn fig11(quick: bool) {
    let realizations = if quick { 10 } else { 100 };
    println!("== Fig. 11: average time per worker over {ROUNDS} rounds ({realizations} realizations) ==");

    // Accumulate mean breakdowns and idle times per algorithm.
    let n_algs = ALGORITHM_ORDER.len();
    let mut compute = vec![Vec::new(); n_algs];
    let mut comm = vec![Vec::new(); n_algs];
    let mut wait = vec![Vec::new(); n_algs];
    let mut overhead: Vec<Vec<f64>> = vec![Vec::new(); n_algs];
    for seed in 0..realizations as u64 {
        let cluster = paper_cluster(MlModel::ResNet18, seed);
        let outcomes = run_suite(&cluster, TrainingConfig::latency_only(ROUNDS));
        for (k, o) in outcomes.iter().enumerate() {
            let mean = o.utilization.mean_breakdown();
            compute[k].push(mean.computation);
            comm[k].push(mean.communication);
            wait[k].push(mean.waiting);
            overhead[k].extend(o.overhead_micros.iter().copied());
        }
    }

    let mut table = Table::new(vec![
        "algorithm",
        "computation_s",
        "communication_s",
        "waiting_s",
        "utilization",
        "overhead_us_min",
        "overhead_us_q1",
        "overhead_us_median",
        "overhead_us_q3",
        "overhead_us_max",
    ]);
    println!("  upper panel — mean seconds per worker (computation / communication / waiting):");
    let mut idle_means = vec![0.0; n_algs];
    for k in 0..n_algs {
        let c = Summary::from_samples(&compute[k]).mean();
        let m = Summary::from_samples(&comm[k]).mean();
        let w = Summary::from_samples(&wait[k]).mean();
        idle_means[k] = w;
        let util = (c + m) / (c + m + w);
        let ov = Summary::from_samples(&overhead[k]);
        let (omin, oq1, omed, oq3, omax) = ov.box_stats();
        println!(
            "    {:8} {c:8.2} / {m:8.2} / {w:8.2}  (utilization {:5.1}%)",
            ALGORITHM_ORDER[k],
            util * 100.0
        );
        table.push_row(vec![
            ALGORITHM_ORDER[k].to_string(),
            format!("{c:.4}"),
            format!("{m:.4}"),
            format!("{w:.4}"),
            format!("{util:.4}"),
            format!("{omin:.3}"),
            format!("{oq1:.3}"),
            format!("{omed:.3}"),
            format!("{oq3:.3}"),
            format!("{omax:.3}"),
        ]);
    }
    emit_csv(&table, "fig11_utilization");

    println!("  lower panel — decision overhead per round (microseconds, median [q1, q3]):");
    for k in 0..n_algs {
        let ov = Summary::from_samples(&overhead[k]);
        let (_, q1, med, q3, _) = ov.box_stats();
        println!("    {:8} {med:9.3} [{q1:9.3}, {q3:9.3}]", ALGORITHM_ORDER[k]);
    }

    let dolbie_idx = 4;
    println!(
        "  DOLBIE idle-time reduction (paper: 84.6/71.1/67.2/42.8% vs EQU/OGD/LB-BSP/ABS):"
    );
    for name in ["EQU", "OGD", "LB-BSP", "ABS"] {
        let idx = ALGORITHM_ORDER.iter().position(|a| a == &name).unwrap();
        println!(
            "    vs {:8} {:5.1}%",
            name,
            reduction_pct(idle_means[idx], idle_means[dolbie_idx])
        );
    }
}
