//! Figure 11: average time spent per worker (computation, communication,
//! waiting) and the decision-overhead box statistics.

use crate::common::{cluster_suite, emit_csv, paper_cluster, reduction_pct, ALGORITHM_ORDER};
use crate::harness;
use dolbie_metrics::{Summary, Table};
use dolbie_mlsim::{run_training, MlModel, TrainingConfig};

const ROUNDS: usize = 100;

/// Fig. 11: both panels.
pub fn fig11(quick: bool) {
    let realizations = if quick { 10 } else { 100 };
    println!(
        "== Fig. 11: average time per worker over {ROUNDS} rounds ({realizations} realizations) =="
    );

    // Accumulate mean breakdowns and idle times per algorithm. Each
    // (seed, algorithm) cell is independent; the harness fans the grid out
    // and hands results back in the sequential seed-major order.
    let n_algs = ALGORITHM_ORDER.len();
    let mut compute = vec![Vec::new(); n_algs];
    let mut comm = vec![Vec::new(); n_algs];
    let mut wait = vec![Vec::new(); n_algs];
    let mut overhead: Vec<Vec<f64>> = vec![Vec::new(); n_algs];
    let flat = harness::parallel_map(realizations * n_algs, |i| {
        let seed = (i / n_algs) as u64;
        let k = i % n_algs;
        let cluster = paper_cluster(MlModel::ResNet18, seed);
        let mut balancer = cluster_suite(&cluster).swap_remove(k);
        let o = run_training(balancer.as_mut(), cluster, TrainingConfig::latency_only(ROUNDS));
        let mean = o.utilization.mean_breakdown();
        (mean.computation, mean.communication, mean.waiting, o.overhead_micros)
    });
    for (i, (c, m, w, micros)) in flat.into_iter().enumerate() {
        let k = i % n_algs;
        compute[k].push(c);
        comm[k].push(m);
        wait[k].push(w);
        overhead[k].extend(micros);
    }

    let mut table = Table::new(vec![
        "algorithm",
        "computation_s",
        "communication_s",
        "waiting_s",
        "utilization",
        "overhead_us_min",
        "overhead_us_q1",
        "overhead_us_median",
        "overhead_us_q3",
        "overhead_us_max",
    ]);
    println!("  upper panel — mean seconds per worker (computation / communication / waiting):");
    let mut idle_means = vec![0.0; n_algs];
    for k in 0..n_algs {
        let c = Summary::from_samples(&compute[k]).mean();
        let m = Summary::from_samples(&comm[k]).mean();
        let w = Summary::from_samples(&wait[k]).mean();
        idle_means[k] = w;
        let util = (c + m) / (c + m + w);
        let ov = Summary::from_samples(&overhead[k]);
        let (omin, oq1, omed, oq3, omax) = ov.box_stats();
        println!(
            "    {:8} {c:8.2} / {m:8.2} / {w:8.2}  (utilization {:5.1}%)",
            ALGORITHM_ORDER[k],
            util * 100.0
        );
        table.push_row(vec![
            ALGORITHM_ORDER[k].to_string(),
            format!("{c:.4}"),
            format!("{m:.4}"),
            format!("{w:.4}"),
            format!("{util:.4}"),
            format!("{omin:.3}"),
            format!("{oq1:.3}"),
            format!("{omed:.3}"),
            format!("{oq3:.3}"),
            format!("{omax:.3}"),
        ]);
    }
    emit_csv(&table, "fig11_utilization");

    println!("  lower panel — decision overhead per round (microseconds, median [q1, q3]):");
    for k in 0..n_algs {
        let ov = Summary::from_samples(&overhead[k]);
        let (_, q1, med, q3, _) = ov.box_stats();
        println!("    {:8} {med:9.3} [{q1:9.3}, {q3:9.3}]", ALGORITHM_ORDER[k]);
    }

    let dolbie_idx = 4;
    println!("  DOLBIE idle-time reduction (paper: 84.6/71.1/67.2/42.8% vs EQU/OGD/LB-BSP/ABS):");
    for name in ["EQU", "OGD", "LB-BSP", "ABS"] {
        let idx = ALGORITHM_ORDER.iter().position(|a| a == &name).unwrap();
        println!(
            "    vs {:8} {:5.1}%",
            name,
            reduction_pct(idle_means[idx], idle_means[dolbie_idx])
        );
    }
}
