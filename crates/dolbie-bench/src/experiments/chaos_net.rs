//! Experiment X7 (extension): the net-tier chaos harness.
//!
//! The simnet chaos sweep (X4) stresses the protocol *logic* under
//! simulated faults; this sweep stresses the shipped TCP control plane
//! itself. Every case builds a real loopback tree — root, `M`
//! shard-masters, `N` worker threads, every byte through the kernel —
//! and injects seeded chaos at the socket layer: scheduled worker
//! kills, shard-master kills at randomized round offsets (pre- and
//! post-commit), lossy stop-and-wait envelopes on the worker tier and
//! on the backbone, and quorum policies that demand structured
//! termination. Each surviving run is machine-checked against the five
//! chaos invariants:
//!
//! 1. **simplex feasibility** — every stitched allocation satisfies
//!    `|Σx − 1| < 1e-9` with `x_i ≥ 0`, and the final allocation holds
//!    `|Σx − 1| ≤ 1e-12` over the surviving members;
//! 2. **α monotonicity** — the root's recorded step size never rises;
//! 3. **no stranded share** — a worker buried by any recorded epoch
//!    holds exactly `0.0` from that epoch's round on;
//! 4. **twin agreement** — the surviving trajectory is **bitwise**
//!    identical to a sequential engine replaying the recorded
//!    membership schedule (`RootEpoch` by `RootEpoch`);
//! 5. **termination** — the run completes its full horizon (or, on a
//!    quorum case, returns the structured quorum error), with no panic;
//!
//! plus **no hang**: every case, passing or failing, must finish inside
//! a hard wall-clock bound — a stuck deadline loop fails the sweep even
//! if it would eventually satisfy the other five.
//!
//! A failing case is greedily shrunk — kills removed, loss silenced,
//! horizon halved, while the failure reproduces — and printed as a
//! copy-pasteable `#[test]` reproducer, exactly like the simnet sweep.
//! The quick variant writes `results/chaos_net_quick.csv`, never
//! clobbering the full sweep's `results/chaos_net.csv`.

use crate::common::emit_csv;
use dolbie_core::cost::DynCost;
use dolbie_core::{Allocation, Dolbie, DolbieConfig, LoadBalancer, Observation};
use dolbie_metrics::Table;
use dolbie_net::env::{EnvKind, WireEnvSpec};
use dolbie_net::shard::{run_sharded_loopback, RootEpoch, ShardKill, ShardedConfig};
use dolbie_simnet::faults::{FaultPlan, RetryPolicy};
use dolbie_simnet::invariants;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Cases in the full sweep.
const FULL_CASES: usize = 80;
/// Cases in the `--quick` smoke sweep (the tier-1 gate).
const QUICK_CASES: usize = 10;
/// Master seed the whole sweep is derived from.
const MASTER_SEED: u64 = 0xD01B_0C4A;
/// The per-case hang bound. Cases are ≤ 30 rounds over ≤ 10 workers
/// with 2 s frame deadlines; protocol time is well under a second, so
/// this only has to absorb dev-profile CI noise while still catching a
/// run that sleeps a deadline loop forever.
const CASE_WALL_BOUND: Duration = Duration::from_secs(30);

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash(seed: u64, salt: u64) -> u64 {
    splitmix64(seed ^ splitmix64(salt))
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One randomized net-chaos case — everything `run_case` needs to build
/// the loopback tree, all derived from pure hashes of the case index.
#[derive(Debug, Clone)]
pub struct NetChaosCase {
    /// Case index within the sweep (names the case in the CSV).
    pub id: usize,
    /// Fleet size.
    pub n: usize,
    /// Shard count.
    pub m: usize,
    /// Horizon in rounds.
    pub rounds: usize,
    /// Seed for the per-round cost functions.
    pub env_seed: u64,
    /// Scheduled worker kills `(global id, die_after_round)`.
    pub worker_kills: Vec<(usize, usize)>,
    /// An optional shard-master kill.
    pub shard_kill: Option<ShardKill>,
    /// Worker-tier socket loss `(drop_p, dup_p, seed)`, if any.
    pub worker_loss: Option<(f64, f64, u64)>,
    /// Backbone socket loss `(drop_p, dup_p, seed)`, if any.
    pub backbone_loss: Option<(f64, f64, u64)>,
    /// Quorum floor; cases with `min_live_shards == m` and a shard kill
    /// expect the structured quorum error instead of a degraded run.
    pub min_live_shards: usize,
}

impl NetChaosCase {
    /// Whether this case must terminate with the structured quorum
    /// error rather than complete degraded.
    pub fn expects_quorum_error(&self) -> bool {
        self.shard_kill.is_some() && self.min_live_shards >= self.m
    }

    /// The loopback configuration this case runs.
    pub fn config(&self) -> ShardedConfig {
        let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: self.env_seed };
        let mut cfg = ShardedConfig::new(self.n, self.m, self.rounds, env)
            .with_min_live_shards(self.min_live_shards);
        cfg.frame_timeout = Duration::from_secs(2);
        if let Some((drop_p, dup_p, seed)) = self.worker_loss {
            cfg = cfg.with_fault_plan(
                FaultPlan::seeded(seed)
                    .with_drop_probability(drop_p)
                    .with_duplicate_probability(dup_p)
                    .with_retry(RetryPolicy::new(0.001, 1.5, 6)),
            );
        }
        if let Some((drop_p, dup_p, seed)) = self.backbone_loss {
            cfg = cfg.with_backbone_fault_plan(
                FaultPlan::seeded(seed)
                    .with_drop_probability(drop_p)
                    .with_duplicate_probability(dup_p)
                    .with_retry(RetryPolicy::new(0.001, 1.5, 6)),
            );
        }
        for &(w, r) in &self.worker_kills {
            cfg = cfg.with_worker_kill(w, r);
        }
        if let Some(kill) = self.shard_kill {
            cfg = cfg.with_shard_kill(kill);
        }
        cfg
    }
}

/// Derives case `id` of the sweep — a pure function, so any subset can
/// be regenerated independently and in any order. Kill placement is
/// constrained so at least one worker always survives (total fleet
/// death is a distinct structured error, tested separately).
pub fn case_from_seed(id: usize, master_seed: u64) -> NetChaosCase {
    let s = splitmix64(master_seed ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let n = 4 + (hash(s, 1) % 7) as usize;
    let m = 1 + (hash(s, 2) % 3) as usize;
    let rounds = 8 + (hash(s, 3) % 23) as usize;

    let shard_kill = (id % 5 == 3 && m >= 2).then(|| ShardKill {
        shard: hash(s, 10) as usize % m,
        after_round: 1 + hash(s, 11) as usize % (rounds - 3),
        mid_round: hash(s, 12) & 1 == 0,
    });
    // Victims come from outside the killed shard's range, and at least
    // one non-victim member must remain.
    let buried = shard_kill.map(|sk| {
        let per = n / m;
        let extra = n % m;
        let start = sk.shard * per + sk.shard.min(extra);
        let len = per + usize::from(sk.shard < extra);
        start..start + len
    });
    let mut worker_kills = Vec::new();
    if id.is_multiple_of(2) {
        let eligible: Vec<usize> =
            (0..n).filter(|i| buried.as_ref().is_none_or(|r| !r.contains(i))).collect();
        let budget = (1 + hash(s, 4) as usize % 2).min(eligible.len().saturating_sub(1));
        for j in 0..budget {
            let victim = eligible[hash(s, 20 + j as u64) as usize % eligible.len()];
            if worker_kills.iter().any(|&(w, _)| w == victim) {
                continue;
            }
            worker_kills.push((victim, 1 + hash(s, 30 + j as u64) as usize % (rounds - 2)));
        }
    }

    let worker_loss =
        (id % 3 == 1).then(|| (0.02 + unit(hash(s, 5)) * 0.1, unit(hash(s, 6)) * 0.05, hash(s, 7)));
    let backbone_loss = (id % 4 == 2)
        .then(|| (0.02 + unit(hash(s, 8)) * 0.1, unit(hash(s, 9)) * 0.05, hash(s, 13)));
    let min_live_shards = if id % 11 == 7 && shard_kill.is_some() { m } else { 1 };

    NetChaosCase {
        id,
        n,
        m,
        rounds,
        env_seed: hash(s, 14),
        worker_kills,
        shard_kill,
        worker_loss,
        backbone_loss,
        min_live_shards,
    }
}

/// Replays the flat sequential engine under the recorded membership
/// schedule — the twin invariant 4 compares bitwise. Element `t` is the
/// allocation played in round `t`, plus one final post-horizon entry.
pub fn twin_allocations(
    env: WireEnvSpec,
    n: usize,
    rounds: usize,
    epochs: &[RootEpoch],
) -> Vec<Vec<f64>> {
    let mut twin = Dolbie::with_config(Allocation::uniform(n), DolbieConfig::new());
    let mut members = vec![true; n];
    let mut out = Vec::with_capacity(rounds + 1);
    for t in 0..rounds {
        for e in epochs.iter().filter(|e| e.round == t) {
            members.copy_from_slice(&e.members);
            twin.apply_membership(&members);
        }
        let shares = twin.allocation().clone();
        out.push((0..n).map(|i| shares.share(i)).collect());
        let cost_fns: Vec<DynCost> = (0..n).map(|i| env.cost_for(t, i)).collect();
        let obs = Observation::from_costs_masked(t, &shares, &cost_fns, &members, Vec::new());
        twin.observe(&obs);
    }
    for e in epochs.iter().filter(|e| e.round == rounds) {
        members.copy_from_slice(&e.members);
        twin.apply_membership(&members);
    }
    out.push((0..n).map(|i| twin.allocation().share(i)).collect());
    out
}

/// Runs one case over real loopback TCP and checks the invariants. A
/// panic anywhere in the tree is converted into a failure; a hang is
/// caught by the wall bound.
pub fn run_case(case: &NetChaosCase) -> Result<(), String> {
    let case = case.clone();
    let started = Instant::now();
    let outcome =
        catch_unwind(AssertUnwindSafe(move || check_case(&case))).unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic".into());
            Err(format!("panic: {msg}"))
        });
    if started.elapsed() >= CASE_WALL_BOUND {
        return Err(format!(
            "no-hang: the case took {:.1} s, past the {:.0} s bound",
            started.elapsed().as_secs_f64(),
            CASE_WALL_BOUND.as_secs_f64()
        ));
    }
    outcome
}

fn check_case(case: &NetChaosCase) -> Result<(), String> {
    let cfg = case.config();
    if case.expects_quorum_error() {
        return match run_sharded_loopback(&cfg) {
            Ok(_) => Err("quorum: the run completed instead of failing the quorum policy".into()),
            Err(e) => {
                let msg = e.to_string();
                if msg.contains("quorum") {
                    Ok(())
                } else {
                    Err(format!("quorum: expected the structured quorum error, got: {msg}"))
                }
            }
        };
    }
    let run = run_sharded_loopback(&cfg).map_err(|e| format!("run failed: {e}"))?;

    // (5) termination.
    if invariants::termination_violation(run.root.rounds.len(), case.rounds) {
        return Err(format!(
            "termination: {} of {} rounds committed",
            run.root.rounds.len(),
            case.rounds
        ));
    }
    let stitched = run.allocations();
    let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: case.env_seed };
    let reference = twin_allocations(env, case.n, case.rounds, &run.root.epochs);

    // The membership mask in force at round `t`: the last epoch applied
    // at or before `t` (an epoch at round `t` applies *before* `t`).
    let members_at = |t: usize| -> Vec<bool> {
        run.root
            .epochs
            .iter()
            .rfind(|e| e.round <= t)
            .map(|e| e.members.clone())
            .unwrap_or_else(|| vec![true; case.n])
    };

    let mut alpha = invariants::AlphaMonotone::new();
    for (t, round) in run.root.rounds.iter().enumerate() {
        // (1) simplex feasibility on the stitched allocation.
        match invariants::simplex_violation(&stitched[t], invariants::SIMPLEX_TOL) {
            Some(invariants::SimplexViolation::Sum(sum)) => {
                return Err(format!("feasibility: round {t} sums to {sum:.12}"));
            }
            Some(invariants::SimplexViolation::Negative { worker, share }) => {
                return Err(format!(
                    "feasibility: round {t} gives worker {worker} share {share:e}"
                ));
            }
            None => {}
        }
        // (2) α monotonicity.
        if let Some(rise) = alpha.observe(round.alpha) {
            return Err(format!(
                "alpha: round {t} raised α {:.12} -> {:.12}",
                rise.previous, rise.alpha
            ));
        }
        // (3) no stranded share. The stitched representation has no
        // per-round active set, so only the share check applies.
        match invariants::stranded_violation(&members_at(t), &stitched[t], None) {
            Some(invariants::StrandedShare::Share { worker, share }) => {
                return Err(format!(
                    "stranded share: round {t} leaves {share:.3e} on buried worker {worker}"
                ));
            }
            Some(invariants::StrandedShare::Active { .. }) | None => {}
        }
        // (4) twin agreement, bitwise.
        for i in 0..case.n {
            if stitched[t][i].to_bits() != reference[t][i].to_bits() {
                return Err(format!(
                    "twin: round {t}, worker {i}: {:e} (net) != {:e} (sequential twin)",
                    stitched[t][i], reference[t][i]
                ));
            }
        }
    }
    // Final entry: the tight simplex bound over survivors, and parity.
    let last = &stitched[case.rounds];
    let sum: f64 = last.iter().sum();
    if (sum - 1.0).abs() > 1e-12 {
        return Err(format!("feasibility: final Σx = {sum:.15}"));
    }
    for i in 0..case.n {
        if last[i].to_bits() != reference[case.rounds][i].to_bits() {
            return Err(format!("twin: final shares diverge at worker {i}"));
        }
    }
    Ok(())
}

/// Greedily shrinks a failing case to a local minimum: drop kills,
/// silence loss, relax the quorum, and halve the horizon, keeping each
/// reduction only while the failure reproduces.
pub fn shrink(case: &NetChaosCase) -> NetChaosCase {
    let mut current = case.clone();
    loop {
        let mut improved = false;
        for i in 0..current.worker_kills.len() {
            let mut cand = current.clone();
            cand.worker_kills.remove(i);
            if run_case(&cand).is_err() {
                current = cand;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        for strip in [
            |c: &mut NetChaosCase| c.shard_kill = None,
            |c: &mut NetChaosCase| c.worker_loss = None,
            |c: &mut NetChaosCase| c.backbone_loss = None,
            |c: &mut NetChaosCase| c.min_live_shards = 1,
        ] {
            let mut cand = current.clone();
            strip(&mut cand);
            if format!("{cand:?}") != format!("{current:?}") && run_case(&cand).is_err() {
                current = cand;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        if current.rounds > 4 {
            let mut cand = current.clone();
            cand.rounds /= 2;
            cand.worker_kills.retain(|&(_, r)| r + 2 <= cand.rounds);
            if cand.shard_kill.is_some_and(|sk| sk.after_round + 3 > cand.rounds) {
                cand.shard_kill = None;
            }
            if run_case(&cand).is_err() {
                current = cand;
                improved = true;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Renders a case as a copy-pasteable `#[test]` reproducer.
pub fn reproducer(case: &NetChaosCase) -> String {
    let mut out = String::new();
    out.push_str("#[test]\nfn chaos_net_reproducer() {\n");
    out.push_str(&format!(
        "    // net sweep case {} (n = {}, m = {}, {} rounds)\n",
        case.id, case.n, case.m, case.rounds
    ));
    out.push_str(&format!(
        "    let case = NetChaosCase {{\n        id: {},\n        n: {},\n        m: {},\n        \
         rounds: {},\n        env_seed: {:#018x},\n        worker_kills: vec!{:?},\n        \
         shard_kill: {:?},\n        worker_loss: {:?},\n        backbone_loss: {:?},\n        \
         min_live_shards: {},\n    }};\n",
        case.id,
        case.n,
        case.m,
        case.rounds,
        case.env_seed,
        case.worker_kills,
        case.shard_kill,
        case.worker_loss,
        case.backbone_loss,
        case.min_live_shards,
    ));
    out.push_str("    assert!(chaos_net::run_case(&case).is_ok());\n}\n");
    out
}

/// Runs the net-chaos sweep, emits `results/<name>.csv`, and panics
/// with a shrunk reproducer if any invariant fails. Cases run
/// sequentially: each one already fans a whole process tree of threads
/// across the machine, and sequential execution keeps the wall-clock
/// hang bound meaningful.
pub fn chaos_net_named(quick: bool, name: &str) {
    let total = if quick { QUICK_CASES } else { FULL_CASES };
    println!("== Net chaos sweep: {total} seeded kill/loss cases over real loopback TCP ==");
    let results: Vec<(NetChaosCase, Result<(), String>)> = (0..total)
        .map(|id| {
            let case = case_from_seed(id, MASTER_SEED);
            let outcome = run_case(&case);
            (case, outcome)
        })
        .collect();

    let mut table = Table::new(vec![
        "case",
        "n",
        "shards",
        "rounds",
        "worker_kills",
        "shard_kill",
        "quorum_case",
        "worker_drop_p",
        "backbone_drop_p",
        "passed",
    ]);
    let mut failures: Vec<(&NetChaosCase, &String)> = Vec::new();
    for (case, outcome) in &results {
        if let Err(msg) = outcome {
            failures.push((case, msg));
        }
        table.push_row(vec![
            case.id.to_string(),
            case.n.to_string(),
            case.m.to_string(),
            case.rounds.to_string(),
            case.worker_kills.len().to_string(),
            (case.shard_kill.is_some() as u8).to_string(),
            (case.expects_quorum_error() as u8).to_string(),
            format!("{:.4}", case.worker_loss.map_or(0.0, |(d, _, _)| d)),
            format!("{:.4}", case.backbone_loss.map_or(0.0, |(d, _, _)| d)),
            (outcome.is_ok() as u8).to_string(),
        ]);
    }
    emit_csv(&table, name);
    let kills: usize = results.iter().map(|(c, _)| c.worker_kills.len()).sum();
    let shard_kills = results.iter().filter(|(c, _)| c.shard_kill.is_some()).count();
    println!(
        "  {} / {total} cases passed ({kills} worker kills, {shard_kills} shard-master kills, \
         every survivor bitwise on its membership twin)",
        total - failures.len(),
    );

    if let Some((case, msg)) = failures.first() {
        println!("  FAILURE: case {}: {msg}", case.id);
        println!("  shrinking to a minimal reproducer...");
        let minimal = shrink(case);
        let final_msg = run_case(&minimal).expect_err("shrunk case still fails");
        println!("--- minimal reproducer ({final_msg}) ---");
        println!("{}", reproducer(&minimal));
        panic!("net chaos sweep found {} invariant violation(s)", failures.len());
    }
}

/// The default entry point: `results/chaos_net.csv` for the full sweep,
/// `results/chaos_net_quick.csv` for the quick smoke — distinct names,
/// so the smoke never clobbers a full measurement.
pub fn chaos_net(quick: bool) {
    if quick {
        chaos_net_named(quick, "chaos_net_quick");
    } else {
        chaos_net_named(quick, "chaos_net");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_cases_are_deterministic_and_mixed() {
        let cases: Vec<NetChaosCase> =
            (0..FULL_CASES).map(|i| case_from_seed(i, MASTER_SEED)).collect();
        for case in &cases {
            let again = case_from_seed(case.id, MASTER_SEED);
            assert_eq!(format!("{case:?}"), format!("{again:?}"), "case {}", case.id);
            assert!(case.n >= 4 && case.m >= 1 && case.m <= 3 && case.m <= case.n);
            assert!(case.rounds >= 8);
            for &(w, r) in &case.worker_kills {
                assert!(w < case.n && r + 2 <= case.rounds, "kill ({w}, {r}) out of bounds");
            }
            if let Some(sk) = case.shard_kill {
                assert!(sk.shard < case.m && sk.after_round + 3 <= case.rounds);
            }
        }
        assert!(cases.iter().any(|c| !c.worker_kills.is_empty()), "the sweep must kill workers");
        assert!(cases.iter().any(|c| c.shard_kill.is_some()), "the sweep must kill shard-masters");
        assert!(
            cases.iter().any(|c| c.shard_kill.is_some_and(|sk| sk.mid_round)),
            "the sweep must kill a shard-master mid-round"
        );
        assert!(
            cases.iter().any(|c| c.worker_loss.is_some()),
            "the sweep must stress lossy workers"
        );
        assert!(
            cases.iter().any(|c| c.backbone_loss.is_some()),
            "the sweep must stress a lossy backbone"
        );
        assert!(
            cases.iter().any(|c| c.expects_quorum_error()),
            "the sweep must exercise the quorum policy"
        );
    }

    /// Kill placement never empties the fleet: at least one worker
    /// survives every case's combined shard and worker kills.
    #[test]
    fn kill_placement_always_leaves_a_survivor() {
        for id in 0..FULL_CASES {
            let case = case_from_seed(id, MASTER_SEED);
            let mut alive = vec![true; case.n];
            if let Some(sk) = case.shard_kill {
                let cfg = case.config();
                let layout = dolbie_core::ShardLayout::even(cfg.num_workers, cfg.num_shards);
                for i in layout.range(sk.shard) {
                    alive[i] = false;
                }
            }
            for &(w, _) in &case.worker_kills {
                alive[w] = false;
            }
            assert!(alive.iter().any(|&a| a), "case {id} kills the whole fleet");
        }
    }

    /// A small prefix of the sweep passes end to end — real sockets,
    /// real kills, invariants checked. Kept to a prefix so `cargo test`
    /// stays brisk; the full sweep runs through `paper_figures`.
    #[test]
    fn a_small_prefix_of_the_sweep_passes() {
        for id in 0..6 {
            let case = case_from_seed(id, MASTER_SEED);
            if let Err(msg) = run_case(&case) {
                panic!("case {id} failed: {msg}\n{}", reproducer(&shrink(&case)));
            }
        }
    }
}
