//! Figures 6–8: training accuracy versus wall-clock time for the three
//! model cost profiles.

use crate::common::{emit_csv, emit_svg, paper_cluster, reduction_pct, run_suite, ALGORITHM_ORDER};
use dolbie_metrics::plot::{PlotConfig, Series};
use dolbie_metrics::Table;
use dolbie_mlsim::{MlModel, TrainingConfig};

const ROUNDS: usize = 200;
/// Accuracy threshold reported in the speedup summary. The paper uses 95%
/// training accuracy on its CIFAR-10 models; the proxy task reaches the
/// same regime.
const TARGET_ACCURACY: f64 = 0.95;

/// One accuracy-vs-wall-clock figure for `model`.
pub fn accuracy_figure(model: MlModel, figure_name: &str, seed: u64) {
    println!("== {figure_name}: training accuracy vs wall-clock time ({model}) ==");
    let cluster = paper_cluster(model, seed);
    let outcomes = run_suite(&cluster, TrainingConfig::paper_like(ROUNDS));

    let mut columns = vec!["round".to_string(), "accuracy".to_string()];
    for alg in ALGORITHM_ORDER {
        columns.push(format!("{alg}_wall_clock"));
    }
    let mut table = Table::new(columns);
    for t in 0..ROUNDS {
        // Accuracy per round is identical across balancers (synchronous
        // SGD); assert it rather than assume it.
        let acc = outcomes[0].rounds[t].train_accuracy.expect("training enabled");
        for o in &outcomes {
            debug_assert_eq!(o.rounds[t].train_accuracy, Some(acc));
        }
        let mut row = vec![t as f64, acc];
        row.extend(outcomes.iter().map(|o| o.rounds[t].wall_clock));
        table.push_numeric_row(&row);
    }
    emit_csv(&table, figure_name);
    let svg_series: Vec<Series> = outcomes
        .iter()
        .map(|o| {
            Series::new(
                o.algorithm.clone(),
                o.rounds
                    .iter()
                    .map(|r| (r.wall_clock, r.train_accuracy.expect("training enabled")))
                    .collect(),
            )
        })
        .collect();
    emit_svg(
        figure_name,
        &PlotConfig::new(
            format!("Training accuracy vs wall-clock ({model})"),
            "wall-clock (s)",
            "training accuracy",
        ),
        &svg_series,
    );

    let final_acc = outcomes[0].rounds[ROUNDS - 1].train_accuracy.unwrap();
    println!("  final training accuracy after {ROUNDS} rounds: {final_acc:.3}");
    println!("  total wall-clock:");
    for o in &outcomes {
        println!("    {:8} {:9.2} s", o.algorithm, o.total_wall_clock());
    }
    let target = if final_acc >= TARGET_ACCURACY { TARGET_ACCURACY } else { final_acc * 0.98 };
    println!("  time to {:.0}% training accuracy:", target * 100.0);
    let times: Vec<Option<f64>> = outcomes.iter().map(|o| o.time_to_accuracy(target)).collect();
    for (o, t) in outcomes.iter().zip(&times) {
        match t {
            Some(v) => println!("    {:8} {v:9.2} s", o.algorithm),
            None => println!("    {:8} (not reached)", o.algorithm),
        }
    }
    if let Some(dolbie) = times[4] {
        println!("  DOLBIE speedup (paper, ResNet18: 78.1/67.4/46.9/34.1% vs EQU/OGD/LB-BSP/ABS):");
        for (k, name) in ["EQU", "OGD", "ABS", "LB-BSP"].iter().enumerate() {
            let idx = ALGORITHM_ORDER.iter().position(|a| a == name).unwrap();
            let _ = k;
            if let Some(base) = times[idx] {
                println!("    vs {:8} {:5.1}%", name, reduction_pct(base, dolbie));
            }
        }
    }
}

/// Fig. 6: LeNet5.
pub fn fig6() {
    accuracy_figure(MlModel::LeNet5, "fig6_accuracy_lenet5", 42);
}

/// Fig. 7: ResNet18.
pub fn fig7() {
    accuracy_figure(MlModel::ResNet18, "fig7_accuracy_resnet18", 42);
}

/// Fig. 8: VGG16 — plus the paper's cross-model claim that DOLBIE's
/// advantage over LB-BSP grows with model size.
pub fn fig8() {
    accuracy_figure(MlModel::Vgg16, "fig8_accuracy_vgg16", 42);
}
