//! Experiment X2: large-N single-episode scaling across round kernels.
//!
//! For each fleet size N the experiment runs one episode over an
//! identical seeded heterogeneous latency fleet once per requested
//! kernel variant:
//!
//! - `split` — the sequential multi-pass `Dolbie` engine (the baseline
//!   and the bitwise reference for every other row),
//! - `fused` — the fused two-sweep kernel (`FusedDolbie`),
//! - `simd`  — the fused kernel with explicit four-wide lanes.
//!
//! Every fused/SIMD row asserts its episode aggregate, final shares and
//! α schedule are *bitwise* identical to the split reference, and records
//! worker-rounds/second, the share-buffer alignment and peak RSS.
//!
//! Output routing keeps the recorded baseline honest: the full sweep
//! (N up to 10^6 — the acceptance configuration) writes
//! `BENCH_large_n.json` at the workspace root; `--quick` runs a reduced
//! grid for the tier-1 smoke and writes `results/large_n_quick.json`
//! instead, never clobbering the recorded baseline. With `gate` set, the
//! quick run additionally enforces a throughput floor against the
//! recorded baseline (a >20% per-core regression fails tier-1).

use crate::common::{emit_csv, workspace_root};
use crate::harness;
use dolbie_core::cost::{DynCost, LatencyCost};
use dolbie_core::kernel::{FusedDolbie, KernelVariant};
use dolbie_core::{run_episode_with_static_costs, Dolbie, LoadBalancer};
use dolbie_metrics::Table;
use std::time::Instant;

/// Fraction of the recorded per-core baseline a gated quick run must
/// reach: a >20% regression fails tier-1.
const GATE_FLOOR: f64 = 0.8;

/// Options threaded in from the `paper_figures` CLI.
pub struct LargeNOptions {
    /// Reduced grid + `results/large_n_quick.json` output.
    pub quick: bool,
    /// Which kernels to measure (the split reference always runs — it is
    /// the parity oracle — but only gets a row when requested).
    pub kernels: Vec<KernelVariant>,
    /// Enforce the throughput floor against the recorded baseline.
    pub gate: bool,
}

impl LargeNOptions {
    /// All kernels, no gate.
    pub fn new(quick: bool) -> Self {
        Self { quick, kernels: KernelVariant::all().to_vec(), gate: false }
    }
}

/// One measured (fleet size, kernel) cell.
struct KernelRow {
    n: usize,
    rounds: usize,
    kernel: KernelVariant,
    /// Largest power of two dividing the share-buffer address (capped at
    /// 4096): the effective alignment the blocked sweeps actually got.
    alignment: usize,
    seconds: f64,
    peak_rss_bytes: u64,
    bitwise_match: bool,
}

impl KernelRow {
    fn worker_rounds(&self) -> f64 {
        (self.n * self.rounds) as f64
    }

    fn worker_rounds_per_sec(&self) -> f64 {
        self.worker_rounds() / self.seconds.max(1e-9)
    }
}

/// splitmix64: the same seeded generator used across the bench suite for
/// deterministic parameters without pulling in `rand` here.
fn splitmix(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z = z ^ (z >> 31);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A heterogeneous fleet under the §VI-A latency model (closed-form
/// eq. (4) inverse, so the per-round work is the engine, not bisection):
/// speeds spread 8x, seeded and deterministic.
fn latency_fleet(n: usize, seed: u64) -> Vec<DynCost> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            let speed = 64.0 + 448.0 * splitmix(&mut state);
            Box::new(LatencyCost::new(256.0, speed, 0.05)) as DynCost
        })
        .collect()
}

/// Peak resident set size of this process (Linux `VmHWM`), if available.
/// The high-water mark is monotone process-wide, which is why the sweep
/// runs fleet sizes in increasing order.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Total system memory (Linux `MemTotal`), if available.
fn mem_total_bytes() -> Option<u64> {
    let meminfo = std::fs::read_to_string("/proc/meminfo").ok()?;
    for line in meminfo.lines() {
        if let Some(rest) = line.strip_prefix("MemTotal:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Largest power of two dividing `ptr`, capped at one page-ish (4096):
/// the alignment the hot share buffer actually landed on.
fn buffer_alignment(ptr: *const f64) -> usize {
    let addr = ptr as usize;
    if addr == 0 {
        return 0;
    }
    1usize << (addr.trailing_zeros().min(12))
}

/// Runs one fleet size through the split reference and each requested
/// fused-kernel variant, asserting bitwise equivalence of episode cost,
/// final shares and α schedule for every non-reference row.
fn measure(n: usize, rounds: usize, seed: u64, kernels: &[KernelVariant]) -> Vec<KernelRow> {
    let costs = latency_fleet(n, seed);

    // The split engine always runs: it is the parity oracle.
    let mut sequential = Dolbie::new(n);
    let start = Instant::now();
    let seq_summary = run_episode_with_static_costs(&mut sequential, &costs, rounds, None);
    let sequential_seconds = start.elapsed().as_secs_f64();

    let mut rows = Vec::with_capacity(kernels.len());
    for &kernel in kernels {
        let row = match kernel {
            KernelVariant::Split => KernelRow {
                n,
                rounds,
                kernel,
                alignment: buffer_alignment(sequential.allocation().as_slice().as_ptr()),
                seconds: sequential_seconds,
                peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
                bitwise_match: true, // the reference itself
            },
            KernelVariant::Fused | KernelVariant::Simd => {
                let mut fused = FusedDolbie::from_costs(&costs)
                    .expect("the latency fleet has a slab layout")
                    .with_variant(kernel);
                let start = Instant::now();
                let summary = fused.run(rounds);
                let seconds = start.elapsed().as_secs_f64();
                let bitwise_match = summary.total_cost.to_bits()
                    == seq_summary.total_cost.to_bits()
                    && summary.final_global_cost.to_bits()
                        == seq_summary.final_global_cost.to_bits()
                    && fused.alphas_used() == sequential.alphas_used()
                    && (0..n).all(|i| {
                        fused.allocation().share(i).to_bits()
                            == sequential.allocation().share(i).to_bits()
                    });
                assert!(
                    bitwise_match,
                    "N = {n}: the {} kernel diverged from the split engine",
                    kernel.name()
                );
                KernelRow {
                    n,
                    rounds,
                    kernel,
                    alignment: buffer_alignment(fused.allocation().as_slice().as_ptr()),
                    seconds,
                    peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
                    bitwise_match,
                }
            }
        };
        rows.push(row);
    }
    rows
}

fn write_bench_json(rows: &[KernelRow], quick: bool) {
    let path = if quick {
        let dir = workspace_root().join("results");
        let _ = std::fs::create_dir_all(&dir);
        dir.join("large_n_quick.json")
    } else {
        workspace_root().join("BENCH_large_n.json")
    };
    let cpu_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let threads = harness::threads();
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"cpu_cores\": {cpu_cores},\n"));
    body.push_str(&format!("  \"threads\": {threads},\n"));
    body.push_str(&format!("  \"quick\": {quick},\n"));
    body.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"n\": {}, \"rounds\": {}, \"kernel\": \"{}\", \"alignment\": {}, \
             \"seconds\": {:.3}, \"worker_rounds_per_sec\": {:.3e}, \"peak_rss_mb\": {:.1}, \
             \"bitwise_match\": {}}}{}\n",
            row.n,
            row.rounds,
            row.kernel.name(),
            row.alignment,
            row.seconds,
            row.worker_rounds_per_sec(),
            row.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            row.bitwise_match,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write(&path, body) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  failed to write {}: {e}", path.display()),
    }
    if cpu_cores == 1 {
        eprintln!(
            "  [warn] this machine reports 1 CPU core: throughput numbers are per-core by \
             construction"
        );
    }
}

/// One recorded baseline cell parsed back out of `BENCH_large_n.json`.
struct BaselineRow {
    n: usize,
    kernel: String,
    worker_rounds_per_sec: f64,
}

/// Extracts the quoted/numeric value following `"key":` in a JSON row
/// line. Hand-rolled (the workspace has no JSON dependency) but total:
/// returns `None` on any shape surprise instead of panicking.
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start();
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// Parses the per-(n, kernel) rows of a `BENCH_large_n.json`. Rows
/// without a `"kernel"` field (the pre-fusion schema) are skipped, which
/// downstream treats as "no baseline recorded".
fn parse_baseline_rows(text: &str) -> Vec<BaselineRow> {
    text.lines()
        .filter(|l| l.contains("\"kernel\""))
        .filter_map(|l| {
            Some(BaselineRow {
                n: json_field(l, "n")?.parse().ok()?,
                kernel: json_field(l, "kernel")?.to_string(),
                worker_rounds_per_sec: json_field(l, "worker_rounds_per_sec")?.parse().ok()?,
            })
        })
        .collect()
}

/// The tier-1 throughput-floor gate: every measured (n, kernel) cell with
/// a matching row in the recorded `BENCH_large_n.json` must reach at
/// least [`GATE_FLOOR`] of the recorded per-core worker-rounds/second.
///
/// The gate warn-skips (never fails) when the measurement would be
/// meaningless: non-release builds, machines with < 2 GB of RAM, or a
/// missing/pre-fusion-schema baseline. A genuine violation exits with
/// status 1 so `scripts/tier1.sh` fails.
fn enforce_throughput_floor(rows: &[KernelRow]) {
    if cfg!(debug_assertions) {
        eprintln!("  [gate] skipped: debug build (throughput floors assume --release)");
        return;
    }
    if let Some(total) = mem_total_bytes() {
        if total < 2 * 1024 * 1024 * 1024 {
            eprintln!(
                "  [gate] skipped: {:.1} GB RAM < 2 GB (timings would be swap-bound)",
                total as f64 / (1024.0 * 1024.0 * 1024.0)
            );
            return;
        }
    }
    let path = workspace_root().join("BENCH_large_n.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        eprintln!("  [gate] skipped: no recorded baseline at {}", path.display());
        return;
    };
    let baselines = parse_baseline_rows(&text);
    if baselines.is_empty() {
        eprintln!("  [gate] skipped: {} has no per-kernel rows (old schema?)", path.display());
        return;
    }
    let mut checked = 0;
    let mut violations = Vec::new();
    for row in rows {
        let Some(baseline) =
            baselines.iter().find(|b| b.n == row.n && b.kernel == row.kernel.name())
        else {
            continue;
        };
        checked += 1;
        let floor = GATE_FLOOR * baseline.worker_rounds_per_sec;
        let got = row.worker_rounds_per_sec();
        if got < floor {
            violations.push(format!(
                "N = {}, kernel {}: {:.3e} wr/s < {:.0}% of the recorded {:.3e}",
                row.n,
                row.kernel.name(),
                got,
                GATE_FLOOR * 100.0,
                baseline.worker_rounds_per_sec
            ));
        }
    }
    if checked == 0 {
        eprintln!("  [gate] skipped: no measured cell matches a recorded (n, kernel) baseline");
        return;
    }
    if violations.is_empty() {
        println!(
            "  [gate] OK: {checked} cell(s) within {:.0}% of the recorded baseline",
            GATE_FLOOR * 100.0
        );
    } else {
        for v in &violations {
            eprintln!("  [gate] FAIL: {v}");
        }
        eprintln!("  [gate] throughput regressed more than 20% below BENCH_large_n.json");
        std::process::exit(1);
    }
}

/// Runs the large-N scaling sweep with the default options (all kernels,
/// no gate) — the `paper_figures` entry point for plain `large_n`.
pub fn large_n(quick: bool) {
    large_n_with(&LargeNOptions::new(quick));
}

/// Runs the large-N scaling sweep. `quick` runs a reduced grid for the
/// tier-1 smoke and writes `results/large_n_quick.json`; the full sweep
/// ends at the acceptance configuration N = 10^6 × 10^3 rounds and
/// refreshes `BENCH_large_n.json`.
pub fn large_n_with(options: &LargeNOptions) {
    println!("== X2: large-N episode scaling (split vs fused vs SIMD round kernels) ==");
    let sweep: &[(usize, usize)] = if options.quick {
        &[(1_000, 400), (10_000, 200), (100_000, 60)]
    } else {
        &[(1_000, 10_000), (10_000, 10_000), (100_000, 1_000), (1_000_000, 1_000)]
    };
    let kernel_names: Vec<&str> = options.kernels.iter().map(|k| k.name()).collect();
    println!(
        "  threads = {}, kernels = {}; every fused/SIMD row asserts bitwise equality with the \
         split engine",
        harness::threads(),
        kernel_names.join(",")
    );
    let mut table = Table::new(vec![
        "N",
        "rounds",
        "kernel",
        "alignment",
        "seconds",
        "worker_rounds_per_sec",
        "peak_rss_mb",
        "bitwise_match",
    ]);
    println!("  N        rounds   kernel  align  seconds    wr/s         peak RSS");
    let mut rows = Vec::new();
    for &(n, rounds) in sweep {
        for row in measure(n, rounds, 0x1a6e, &options.kernels) {
            println!(
                "  {:8} {:7}  {:6}  {:5}  {:9.3}  {:11.3e}  {:6.1} MB",
                row.n,
                row.rounds,
                row.kernel.name(),
                row.alignment,
                row.seconds,
                row.worker_rounds_per_sec(),
                row.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            );
            table.push_row(vec![
                row.n.to_string(),
                row.rounds.to_string(),
                row.kernel.name().to_string(),
                row.alignment.to_string(),
                format!("{:.3}", row.seconds),
                format!("{:.3e}", row.worker_rounds_per_sec()),
                format!("{:.1}", row.peak_rss_bytes as f64 / (1024.0 * 1024.0)),
                row.bitwise_match.to_string(),
            ]);
            rows.push(row);
        }
    }
    if let Some(acceptance) = rows
        .iter()
        .find(|r| r.n == 1_000_000 && r.rounds == 1_000 && r.kernel != KernelVariant::Split)
    {
        println!(
            "  acceptance: N = 10^6 x 10^3 rounds, {} kernel: {:.3e} worker-rounds/s \
             (target >= 1e8 per core)",
            acceptance.kernel.name(),
            acceptance.worker_rounds_per_sec()
        );
    }
    emit_csv(&table, if options.quick { "large_n_quick" } else { "large_n_scaling" });
    write_bench_json(&rows, options.quick);
    if options.gate {
        enforce_throughput_floor(&rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_deterministic_and_heterogeneous() {
        let a = latency_fleet(64, 7);
        let b = latency_fleet(64, 7);
        let speeds = |fleet: &[DynCost]| -> Vec<u64> {
            fleet.iter().map(|f| format!("{f:?}").len() as u64).collect()
        };
        assert_eq!(speeds(&a), speeds(&b), "same seed, same fleet");
        let evals: Vec<f64> = a.iter().map(|f| f.eval(0.5)).collect();
        let min = evals.iter().cloned().fold(f64::MAX, f64::min);
        let max = evals.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min * 1.5, "speeds must spread: {min}..{max}");
    }

    #[test]
    fn measure_asserts_bitwise_equality_for_all_kernels() {
        let rows = measure(257, 20, 3, &KernelVariant::all());
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.n, 257);
            assert_eq!(row.rounds, 20);
            assert!(row.bitwise_match, "{} kernel", row.kernel.name());
            assert!(row.seconds >= 0.0);
            assert!(row.alignment >= 8, "f64 buffers are at least 8-byte aligned");
        }
    }

    #[test]
    fn measure_honors_the_kernel_selection() {
        let rows = measure(64, 10, 5, &[KernelVariant::Simd]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].kernel, KernelVariant::Simd);
    }

    #[test]
    fn peak_rss_is_readable_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap_or(0) > 0, "VmHWM should be present");
        }
    }

    #[test]
    fn baseline_parser_reads_per_kernel_rows_and_skips_old_schema() {
        let new_schema = r#"{
  "rows": [
    {"n": 1000, "rounds": 10000, "kernel": "split", "alignment": 64, "seconds": 0.1, "worker_rounds_per_sec": 1.0e8, "peak_rss_mb": 10.0, "bitwise_match": true},
    {"n": 1000000, "rounds": 1000, "kernel": "simd", "alignment": 4096, "seconds": 5.0, "worker_rounds_per_sec": 2.0e8, "peak_rss_mb": 100.0, "bitwise_match": true}
  ]
}"#;
        let rows = parse_baseline_rows(new_schema);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].n, 1000);
        assert_eq!(rows[0].kernel, "split");
        assert!((rows[0].worker_rounds_per_sec - 1.0e8).abs() < 1.0);
        assert_eq!(rows[1].kernel, "simd");

        let old_schema = r#"{
  "rows": [
    {"n": 1000, "rounds": 10000, "sequential_seconds": 0.1, "worker_rounds_per_sec_sequential": 1.0e8, "bitwise_match": true}
  ]
}"#;
        assert!(parse_baseline_rows(old_schema).is_empty(), "old schema has no kernel rows");
    }

    #[test]
    fn buffer_alignment_is_the_largest_dividing_power_of_two() {
        assert_eq!(buffer_alignment(std::ptr::dangling::<f64>()), 8);
        assert_eq!(buffer_alignment(64 as *const f64), 64);
        assert_eq!(buffer_alignment(96 as *const f64), 32);
        assert_eq!(buffer_alignment((1 << 20) as *const f64), 4096, "capped at a page");
        assert_eq!(buffer_alignment(std::ptr::null()), 0);
    }
}
