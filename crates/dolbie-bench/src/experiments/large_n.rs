//! Experiment X2: large-N single-episode scaling.
//!
//! PR 1 parallelized *across* experiments; this experiment measures the
//! large-N engine that parallelizes *within* a round. For each fleet size
//! N ∈ {10^3, 10^4, 10^5, 10^6} it runs one episode twice over an
//! identical seeded heterogeneous latency fleet — once with the sequential
//! `Dolbie`, once with the chunked `ChunkedDolbie` on the work-stealing
//! harness — asserts the two trajectories are *bitwise* identical, and
//! reports worker-rounds/second and peak RSS. Results go to
//! `results/large_n_scaling.csv` and `BENCH_large_n.json` in the workspace
//! root (the companion of `BENCH_paper_figures.json`).

use crate::common::{emit_csv, workspace_root};
use crate::harness;
use dolbie_core::cost::{DynCost, LatencyCost};
use dolbie_core::engine::DEFAULT_CHUNK_SIZE;
use dolbie_core::{run_episode_with_static_costs, ChunkedDolbie, Dolbie, LoadBalancer};
use dolbie_metrics::Table;
use std::time::Instant;

/// One measured fleet size.
struct ScalingRow {
    n: usize,
    rounds: usize,
    sequential_seconds: f64,
    chunked_seconds: f64,
    peak_rss_bytes: u64,
}

impl ScalingRow {
    fn worker_rounds(&self) -> f64 {
        (self.n * self.rounds) as f64
    }
}

/// splitmix64: the same seeded generator used across the bench suite for
/// deterministic parameters without pulling in `rand` here.
fn splitmix(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z = z ^ (z >> 31);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A heterogeneous fleet under the §VI-A latency model (closed-form
/// eq. (4) inverse, so the per-round work is the engine, not bisection):
/// speeds spread 8x, seeded and deterministic.
fn latency_fleet(n: usize, seed: u64) -> Vec<DynCost> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            let speed = 64.0 + 448.0 * splitmix(&mut state);
            Box::new(LatencyCost::new(256.0, speed, 0.05)) as DynCost
        })
        .collect()
}

/// Peak resident set size of this process (Linux `VmHWM`), if available.
/// The high-water mark is monotone process-wide, which is why the sweep
/// runs fleet sizes in increasing order.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Runs one fleet size with both engines and asserts bitwise equivalence
/// of the full final state and the episode aggregate.
fn measure(n: usize, rounds: usize, seed: u64) -> ScalingRow {
    let costs = latency_fleet(n, seed);

    let mut sequential = Dolbie::new(n);
    let start = Instant::now();
    let seq_summary = run_episode_with_static_costs(&mut sequential, &costs, rounds, None);
    let sequential_seconds = start.elapsed().as_secs_f64();

    let mut chunked = ChunkedDolbie::new(n);
    let start = Instant::now();
    let chunked_summary =
        run_episode_with_static_costs(&mut chunked, &costs, rounds, Some(DEFAULT_CHUNK_SIZE));
    let chunked_seconds = start.elapsed().as_secs_f64();

    assert_eq!(
        seq_summary.total_cost.to_bits(),
        chunked_summary.total_cost.to_bits(),
        "N = {n}: chunked episode cost diverged from the sequential engine"
    );
    for i in 0..n {
        assert_eq!(
            sequential.allocation().share(i).to_bits(),
            chunked.allocation().share(i).to_bits(),
            "N = {n}: share of worker {i} diverged"
        );
    }
    assert_eq!(
        sequential.alphas_used(),
        chunked.alphas_used(),
        "N = {n}: the α schedules diverged"
    );

    ScalingRow {
        n,
        rounds,
        sequential_seconds,
        chunked_seconds,
        peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
    }
}

fn write_bench_json(rows: &[ScalingRow], quick: bool) {
    let path = workspace_root().join("BENCH_large_n.json");
    let cpu_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let threads = harness::threads();
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"cpu_cores\": {cpu_cores},\n"));
    body.push_str(&format!("  \"threads\": {threads},\n"));
    body.push_str(&format!("  \"quick\": {quick},\n"));
    body.push_str(&format!("  \"chunk_size\": {DEFAULT_CHUNK_SIZE},\n"));
    body.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"n\": {}, \"rounds\": {}, \"sequential_seconds\": {:.3}, \
             \"chunked_seconds\": {:.3}, \"worker_rounds_per_sec_sequential\": {:.3e}, \
             \"worker_rounds_per_sec_chunked\": {:.3e}, \"peak_rss_mb\": {:.1}, \
             \"bitwise_match\": true}}{}\n",
            row.n,
            row.rounds,
            row.sequential_seconds,
            row.chunked_seconds,
            row.worker_rounds() / row.sequential_seconds.max(1e-9),
            row.worker_rounds() / row.chunked_seconds.max(1e-9),
            row.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write(&path, body) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  failed to write {}: {e}", path.display()),
    }
    if cpu_cores == 1 {
        eprintln!(
            "  [warn] this machine reports 1 CPU core: chunked/sequential ratios near 1.0x \
             reflect the hardware, not an engine regression"
        );
    }
}

/// Runs the large-N scaling sweep. `quick` caps the sweep at N = 10^5
/// with short horizons (the tier-1 smoke); the full sweep ends at the
/// acceptance configuration N = 10^6 × 10^3 rounds.
pub fn large_n(quick: bool) {
    println!("== X2: large-N episode scaling (SoA engine, chunked intra-round parallelism) ==");
    let sweep: &[(usize, usize)] = if quick {
        &[(1_000, 500), (10_000, 200), (100_000, 100)]
    } else {
        &[(1_000, 10_000), (10_000, 10_000), (100_000, 1_000), (1_000_000, 1_000)]
    };
    let mut table = Table::new(vec![
        "N",
        "rounds",
        "sequential_seconds",
        "chunked_seconds",
        "worker_rounds_per_sec_sequential",
        "worker_rounds_per_sec_chunked",
        "peak_rss_mb",
    ]);
    println!(
        "  threads = {}, chunk = {DEFAULT_CHUNK_SIZE}; every row asserts the chunked engine \
         bitwise-matches the sequential one",
        harness::threads()
    );
    println!("  N        rounds   seq s      chunked s  seq wr/s     chunked wr/s  peak RSS");
    let mut rows = Vec::with_capacity(sweep.len());
    for &(n, rounds) in sweep {
        let row = measure(n, rounds, 0x1a6e);
        println!(
            "  {:8} {:7}  {:9.3}  {:9.3}  {:11.3e}  {:12.3e}  {:6.1} MB",
            row.n,
            row.rounds,
            row.sequential_seconds,
            row.chunked_seconds,
            row.worker_rounds() / row.sequential_seconds.max(1e-9),
            row.worker_rounds() / row.chunked_seconds.max(1e-9),
            row.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        );
        table.push_row(vec![
            row.n.to_string(),
            row.rounds.to_string(),
            format!("{:.3}", row.sequential_seconds),
            format!("{:.3}", row.chunked_seconds),
            format!("{:.3e}", row.worker_rounds() / row.sequential_seconds.max(1e-9)),
            format!("{:.3e}", row.worker_rounds() / row.chunked_seconds.max(1e-9)),
            format!("{:.1}", row.peak_rss_bytes as f64 / (1024.0 * 1024.0)),
        ]);
        rows.push(row);
    }
    if let Some(acceptance) = rows.iter().find(|r| r.n == 1_000_000 && r.rounds == 1_000) {
        println!(
            "  acceptance: N = 10^6 x 10^3 rounds sequential in {:.1} s (target < 60 s)",
            acceptance.sequential_seconds
        );
    }
    emit_csv(&table, "large_n_scaling");
    write_bench_json(&rows, quick);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_deterministic_and_heterogeneous() {
        let a = latency_fleet(64, 7);
        let b = latency_fleet(64, 7);
        let speeds = |fleet: &[DynCost]| -> Vec<u64> {
            fleet.iter().map(|f| format!("{f:?}").len() as u64).collect()
        };
        assert_eq!(speeds(&a), speeds(&b), "same seed, same fleet");
        let evals: Vec<f64> = a.iter().map(|f| f.eval(0.5)).collect();
        let min = evals.iter().cloned().fold(f64::MAX, f64::min);
        let max = evals.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min * 1.5, "speeds must spread: {min}..{max}");
    }

    #[test]
    fn measure_asserts_bitwise_equality_and_counts() {
        let row = measure(257, 20, 3);
        assert_eq!(row.n, 257);
        assert_eq!(row.rounds, 20);
        assert!(row.sequential_seconds >= 0.0 && row.chunked_seconds >= 0.0);
    }

    #[test]
    fn peak_rss_is_readable_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap_or(0) > 0, "VmHWM should be present");
        }
    }
}
