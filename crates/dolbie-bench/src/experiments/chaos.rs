//! Experiment X4 (extension): the chaos-sweep invariant harness.
//!
//! Hundreds of random `FaultPlan × MembershipSchedule` combinations —
//! lossy links, duplicate deliveries, crash windows (including
//! whole-shard-master crashes), and worker leave/join epochs, all derived
//! from pure hashes of the case index — are run through all four protocol
//! architectures, and five invariants are machine-checked on every trace:
//!
//! 1. **simplex feasibility** — every executed allocation satisfies
//!    `|Σx − 1| < 1e-9` with `x_i ≥ 0`;
//! 2. **α monotonicity** — the recorded system step size never increases
//!    within a run (the eq. (7) invariant, through every epoch boundary);
//! 3. **no stranded share** — a worker outside the membership view holds
//!    exactly `0.0` and never participates;
//! 4. **architecture agreement** — crash-free cases (type A) must agree
//!    *bitwise* across master-worker, fully-distributed, and ring;
//!    cases with crash windows (type B) hold the two leaderless
//!    architectures to `1e-9` agreement (the master-worker protocol is
//!    exempt there: its master can remember an α tightening that a
//!    straggler crash erases from every peer — the documented corner of
//!    the fault subsystem, see `tests/fault_props.rs`). The sharded
//!    two-level architecture must agree with master-worker **bitwise on
//!    every case, type A and B alike** — including cases where a whole
//!    shard-master crashes mid-run and epochs drain workers out from
//!    under shards;
//! 5. **termination** — every run produces exactly its scheduled number
//!    of rounds (no deadlock, no panic).
//!
//! A failing case is automatically *shrunk* — events, crash windows, link
//! loss, and rounds are greedily removed while the failure reproduces —
//! and the minimal case is printed as a copy-pasteable reproducer before
//! the sweep aborts.
//!
//! The sweep fans out across `--threads` workers; case outcomes are pure
//! functions of the case index, so `results/chaos_invariants.csv` is
//! byte-identical at any thread count.

use crate::common::emit_csv;
use crate::harness;
use dolbie_core::cost::DynCost;
use dolbie_core::environment::FnEnvironment;
use dolbie_core::DolbieConfig;
use dolbie_core::ShardLayout;
use dolbie_metrics::Table;
use dolbie_simnet::invariants;
use dolbie_simnet::{
    Crash, FaultPlan, FixedLatency, FullyDistributedSim, MasterWorkerSim, MembershipChange,
    MembershipSchedule, ProtocolTrace, RingSim, ShardedSim,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Cases in the full sweep. One in four carries crash windows (type B),
/// leaving well over 200 crash-free (type A) cases for the bitwise
/// three-architecture claim.
const FULL_CASES: usize = 280;
/// Cases in the `--quick` smoke sweep (the tier-1 gate).
const QUICK_CASES: usize = 20;
/// Master seed the whole sweep is derived from (public so the model
/// checker's cross-validation can regenerate the exact sweep cases).
pub const MASTER_SEED: u64 = 0xD01B_1E00;

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash(seed: u64, salt: u64) -> u64 {
    splitmix64(seed ^ splitmix64(salt))
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One randomized chaos case: a fleet size, a horizon, a seeded
/// environment, and the fault plan × membership schedule to survive.
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// Case index within the sweep (names the case in the CSV).
    pub id: usize,
    /// Fleet size.
    pub n: usize,
    /// Horizon in rounds.
    pub rounds: usize,
    /// Seed for the per-round cost functions.
    pub env_seed: u64,
    /// Link faults and crash windows (worker-level only; a shard-master
    /// crash is carried separately in `shard_crash`).
    pub plan: FaultPlan,
    /// Worker churn epochs.
    pub schedule: MembershipSchedule,
    /// Shard count for the two-level architecture (`1..=min(4, n)`).
    pub shards: usize,
    /// An optional shard-master crash `(shard, from_round, until_round)`:
    /// the sharded sim takes the whole shard dark via
    /// `with_shard_master_crash`, while the flat sims get the equivalent
    /// per-worker crash windows — the equivalence invariant 4 checks.
    pub shard_crash: Option<(usize, usize, usize)>,
}

impl ChaosCase {
    /// Type A cases are crash-free: churn and lossy links only. Only they
    /// claim bitwise agreement across the leaderless architectures (the
    /// sharded tier claims bitwise agreement with master-worker always).
    pub fn is_type_a(&self) -> bool {
        self.plan.crashes.is_empty() && self.shard_crash.is_none()
    }

    /// The flat simulators' fault plan: the worker-level plan plus the
    /// shard-master crash expanded to its slice's per-worker windows.
    pub fn flat_plan(&self) -> FaultPlan {
        let mut plan = self.plan.clone();
        if let Some((shard, from_round, until_round)) = self.shard_crash {
            for worker in ShardLayout::even(self.n, self.shards).range(shard) {
                plan.crashes.push(Crash { worker, from_round, until_round });
            }
        }
        plan
    }
}

/// Derives case `id` of the sweep — a pure function, so any subset of the
/// sweep can be regenerated independently and in any order.
pub fn case_from_seed(id: usize, master_seed: u64) -> ChaosCase {
    let s = splitmix64(master_seed ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let n = 2 + (hash(s, 1) % 6) as usize;
    let rounds = 12 + (hash(s, 2) % 19) as usize;
    let mut plan = FaultPlan::seeded(hash(s, 5))
        .with_drop_probability(unit(hash(s, 3)) * 0.5)
        .with_duplicate_probability(unit(hash(s, 4)) * 0.25);
    if id % 4 == 3 {
        let count = 1 + (hash(s, 6) % 2) as usize;
        for k in 0..count {
            let h = hash(s, 16 + k as u64);
            let from = (h >> 8) as usize % rounds;
            let len = 1 + (h >> 24) as usize % (rounds / 2).max(1);
            plan = plan.with_crash(Crash {
                worker: h as usize % n,
                from_round: from,
                until_round: (from + len).min(rounds),
            });
        }
    }
    let schedule = MembershipSchedule::random(hash(s, 7), n, rounds, 0.08, 0.12);
    let shards = 1 + (hash(s, 9) % n.min(4) as u64) as usize;
    let shard_crash = if id % 5 == 2 {
        let h = hash(s, 10);
        let shard = h as usize % shards;
        let from = (h >> 16) as usize % rounds;
        let len = 1 + (h >> 40) as usize % (rounds / 2).max(1);
        Some((shard, from, (from + len).min(rounds)))
    } else {
        None
    };
    ChaosCase { id, n, rounds, env_seed: hash(s, 8), plan, schedule, shards, shard_crash }
}

/// The deterministic per-round cost functions a case runs against — the
/// chaos-mix environment, whose single definition lives in
/// [`dolbie_mc::chaos_mix_env`] so the model checker's cross-validation
/// replays run against byte-identical cost streams.
pub fn env_for(seed: u64, n: usize) -> FnEnvironment<impl FnMut(usize) -> Vec<DynCost>> {
    dolbie_mc::chaos_mix_env(seed, n)
}

/// The five machine-checked invariants, as a pure function of the three
/// traces — separable so the negative tests can feed it corrupted traces.
///
/// Invariants 1, 2, 3, and 5 are the shared detectors of
/// [`dolbie_simnet::invariants`] (one definition for this sweep, the
/// net-tier sweep, and the model checker); invariant 4's *pairing
/// policy* — which traces must agree, and how tightly — stays here.
pub fn check_invariants(
    case: &ChaosCase,
    mw: &ProtocolTrace,
    fd: &ProtocolTrace,
    ring: &ProtocolTrace,
    sharded: &ProtocolTrace,
) -> Result<(), String> {
    // (5), (1), (2), (3) per trace, via the shared detectors.
    for tr in [mw, fd, ring, sharded] {
        invariants::check_trace(tr, case.rounds, |t| case.schedule.members_at(case.n, t))?;
    }
    // (4) architecture agreement.
    for t in 0..case.rounds {
        let (m, f, r) = (&mw.rounds[t], &fd.rounds[t], &ring.rounds[t]);
        if case.is_type_a() {
            if !(invariants::rounds_agree_bitwise(m, f) && invariants::rounds_agree_bitwise(f, r)) {
                return Err(format!("agreement: type A architectures diverge at round {t}"));
            }
        } else if f.allocation.l2_distance(&r.allocation) >= 1e-9 {
            return Err(format!("agreement: FD and ring diverge at round {t} (type B)"));
        }
        // The sharded tier's claim is unconditional: bitwise agreement
        // with the flat master on every case, crashes included.
        let s = &sharded.rounds[t];
        if !invariants::rounds_agree_bitwise(m, s) || m.active != s.active {
            return Err(format!("agreement: sharded diverges from master-worker at round {t}"));
        }
    }
    Ok(())
}

/// Runs one case through all four architectures and checks the
/// invariants; a panic anywhere (deadlock assert, infeasible allocation)
/// is converted into a failure.
pub fn run_case(case: &ChaosCase) -> Result<(), String> {
    let case = case.clone();
    catch_unwind(AssertUnwindSafe(move || {
        let flat_plan = case.flat_plan();
        let mw = MasterWorkerSim::new(
            env_for(case.env_seed, case.n),
            DolbieConfig::new(),
            FixedLatency::lan(),
        )
        .with_fault_plan(flat_plan.clone())
        .with_membership(case.schedule.clone())
        .run(case.rounds);
        let fd = FullyDistributedSim::new(
            env_for(case.env_seed, case.n),
            DolbieConfig::new(),
            FixedLatency::lan(),
        )
        .with_fault_plan(flat_plan.clone())
        .with_membership(case.schedule.clone())
        .run(case.rounds);
        let ring =
            RingSim::new(env_for(case.env_seed, case.n), DolbieConfig::new(), FixedLatency::lan())
                .with_fault_plan(flat_plan)
                .with_membership(case.schedule.clone())
                .run(case.rounds);
        let mut sharded_sim = ShardedSim::new(
            env_for(case.env_seed, case.n),
            DolbieConfig::new(),
            FixedLatency::lan(),
            case.shards,
        )
        .with_fault_plan(case.plan.clone())
        .with_membership(case.schedule.clone());
        if let Some((shard, from_round, until_round)) = case.shard_crash {
            sharded_sim = sharded_sim.with_shard_master_crash(shard, from_round, until_round);
        }
        let sharded = sharded_sim.run(case.rounds);
        check_invariants(&case, &mw, &fd, &ring, &sharded.trace)
    }))
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic".into());
        Err(format!("panic: {msg}"))
    })
}

/// Non-panicking version of `MembershipSchedule::validate`, for vetting
/// shrink candidates (deleting a join can make a later leave empty the
/// set, which the simulators reject).
fn schedule_is_valid(schedule: &MembershipSchedule, n: usize) -> bool {
    if schedule.max_worker().is_some_and(|max| max >= n) {
        return false;
    }
    let mut members = vec![true; n];
    let rounds: Vec<usize> = schedule.events.iter().map(|e| e.round).collect();
    for t in rounds {
        schedule.apply_round(t, &mut members);
        if !members.iter().any(|&m| m) {
            return false;
        }
    }
    true
}

/// Greedily shrinks a failing case to a local minimum: drop membership
/// events, drop crash windows, silence the lossy link, and halve the
/// horizon, keeping each reduction only while the failure reproduces.
pub fn shrink(case: &ChaosCase) -> ChaosCase {
    let mut current = case.clone();
    loop {
        let mut improved = false;
        for i in 0..current.schedule.events.len() {
            let mut cand = current.clone();
            cand.schedule.events.remove(i);
            if schedule_is_valid(&cand.schedule, cand.n) && run_case(&cand).is_err() {
                current = cand;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        for i in 0..current.plan.crashes.len() {
            let mut cand = current.clone();
            cand.plan.crashes.remove(i);
            if run_case(&cand).is_err() {
                current = cand;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        if current.shard_crash.is_some() {
            let mut cand = current.clone();
            cand.shard_crash = None;
            if run_case(&cand).is_err() {
                current = cand;
                continue;
            }
        }
        for zero in [
            |c: &mut ChaosCase| c.plan.drop_probability = 0.0,
            |c: &mut ChaosCase| c.plan.duplicate_probability = 0.0,
        ] {
            let mut cand = current.clone();
            zero(&mut cand);
            if cand.plan != current.plan && run_case(&cand).is_err() {
                current = cand;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        if current.rounds > 2 {
            let mut cand = current.clone();
            cand.rounds /= 2;
            if run_case(&cand).is_err() {
                current = cand;
                improved = true;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Renders a case as a copy-pasteable `#[test]` reproducer.
pub fn reproducer(case: &ChaosCase) -> String {
    let mut out = String::new();
    out.push_str("#[test]\nfn chaos_reproducer() {\n");
    out.push_str(&format!(
        "    // sweep case {} (n = {}, {} rounds)\n",
        case.id, case.n, case.rounds
    ));
    out.push_str(&format!(
        "    let plan = FaultPlan::seeded({:#018x})\n        .with_drop_probability({:?})\n        .with_duplicate_probability({:?})",
        case.plan.seed, case.plan.drop_probability, case.plan.duplicate_probability
    ));
    for c in &case.plan.crashes {
        out.push_str(&format!(
            "\n        .with_crash(Crash {{ worker: {}, from_round: {}, until_round: {} }})",
            c.worker, c.from_round, c.until_round
        ));
    }
    out.push_str(";\n    let schedule = MembershipSchedule::none()");
    for e in &case.schedule.events {
        match e.change {
            MembershipChange::Leave(kind) => out.push_str(&format!(
                "\n        .with_leave({}, {}, LeaveKind::{kind:?})",
                e.round, e.worker
            )),
            MembershipChange::Join => {
                out.push_str(&format!("\n        .with_join({}, {})", e.round, e.worker))
            }
        }
    }
    out.push_str(";\n");
    out.push_str(&format!(
        "    let case = ChaosCase {{ id: {}, n: {}, rounds: {}, env_seed: {:#018x}, plan, schedule, shards: {}, shard_crash: {:?} }};\n",
        case.id, case.n, case.rounds, case.env_seed, case.shards, case.shard_crash
    ));
    out.push_str("    assert!(chaos::run_case(&case).is_ok());\n}\n");
    out
}

/// Runs the chaos sweep, emits `results/<name>.csv`, and panics with a
/// shrunk reproducer if any invariant fails — making the quick sweep a
/// hard CI gate.
pub fn chaos_named(quick: bool, name: &str) {
    let total = if quick { QUICK_CASES } else { FULL_CASES };
    println!("== Chaos sweep: {total} random FaultPlan x MembershipSchedule cases ==");
    let results = harness::parallel_map(total, |id| {
        let case = case_from_seed(id, MASTER_SEED);
        let outcome = run_case(&case);
        (case, outcome)
    });

    let mut table = Table::new(vec![
        "case",
        "kind",
        "n",
        "rounds",
        "membership_events",
        "crash_windows",
        "shards",
        "shard_crash",
        "drop_probability",
        "duplicate_probability",
        "passed",
    ]);
    let mut type_a = 0usize;
    let mut failures: Vec<(&ChaosCase, &String)> = Vec::new();
    for (case, outcome) in &results {
        if case.is_type_a() {
            type_a += 1;
        }
        if let Err(msg) = outcome {
            failures.push((case, msg));
        }
        table.push_row(vec![
            case.id.to_string(),
            if case.is_type_a() { "A".into() } else { "B".into() },
            case.n.to_string(),
            case.rounds.to_string(),
            case.schedule.events.len().to_string(),
            case.plan.crashes.len().to_string(),
            case.shards.to_string(),
            (case.shard_crash.is_some() as u8).to_string(),
            format!("{:.4}", case.plan.drop_probability),
            format!("{:.4}", case.plan.duplicate_probability),
            (outcome.is_ok() as u8).to_string(),
        ]);
    }
    emit_csv(&table, name);
    println!(
        "  {} / {total} cases passed all five invariants ({type_a} type A bitwise, {} type B)",
        total - failures.len(),
        total - type_a
    );

    if let Some((case, msg)) = failures.first() {
        println!("  FAILURE: case {}: {msg}", case.id);
        println!("  shrinking to a minimal reproducer...");
        let minimal = shrink(case);
        let final_msg = run_case(&minimal).expect_err("shrunk case still fails");
        println!("--- minimal reproducer ({final_msg}) ---");
        println!("{}", reproducer(&minimal));
        panic!("chaos sweep found {} invariant violation(s)", failures.len());
    }
}

/// The default entry point: writes `results/chaos_invariants.csv`.
pub fn chaos(quick: bool) {
    chaos_named(quick, "chaos_invariants");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_cases_are_deterministic_and_mixed() {
        let a: Vec<ChaosCase> = (0..24).map(|i| case_from_seed(i, MASTER_SEED)).collect();
        for case in &a {
            let again = case_from_seed(case.id, MASTER_SEED);
            assert_eq!(case.schedule, again.schedule, "case {}", case.id);
            assert_eq!(case.plan.seed, again.plan.seed, "case {}", case.id);
            assert!(case.n >= 2, "the protocols need two workers");
        }
        assert!(a.iter().any(|c| c.is_type_a()));
        assert!(a.iter().any(|c| !c.is_type_a()));
        assert!(a.iter().any(|c| !c.schedule.is_none()), "the sweep must contain churn");
        assert!(a.iter().any(|c| c.shards > 1), "the sweep must shard some fleets");
        assert!(a.iter().any(|c| c.shard_crash.is_some()), "the sweep must crash a shard-master");
        for case in &a {
            assert!(case.shards >= 1 && case.shards <= case.n);
            if let Some((shard, from, until)) = case.shard_crash {
                assert!(shard < case.shards && from < until && until <= case.rounds);
            }
        }
    }

    #[test]
    fn a_small_prefix_of_the_sweep_passes() {
        for id in 0..8 {
            let case = case_from_seed(id, MASTER_SEED);
            if let Err(msg) = run_case(&case) {
                panic!("case {id} failed: {msg}\n{}", reproducer(&shrink(&case)));
            }
        }
    }

    /// The negative test the acceptance criteria require: a corrupted
    /// trace — the kind a broken engine would emit — must be caught by
    /// the checker, invariant by invariant.
    #[test]
    fn corrupted_traces_are_caught() {
        let case = case_from_seed(0, MASTER_SEED);
        let build = |arch| {
            let mut mw = MasterWorkerSim::new(
                env_for(case.env_seed, case.n),
                DolbieConfig::new(),
                FixedLatency::lan(),
            )
            .with_fault_plan(case.flat_plan())
            .with_membership(case.schedule.clone());
            let mut t = mw.run(case.rounds);
            t.architecture = arch;
            t
        };
        let (mw, fd, ring, sh) =
            (build("master-worker"), build("fully-distributed"), build("ring"), build("sharded"));
        assert!(check_invariants(&case, &mw, &fd, &ring, &sh).is_ok(), "identical traces pass");

        // A step size that grows mid-run (a broken eq. (7) cap).
        let mut bad = mw.clone();
        let last = bad.rounds.len() - 1;
        bad.rounds[last].alpha = bad.rounds[0].alpha + 1.0;
        let err =
            check_invariants(&case, &bad, &fd, &ring, &sh).expect_err("rising α must be caught");
        assert!(err.contains("alpha"), "got: {err}");

        // A truncated run (deadlock that was papered over).
        let mut bad = mw.clone();
        bad.rounds.pop();
        let err =
            check_invariants(&case, &bad, &fd, &ring, &sh).expect_err("lost round must be caught");
        assert!(err.contains("termination"), "got: {err}");

        // Divergent trajectories (a protocol that stopped agreeing).
        let mut bad = mw.clone();
        bad.rounds[last].straggler = (bad.rounds[last].straggler + 1) % case.n;
        if case.is_type_a() {
            let err = check_invariants(&case, &bad, &fd, &ring, &sh)
                .expect_err("divergent straggler must be caught");
            assert!(err.contains("agreement"), "got: {err}");
        }

        // A sharded tier that silently drifts off the flat trajectory —
        // caught even on type B cases, where the claim is unconditional.
        let mut bad = sh.clone();
        let share0 = bad.rounds[last].allocation.share(0);
        let mut shares: Vec<f64> = bad.rounds[last].allocation.iter().copied().collect();
        shares[0] = share0 + 1e-13;
        shares[1] -= 1e-13;
        bad.rounds[last].allocation =
            dolbie_core::Allocation::from_update(shares).expect("still feasible");
        let err = check_invariants(&case, &mw, &fd, &ring, &bad)
            .expect_err("sharded drift must be caught");
        assert!(err.contains("sharded"), "got: {err}");
    }
}
