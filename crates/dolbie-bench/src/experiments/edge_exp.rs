//! Experiment E1: the edge-computing task-offloading scenario (§III-B).

use crate::common::{emit_csv, ALGORITHM_ORDER};
use dolbie_baselines::paper_suite;
use dolbie_core::{run_episode, EpisodeOptions};
use dolbie_edge::{EdgeConfig, EdgeScenario};
use dolbie_metrics::{Summary, Table};

/// Runs the full §VI algorithm suite on the offloading scenario across
/// repeated realizations, reporting total task-completion time.
pub fn edge(quick: bool) {
    let realizations = if quick { 10 } else { 50 };
    const ROUNDS: usize = 100;
    println!(
        "== Example 2: task offloading, total completion time over {ROUNDS} rounds ({realizations} realizations) =="
    );

    let mut totals: Vec<Vec<f64>> = vec![Vec::new(); ALGORITHM_ORDER.len()];
    for seed in 0..realizations as u64 {
        let env = EdgeScenario::sample(EdgeConfig::paper_like(), seed);
        for (k, mut balancer) in
            paper_suite(env.num_participants(), env.clone()).into_iter().enumerate()
        {
            let mut driver = env.clone();
            let trace =
                run_episode(balancer.as_mut(), &mut driver, EpisodeOptions::new(ROUNDS));
            totals[k].push(trace.total_cost());
        }
    }

    let mut table =
        Table::new(vec!["algorithm", "total_completion_mean_s", "total_completion_ci95_s"]);
    println!("  total completion time (mean ± 95% CI):");
    for (alg, samples) in ALGORITHM_ORDER.iter().zip(&totals) {
        let s = Summary::from_samples(samples);
        println!("    {:8} {:9.3} ± {:.3} s", alg, s.mean(), s.ci95_half_width());
        table.push_row(vec![
            alg.to_string(),
            format!("{:.4}", s.mean()),
            format!("{:.4}", s.ci95_half_width()),
        ]);
    }
    emit_csv(&table, "edge_offloading");
}
