//! Experiment E1: the edge-computing task-offloading scenario (§III-B).

use crate::common::{emit_csv, ALGORITHM_ORDER};
use crate::harness;
use dolbie_baselines::paper_suite;
use dolbie_core::{run_episode, EpisodeOptions};
use dolbie_edge::{EdgeConfig, EdgeScenario};
use dolbie_metrics::{Summary, Table};

/// Runs the full §VI algorithm suite on the offloading scenario across
/// repeated realizations, reporting total task-completion time.
pub fn edge(quick: bool) {
    let realizations = if quick { 10 } else { 50 };
    const ROUNDS: usize = 100;
    println!(
        "== Example 2: task offloading, total completion time over {ROUNDS} rounds ({realizations} realizations) =="
    );

    // Every (seed, algorithm) pair replays its own scenario copy; fan the
    // grid out and refill `totals` in the sequential seed-major order.
    let n_algs = ALGORITHM_ORDER.len();
    let mut totals: Vec<Vec<f64>> = vec![Vec::new(); n_algs];
    let flat = harness::parallel_map(realizations * n_algs, |i| {
        let seed = (i / n_algs) as u64;
        let k = i % n_algs;
        let env = EdgeScenario::sample(EdgeConfig::paper_like(), seed);
        let mut balancer = paper_suite(env.num_participants(), env.clone()).swap_remove(k);
        let mut driver = env;
        let trace = run_episode(balancer.as_mut(), &mut driver, EpisodeOptions::new(ROUNDS));
        trace.total_cost()
    });
    for (i, total) in flat.into_iter().enumerate() {
        totals[i % n_algs].push(total);
    }

    let mut table =
        Table::new(vec!["algorithm", "total_completion_mean_s", "total_completion_ci95_s"]);
    println!("  total completion time (mean ± 95% CI):");
    for (alg, samples) in ALGORITHM_ORDER.iter().zip(&totals) {
        let s = Summary::from_samples(samples);
        println!("    {:8} {:9.3} ± {:.3} s", alg, s.mean(), s.ci95_half_width());
        table.push_row(vec![
            alg.to_string(),
            format!("{:.4}", s.mean()),
            format!("{:.4}", s.ci95_half_width()),
        ]);
    }
    emit_csv(&table, "edge_offloading");
}
