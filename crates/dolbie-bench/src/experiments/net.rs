//! Experiment X4 (extension): the real TCP runtime over loopback.
//!
//! Runs the `dolbie-net` master-worker runtime — real sockets, real wire
//! bytes — in three scenarios and writes `results/net_loopback.csv`:
//!
//! - `lossless_n4` and `lossless_n16`: clean loopback links; the
//!   trajectory must be **bitwise identical** to the sequential engine
//!   (the experiment aborts on the first diverging bit, making the CSV a
//!   regression gate, not just a measurement);
//! - `lossy_n4`: a seeded socket-level fault plan (drops, duplicates,
//!   ack losses) with real retransmission timers; loss only delays
//!   frames, so the trajectory is *still* bitwise the sequential one —
//!   what changes is the wire bill, which the CSV records.
//!
//! Columns: logical protocol messages vs actual frames on the wire vs
//! bytes, plus retransmissions/acks/duplicates and wall-clock throughput.
//! Wall-clock columns vary run to run (they measure this machine), and
//! the lossy row's wire counters can drift by a frame or two between
//! runs (an ack racing its retransmission timer is real-time, not
//! simulated) — the *trajectory* stays bitwise pinned regardless; the
//! lossless rows are fully deterministic.

use crate::common::emit_csv;
use dolbie_core::{run_episode, Allocation, Dolbie, DolbieConfig, EpisodeOptions, LoadBalancer};
use dolbie_metrics::Table;
use dolbie_net::env::{EnvKind, WireEnvSpec};
use dolbie_net::loopback::{run_loopback, LoopbackOptions, LoopbackRun};
use dolbie_net::master::MasterConfig;
use dolbie_simnet::faults::{FaultPlan, RetryPolicy};

const ENV_SEED: u64 = 0xD01B_0E75;
const FULL_ROUNDS: usize = 500;
const QUICK_ROUNDS: usize = 60;

/// Asserts the run's trajectory is bitwise the sequential engine's and
/// returns `"yes"` for the CSV. Panicking here is deliberate: a CSV row
/// claiming parity that does not hold would be worse than no row.
fn check_bitwise(run: &LoopbackRun, env: WireEnvSpec, n: usize, rounds: usize) -> &'static str {
    let mut sequential = Dolbie::with_config(Allocation::uniform(n), DolbieConfig::new());
    let mut driver = env.environment(n);
    let trace = run_episode(&mut sequential, &mut driver, EpisodeOptions::new(rounds));
    for (t, (net_round, seq_round)) in
        run.report.trace.rounds.iter().zip(&trace.records).enumerate()
    {
        for i in 0..n {
            assert_eq!(
                net_round.allocation.share(i).to_bits(),
                seq_round.allocation.share(i).to_bits(),
                "round {t}, worker {i}: TCP trajectory diverged from the sequential engine"
            );
        }
    }
    for i in 0..n {
        assert_eq!(
            run.report.final_allocation.share(i).to_bits(),
            sequential.allocation().share(i).to_bits(),
            "final allocation diverged at worker {i}"
        );
    }
    "yes"
}

fn scenario(table: &mut Table, name: &str, n: usize, rounds: usize, fault: Option<FaultPlan>) {
    let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: ENV_SEED + n as u64 };
    let mut cfg = MasterConfig::new(n, rounds, env);
    let lossy = fault.is_some();
    if let Some(plan) = fault {
        cfg = cfg.with_fault_plan(plan);
    }
    let mut opts = LoopbackOptions::new(cfg);
    if lossy {
        // The plan's probabilities/seed are authoritative from `Welcome`;
        // only the retransmission pacing is tightened for a brisk run.
        opts.worker.retry = Some(RetryPolicy::new(0.01, 1.5, 6));
    }
    let run = run_loopback(&opts).expect("loopback run");
    let report = &run.report;
    assert_eq!(report.trace.rounds.len(), rounds);
    let bitwise = check_bitwise(&run, env, n, rounds);

    let wire = &report.wire;
    let logical = report.trace.total_messages();
    let frames = wire.frames_sent;
    let wall = report.wall_clock;
    table.push_row(vec![
        name.to_string(),
        n.to_string(),
        rounds.to_string(),
        logical.to_string(),
        frames.to_string(),
        wire.bytes_sent.to_string(),
        wire.retransmissions.to_string(),
        wire.acks.to_string(),
        wire.duplicates.to_string(),
        format!("{wall:.3}"),
        format!("{:.1}", rounds as f64 / wall.max(1e-9)),
        bitwise.to_string(),
    ]);
    println!(
        "  {name}: {rounds} rounds, {logical} logical messages as {frames} frames / {} bytes \
         ({} retransmissions), {:.1} rounds/s, bitwise vs sequential: {bitwise}",
        wire.bytes_sent,
        wire.retransmissions,
        rounds as f64 / wall.max(1e-9),
    );
}

/// Runs the loopback scenarios and writes `results/<name>.csv`.
pub fn net_named(name: &str, quick: bool) {
    let rounds = if quick { QUICK_ROUNDS } else { FULL_ROUNDS };
    println!("== Real TCP runtime over loopback: {rounds} rounds per scenario ==");
    let mut table = Table::new(vec![
        "scenario",
        "n",
        "rounds",
        "logical_messages",
        "wire_frames",
        "wire_bytes",
        "retransmissions",
        "acks",
        "duplicates",
        "wall_clock_s",
        "rounds_per_s",
        "bitwise_vs_sequential",
    ]);
    scenario(&mut table, "lossless_n4", 4, rounds, None);
    scenario(&mut table, "lossless_n16", 16, rounds, None);
    let plan = FaultPlan::seeded(0xBE)
        .with_drop_probability(0.10)
        .with_duplicate_probability(0.05)
        .with_retry(RetryPolicy::new(0.01, 1.5, 6));
    scenario(&mut table, "lossy_n4", 4, rounds.min(QUICK_ROUNDS), Some(plan));
    emit_csv(&table, name);
    println!("  every scenario held bitwise parity with the sequential engine.");
}

/// The default entry point: writes `results/net_loopback.csv`.
pub fn net(quick: bool) {
    net_named("net_loopback", quick);
}
