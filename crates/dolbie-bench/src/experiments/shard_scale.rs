//! Experiment X6 (extension): the sharded hierarchical control plane.
//!
//! The flat master — blocking or evented — fans every round through one
//! process: `Θ(N)` frames in, `Θ(N)` frames out, every per-worker scalar
//! crossing one socket set. The two-level plane puts `M` shard-masters
//! between the fleet and a root coordinator that sees only shard-level
//! aggregates, so the root's per-round work is `O(M)` frames regardless
//! of `N`. This sweep measures that claim on real loopback TCP at
//! N = 4096: the flat evented master as the baseline, then the sharded
//! plane at M ∈ {1, 4, 16}, recording per-round latency and the
//! coordinator's per-round frame count. Latency methodology: one untimed
//! warm-up run, then every scenario measured three times in alternating
//! order with the median-steady rep recorded, and per-round latency
//! taken steady-state (the coordinator's own round timestamps, round 0
//! excluded — it absorbs worker admission). Results land in
//! `results/shard_scale.csv` and `BENCH_shard.json` (schema mirrors
//! `BENCH_large_n.json`).
//!
//! Every row is also a correctness gate: the trajectory is checked
//! bitwise against the sequential engine before the row is emitted, so
//! the CSV cannot claim latency for a run that diverged. The quick
//! variant (tier-1 smoke) runs the same gates at N = 64 and writes
//! `results/shard_scale_quick.csv`, never clobbering the full
//! measurement.

use crate::common::{emit_csv, workspace_root};
use crate::harness;
use dolbie_core::{run_episode, Allocation, Dolbie, DolbieConfig, EpisodeOptions, LoadBalancer};
use dolbie_metrics::Table;
use dolbie_net::env::{EnvKind, WireEnvSpec};
use dolbie_net::loopback::{run_loopback, LoopbackOptions};
use dolbie_net::master::{MasterConfig, MasterKind};
use dolbie_net::shard::{run_sharded_loopback, ShardedConfig};

const ENV_SEED: u64 = 0xD01B_54A2;

/// One measured configuration: the flat evented master (`shards == 0`)
/// or the two-level plane at `shards` shard-masters.
struct Row {
    architecture: &'static str,
    n: usize,
    shards: usize,
    rounds: usize,
    seconds: f64,
    /// Steady-state per-round latency in ms: the coordinator's own
    /// per-round timestamps, first round excluded. Round 0 is the warm-up
    /// round — for the sharded plane it additionally absorbs the
    /// shard-masters' worker admission (the root's clock starts when the
    /// backbone is up, before the shards have admitted their fleets), so
    /// including it would charge connection setup to the protocol.
    steady_ms_per_round: f64,
    /// Logical frames the coordinator (flat master or root) exchanged
    /// per round — the fan-in quantity the sharded tier collapses.
    coordinator_frames_per_round: f64,
    bitwise_match: bool,
}

impl Row {
    fn per_round_ms(&self) -> f64 {
        self.seconds * 1e3 / self.rounds.max(1) as f64
    }
}

/// Steady-state ms/round from a monotone per-round timestamp series
/// (seconds since the coordinator started), excluding the first round.
fn steady_ms(stamps: &[f64]) -> f64 {
    assert!(stamps.len() >= 2, "steady-state latency needs at least two rounds");
    (stamps[stamps.len() - 1] - stamps[0]) * 1e3 / (stamps.len() - 1) as f64
}

/// The rep with the median steady-state latency — the whole row, so
/// every reported field comes from one coherent run.
fn median_row(mut reps: Vec<Row>) -> Row {
    assert!(!reps.is_empty(), "at least one rep per scenario");
    reps.sort_by(|a, b| {
        a.steady_ms_per_round.partial_cmp(&b.steady_ms_per_round).expect("finite latency")
    });
    let mid = (reps.len() - 1) / 2;
    reps.swap_remove(mid)
}

fn sequential_reference(env: WireEnvSpec, n: usize, rounds: usize) -> Vec<Vec<f64>> {
    let mut sequential = Dolbie::with_config(Allocation::uniform(n), DolbieConfig::new());
    let mut driver = env.environment(n);
    let trace = run_episode(&mut sequential, &mut driver, EpisodeOptions::new(rounds));
    let mut out: Vec<Vec<f64>> =
        trace.records.iter().map(|r| r.allocation.iter().copied().collect()).collect();
    out.push(sequential.allocation().iter().copied().collect());
    out
}

fn flat_scenario(n: usize, rounds: usize, reference: &[Vec<f64>]) -> Row {
    let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: ENV_SEED + n as u64 };
    let opts = LoopbackOptions::new(MasterConfig::new(n, rounds, env))
        .with_master_kind(MasterKind::Evented);
    let run = run_loopback(&opts).expect("flat evented fleet");
    let report = &run.report;
    assert_eq!(report.trace.rounds.len(), rounds);
    assert_eq!(report.epochs, 0);
    let bitwise = report.trace.rounds.iter().enumerate().all(|(t, round)| {
        (0..n).all(|i| round.allocation.share(i).to_bits() == reference[t][i].to_bits())
    }) && (0..n)
        .all(|i| report.final_allocation.share(i).to_bits() == reference[rounds][i].to_bits());
    assert!(bitwise, "flat evented run diverged from the sequential engine at N = {n}");
    let frames: usize = report.trace.rounds.iter().map(|r| r.messages).sum();
    let stamps: Vec<f64> = report.trace.rounds.iter().map(|r| r.control_finished).collect();
    Row {
        architecture: "flat-evented",
        n,
        shards: 0,
        rounds,
        seconds: report.wall_clock,
        steady_ms_per_round: steady_ms(&stamps),
        coordinator_frames_per_round: frames as f64 / rounds as f64,
        bitwise_match: bitwise,
    }
}

fn sharded_scenario(n: usize, m: usize, rounds: usize, reference: &[Vec<f64>]) -> Row {
    let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: ENV_SEED + n as u64 };
    let cfg = ShardedConfig::new(n, m, rounds, env);
    let run = run_sharded_loopback(&cfg).expect("sharded fleet");
    assert_eq!(run.root.rounds.len(), rounds);
    let stitched = run.allocations();
    let bitwise = stitched
        .iter()
        .zip(reference)
        .all(|(flat, expected)| flat.iter().zip(expected).all(|(a, b)| a.to_bits() == b.to_bits()));
    assert!(bitwise, "sharded run diverged from the sequential engine at N = {n}, M = {m}");
    let frames: usize = run.root.rounds.iter().map(|r| r.messages).sum();
    let stamps: Vec<f64> = run.root.rounds.iter().map(|r| r.elapsed).collect();
    Row {
        architecture: "sharded",
        n,
        shards: m,
        rounds,
        seconds: run.root.wall_clock,
        steady_ms_per_round: steady_ms(&stamps),
        coordinator_frames_per_round: frames as f64 / rounds as f64,
        bitwise_match: bitwise,
    }
}

fn write_bench_json(rows: &[Row], quick: bool, reps: usize) {
    let path = if quick {
        let dir = workspace_root().join("results");
        let _ = std::fs::create_dir_all(&dir);
        dir.join("shard_quick.json")
    } else {
        workspace_root().join("BENCH_shard.json")
    };
    let cpu_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let threads = harness::threads();
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"cpu_cores\": {cpu_cores},\n"));
    body.push_str(&format!("  \"threads\": {threads},\n"));
    body.push_str(&format!("  \"quick\": {quick},\n"));
    body.push_str(&format!("  \"reps_per_scenario\": {reps},\n"));
    body.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"architecture\": \"{}\", \"n\": {}, \"shards\": {}, \"rounds\": {}, \
             \"seconds\": {:.3}, \"per_round_ms\": {:.2}, \"steady_ms_per_round\": {:.2}, \
             \"coordinator_frames_per_round\": {:.1}, \"bitwise_match\": {}}}{}\n",
            row.architecture,
            row.n,
            row.shards,
            row.rounds,
            row.seconds,
            row.per_round_ms(),
            row.steady_ms_per_round,
            row.coordinator_frames_per_round,
            row.bitwise_match,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write(&path, body) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  failed to write {}: {e}", path.display()),
    }
    if cpu_cores == 1 {
        eprintln!(
            "  [warn] this machine reports 1 CPU core: shard-masters time-slice one core, so \
             latency gains come from cheaper sweeps, not parallelism"
        );
    }
}

/// Runs the sweep and writes `results/<name>.csv` plus the JSON record.
pub fn shard_scale_named(name: &str, quick: bool) {
    println!("== sharded control-plane sweep ({}) ==", if quick { "quick" } else { "full" });
    let (n, rounds, shard_counts): (usize, usize, &[usize]) =
        if quick { (64, 30, &[1, 4]) } else { (4096, 30, &[1, 4, 16]) };
    let reference = sequential_reference(
        WireEnvSpec { kind: EnvKind::ChaosMix, seed: ENV_SEED + n as u64 },
        n,
        rounds,
    );

    // Pair-fair measurement. A single pass (flat first, largest M last)
    // would bill the process's first-run costs — allocator growth, page
    // cache, scheduler warm-up — entirely to the flat baseline, and any
    // ambient container noise entirely to whichever scenario it landed
    // on. Instead: one untimed warm-up run, then every scenario measured
    // `reps` times in alternating order, each reporting its
    // median-steady rep. The quick smoke keeps a single pass — it gates
    // correctness, not latency.
    let reps = if quick { 1 } else { 3 };
    if !quick {
        let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: ENV_SEED + n as u64 };
        let warm = LoopbackOptions::new(MasterConfig::new(n, 3, env))
            .with_master_kind(MasterKind::Evented);
        let _ = run_loopback(&warm).expect("warm-up fleet");
    }
    let mut flat_reps: Vec<Row> = Vec::new();
    let mut sharded_reps: Vec<Vec<Row>> = shard_counts.iter().map(|_| Vec::new()).collect();
    for _ in 0..reps {
        flat_reps.push(flat_scenario(n, rounds, &reference));
        for (j, &m) in shard_counts.iter().enumerate() {
            sharded_reps[j].push(sharded_scenario(n, m, rounds, &reference));
        }
    }
    let mut rows = vec![median_row(flat_reps)];
    rows.extend(sharded_reps.into_iter().map(median_row));

    let mut table = Table::new(vec![
        "architecture",
        "n",
        "shards",
        "rounds",
        "wall_clock_s",
        "per_round_ms",
        "steady_ms_per_round",
        "coordinator_frames_per_round",
        "bitwise_vs_sequential",
    ]);
    for row in &rows {
        table.push_row(vec![
            row.architecture.to_string(),
            row.n.to_string(),
            row.shards.to_string(),
            row.rounds.to_string(),
            format!("{:.3}", row.seconds),
            format!("{:.2}", row.per_round_ms()),
            format!("{:.2}", row.steady_ms_per_round),
            format!("{:.1}", row.coordinator_frames_per_round),
            if row.bitwise_match { "yes" } else { "no" }.to_string(),
        ]);
        println!(
            "  {}{}@N={}: {} rounds in {:.3} s — {:.2} ms/round steady-state \
             ({:.2} ms/round incl. warm-up), {:.1} coordinator frames/round, \
             bitwise vs sequential: yes",
            row.architecture,
            if row.shards > 0 { format!("(M={})", row.shards) } else { String::new() },
            row.n,
            row.rounds,
            row.seconds,
            row.steady_ms_per_round,
            row.per_round_ms(),
            row.coordinator_frames_per_round,
        );
    }
    emit_csv(&table, name);
    write_bench_json(&rows, quick, reps);

    // The headline claims, asserted so the sweep is a gate and not just
    // a printout: the root's fan-in is O(M) — at the largest M it must
    // still sit far below the flat master's Θ(N) frame count.
    let flat = &rows[0];
    let largest = rows.last().expect("at least one sharded row");
    assert!(
        largest.coordinator_frames_per_round * 8.0 < flat.coordinator_frames_per_round,
        "root fan-in ({:.1}/round at M={}) is not clearly below the flat master's ({:.1}/round)",
        largest.coordinator_frames_per_round,
        largest.shards,
        flat.coordinator_frames_per_round,
    );
    println!(
        "  root fan-in at M={}: {:.1} frames/round vs the flat master's {:.1} — O(M), not O(N).",
        largest.shards, largest.coordinator_frames_per_round, flat.coordinator_frames_per_round,
    );
    println!(
        "  steady per-round latency at N={}: sharded M={} {:.2} ms vs flat {:.2} ms ({}).",
        largest.n,
        largest.shards,
        largest.steady_ms_per_round,
        flat.steady_ms_per_round,
        if largest.steady_ms_per_round < flat.steady_ms_per_round {
            "sharded wins"
        } else {
            "flat wins"
        },
    );
}

/// The default entry point: `results/shard_scale.csv` for the full
/// sweep, `results/shard_scale_quick.csv` for the quick smoke.
pub fn shard_scale(quick: bool) {
    if quick {
        shard_scale_named("shard_scale_quick", quick);
    } else {
        shard_scale_named("shard_scale", quick);
    }
}
