//! Experiment C1: the §IV-C communication-complexity claims.

use crate::common::emit_csv;
use crate::harness;
use dolbie_core::environment::StaticLinearEnvironment;
use dolbie_core::DolbieConfig;
use dolbie_metrics::Table;
use dolbie_simnet::{FixedLatency, FullyDistributedSim, MasterWorkerSim, RingSim};

/// Measures messages and bytes per round for both architectures across a
/// sweep of worker counts, verifying `O(N)` (master-worker) against
/// `O(N²)` (fully-distributed).
pub fn comms() {
    println!("== §IV-C: per-round communication of the two architectures ==");
    let mut table = Table::new(vec![
        "N",
        "mw_messages",
        "mw_bytes",
        "fd_messages",
        "fd_bytes",
        "ring_messages",
        "ring_bytes",
        "mw_control_overhead_s",
        "fd_control_overhead_s",
        "ring_control_overhead_s",
    ]);
    const ROUNDS: usize = 10;
    println!("  N     MW msgs/rnd  MW bytes/rnd  FD msgs/rnd  FD bytes/rnd  ring msgs/rnd");
    // The worker-count sweep fans out (the N = 64 fully-distributed run
    // dominates); printing and the exact message-count asserts stay on the
    // main thread, in sweep order.
    const NS: [usize; 6] = [2, 4, 8, 16, 32, 64];
    let sweeps = harness::parallel_map_items(&NS, |&n| {
        let slopes: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let env = StaticLinearEnvironment::from_slopes(slopes);
        let mw =
            MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(ROUNDS);
        let fd = FullyDistributedSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan())
            .run(ROUNDS);
        let ring = RingSim::new(env, DolbieConfig::new(), FixedLatency::lan()).run(ROUNDS);
        (mw, fd, ring)
    });
    for (&n, (mw, fd, ring)) in NS.iter().zip(&sweeps) {
        let mw_msgs = mw.total_messages() / ROUNDS;
        let fd_msgs = fd.total_messages() / ROUNDS;
        let ring_msgs = ring.total_messages() / ROUNDS;
        let mw_bytes = mw.total_bytes() / ROUNDS;
        let fd_bytes = fd.total_bytes() / ROUNDS;
        let ring_bytes = ring.total_bytes() / ROUNDS;
        println!(
            "  {n:3}   {mw_msgs:11}  {mw_bytes:12}  {fd_msgs:11}  {fd_bytes:12}  {ring_msgs:13}"
        );
        assert_eq!(mw_msgs, 3 * n, "master-worker must be exactly 3N messages");
        assert_eq!(
            fd_msgs,
            n * (n - 1) + (n - 1),
            "fully-distributed must be N(N-1) + (N-1) messages"
        );
        assert!((2 * n..=2 * n + 1).contains(&ring_msgs), "ring must be 2N or 2N+1 messages");
        table.push_row(vec![
            n.to_string(),
            mw_msgs.to_string(),
            mw_bytes.to_string(),
            fd_msgs.to_string(),
            fd_bytes.to_string(),
            ring_msgs.to_string(),
            ring_bytes.to_string(),
            format!("{:.6}", mw.mean_control_overhead()),
            format!("{:.6}", fd.mean_control_overhead()),
            format!("{:.6}", ring.mean_control_overhead()),
        ]);
    }
    emit_csv(&table, "comms_architectures");
    println!(
        "  master-worker grows linearly (3N); fully-distributed quadratically (N² − 1);\n  \
         the ring extension stays linear (≈2N) but pays O(N) sequential hops of control\n  \
         latency per round (see the control-overhead columns in the CSV)."
    );
}
