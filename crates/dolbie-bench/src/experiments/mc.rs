//! Experiment X8 (extension): model-checking coverage of the DOLBIE
//! protocols.
//!
//! Where the chaos sweeps (X4, X7) *sample* the fault space with seeded
//! randomness, this experiment runs `dolbie-mc` to *enumerate* it: every
//! event interleaving and every fault decision inside the configured
//! envelope, for three small-but-adversarial configurations — one per
//! architecture, matching the crate's acceptance gates:
//!
//! - (a) master-worker, N=3, 3 rounds, the full drop + duplicate wire
//!   envelope under a two-attempt retry policy;
//! - (b) ring, N=4, 3 rounds, one crash window;
//! - (c) fully-distributed, N=3, 3 rounds, a leave + join epoch pair
//!   overlapping a crash window.
//!
//! Each exploration must complete (frontier drained, `max_runs` not
//! tripped), find zero invariant violations, and prune more than half of
//! the naive state encounters via canonical-fingerprint reconvergence —
//! the partial-order reduction is what keeps the spaces tractable, and
//! the experiment gates on it staying effective. The deterministic
//! coverage counters land in `results/mc_coverage.csv`; wall-clock and
//! machine facts (which are *not* deterministic) go to `BENCH_mc.json`
//! at the workspace root. On a violation the experiment shrinks the
//! counterexample and prints the copy-pasteable `#[test]` reproducer
//! before panicking, mirroring the chaos sweeps' hard-gate behavior.
//!
//! `--quick` explores a single crash-only configuration (still
//! exhaustive within its envelope) and writes `results/mc_quick.csv`,
//! never clobbering the full run's outputs.

use crate::common::{emit_csv, workspace_root};
use crate::harness;
use dolbie_mc::{decision_count, explore, reproducer, shrink, Arch, McConfig, Strategy};
use dolbie_metrics::Table;
use dolbie_simnet::{Crash, FaultPlan, LeaveKind, MembershipSchedule, RetryPolicy};
use std::time::Instant;

/// The bounded wire envelope every configuration uses: a two-attempt
/// retry policy, so drop decisions stay within the delivery guarantee.
fn wire_retry() -> RetryPolicy {
    RetryPolicy::new(0.05, 2.0, 2)
}

/// Configuration (a): master-worker under the full lossy wire envelope.
#[must_use]
pub fn config_mw_lossy() -> McConfig {
    let mut plan =
        FaultPlan::seeded(0xD01B_0002).with_drop_probability(0.2).with_duplicate_probability(0.1);
    plan.retry = wire_retry();
    McConfig::new(Arch::MasterWorker, 3, 3).with_plan(plan)
}

/// Configuration (b): ring with one crash window.
#[must_use]
pub fn config_ring_crash() -> McConfig {
    let mut plan = FaultPlan::seeded(0xD01B_0003).with_crash(Crash {
        worker: 2,
        from_round: 1,
        until_round: 2,
    });
    plan.retry = wire_retry();
    McConfig::new(Arch::Ring, 4, 3).with_plan(plan)
}

/// Configuration (c): fully-distributed with a leave + join epoch pair
/// overlapping a crash window.
#[must_use]
pub fn config_fd_join_crash() -> McConfig {
    let mut plan = FaultPlan::seeded(0xD01B_0004).with_crash(Crash {
        worker: 1,
        from_round: 1,
        until_round: 2,
    });
    plan.retry = wire_retry();
    let schedule = MembershipSchedule::none().with_leave(1, 2, LeaveKind::Graceful).with_join(2, 2);
    McConfig::new(Arch::FullyDistributed, 3, 3).with_plan(plan).with_schedule(schedule)
}

/// The `--quick` configuration: master-worker, N=3, 3 rounds, a single
/// crash window and a lossless wire — a sub-second exhaustive space
/// sized for the tier-1 smoke gate.
#[must_use]
pub fn config_quick() -> McConfig {
    let mut plan = FaultPlan::seeded(0xD01B_0001).with_crash(Crash {
        worker: 1,
        from_round: 1,
        until_round: 2,
    });
    plan.retry = wire_retry();
    McConfig::new(Arch::MasterWorker, 3, 3).with_plan(plan)
}

struct CoverageRow {
    name: &'static str,
    config: McConfig,
    runs: usize,
    states_explored: usize,
    states_pruned: usize,
    max_depth: usize,
    seconds: f64,
}

/// Explores one configuration under BFS (so the wave replays ride the
/// deterministic parallel harness), enforcing the experiment's gates.
/// Panics with a shrunk, copy-pasteable reproducer on any violation.
fn run_config(name: &'static str, config: McConfig) -> CoverageRow {
    println!("  [{name}] {} N={} rounds={} ...", config.arch.name(), config.n, config.rounds);
    let started = Instant::now();
    let ex = explore(&config, Strategy::Bfs);
    let seconds = started.elapsed().as_secs_f64();

    if let Some(v) = ex.violation {
        println!("  FAILURE: {name}: {}", v.message);
        println!("  shrinking to a minimal decision prefix...");
        let minimal = shrink(&config, &v.prefix);
        println!(
            "--- minimal reproducer ({} non-default decision(s)) ---",
            decision_count(&minimal)
        );
        println!("{}", reproducer(&config, &minimal, &v.message));
        panic!("model checker found an invariant violation in {name}");
    }
    assert!(ex.complete, "{name}: exploration tripped max_runs before draining the frontier");
    assert!(
        ex.stats.states_pruned * 2 > ex.stats.naive_states(),
        "{name}: pruning fell below 50% of naive ({} of {})",
        ex.stats.states_pruned,
        ex.stats.naive_states()
    );
    println!(
        "  [{name}] {} runs, {} states explored, {} pruned ({:.1}% of naive), depth {} \
         ({seconds:.2} s)",
        ex.stats.runs,
        ex.stats.states_explored,
        ex.stats.states_pruned,
        100.0 * ex.stats.states_pruned as f64 / ex.stats.naive_states() as f64,
        ex.stats.max_depth,
    );
    CoverageRow {
        name,
        config,
        runs: ex.stats.runs,
        states_explored: ex.stats.states_explored,
        states_pruned: ex.stats.states_pruned,
        max_depth: ex.stats.max_depth,
        seconds,
    }
}

/// The coverage table is deterministic — counters only, no wall-clock —
/// so repeated runs diff clean.
fn emit_coverage_csv(rows: &[CoverageRow], name: &str) {
    let mut table = Table::new(vec![
        "config",
        "arch",
        "n",
        "rounds",
        "runs",
        "states_explored",
        "states_pruned",
        "naive_states",
        "pruned_pct",
        "max_depth",
        "violations",
    ]);
    for row in rows {
        let naive = row.states_explored + row.states_pruned;
        table.push_row(vec![
            row.name.to_string(),
            row.config.arch.name().to_string(),
            row.config.n.to_string(),
            row.config.rounds.to_string(),
            row.runs.to_string(),
            row.states_explored.to_string(),
            row.states_pruned.to_string(),
            naive.to_string(),
            format!("{:.1}", 100.0 * row.states_pruned as f64 / naive as f64),
            row.max_depth.to_string(),
            "0".to_string(),
        ]);
    }
    emit_csv(&table, name);
}

fn write_bench_json(rows: &[CoverageRow]) {
    let path = workspace_root().join("BENCH_mc.json");
    let cpu_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let threads = harness::threads();
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"cpu_cores\": {cpu_cores},\n"));
    body.push_str(&format!("  \"threads\": {threads},\n"));
    body.push_str("  \"configs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"config\": \"{}\", \"arch\": \"{}\", \"n\": {}, \"rounds\": {}, \
             \"runs\": {}, \"states_explored\": {}, \"states_pruned\": {}, \
             \"max_depth\": {}, \"seconds\": {:.3}}}{}\n",
            row.name,
            row.config.arch.name(),
            row.config.n,
            row.config.rounds,
            row.runs,
            row.states_explored,
            row.states_pruned,
            row.max_depth,
            row.seconds,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write(&path, body) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  failed to write {}: {e}", path.display()),
    }
}

/// Entry point. Full mode exhaustively verifies the three acceptance
/// configurations and writes `results/mc_coverage.csv` +
/// `BENCH_mc.json`; `--quick` verifies the crash-only smoke
/// configuration and writes `results/mc_quick.csv`.
pub fn mc(quick: bool) {
    if quick {
        println!("== Model checker: quick crash-only exhaustive smoke ==");
        let rows = vec![run_config("mw3x3_crash_quick", config_quick())];
        emit_coverage_csv(&rows, "mc_quick");
        return;
    }
    println!("== Model checker: exhaustive coverage of three fault envelopes ==");
    let rows = vec![
        run_config("mw3x3_drop_dup", config_mw_lossy()),
        run_config("ring4x3_crash", config_ring_crash()),
        run_config("fd3x3_join_crash", config_fd_join_crash()),
    ];
    emit_coverage_csv(&rows, "mc_coverage");
    write_bench_json(&rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick configuration must stay a sub-second exhaustive space
    /// with working pruning — it gates tier-1 under a 10 s budget.
    #[test]
    fn quick_config_is_small_clean_and_pruned() {
        let ex = explore(&config_quick(), Strategy::Bfs);
        assert!(ex.complete);
        assert!(ex.violation.is_none());
        assert!(ex.stats.states_pruned * 2 > ex.stats.naive_states());
        assert!(ex.stats.runs < 10_000, "quick space grew to {} runs", ex.stats.runs);
    }
}
