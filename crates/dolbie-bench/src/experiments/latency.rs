//! Figures 3–5: per-round and cumulative latency of the six algorithms.

use crate::common::{
    cluster_suite, emit_csv, emit_svg, paper_cluster, reduction_pct, run_suite, ALGORITHM_ORDER,
};
use crate::harness;
use dolbie_metrics::plot::{PlotConfig, Series};
use dolbie_metrics::{per_round_summaries, Table};
use dolbie_mlsim::run_training;
use dolbie_mlsim::{MlModel, TrainingConfig};

const ROUNDS: usize = 100;

/// Fig. 3: one realization of the per-round latency when training
/// ResNet18, all six algorithms, plus the paper's headline "by round 40"
/// reductions.
pub fn fig3() {
    println!("== Fig. 3: per-round latency, one realization (ResNet18, N = 30, B = 256) ==");
    let cluster = paper_cluster(MlModel::ResNet18, 42);
    let outcomes = run_suite(&cluster, TrainingConfig::latency_only(ROUNDS));

    let mut columns = vec!["round".to_string()];
    columns.extend(ALGORITHM_ORDER.iter().map(|s| s.to_string()));
    let mut table = Table::new(columns);
    for t in 0..ROUNDS {
        let mut row = vec![t as f64];
        row.extend(outcomes.iter().map(|o| o.rounds[t].global_latency));
        table.push_numeric_row(&row);
    }
    emit_csv(&table, "fig3_per_round_latency");
    let series: Vec<Series> =
        outcomes.iter().map(|o| Series::from_values(o.algorithm.clone(), &o.latencies())).collect();
    emit_svg(
        "fig3_per_round_latency",
        &PlotConfig::new("Fig. 3: per-round latency (ResNet18)", "round", "latency (s)")
            .with_log_y(),
        &series,
    );

    // The paper reports reductions at round 40 of DOLBIE vs EQU/OGD/LB-BSP/ABS.
    let at = 40.min(ROUNDS - 1);
    let dolbie = outcomes[4].rounds[at].global_latency;
    println!("  per-round latency at round {at}:");
    for o in &outcomes {
        println!("    {:8} {:.4} s", o.algorithm, o.rounds[at].global_latency);
    }
    println!(
        "  DOLBIE reduction at round {at} (paper: 89.6/82.2/67.4/47.6% vs EQU/OGD/LB-BSP/ABS):"
    );
    for name in ["EQU", "OGD", "LB-BSP", "ABS"] {
        let base = outcomes
            .iter()
            .find(|o| o.algorithm == name)
            .map(|o| o.rounds[at].global_latency)
            .unwrap();
        println!("    vs {:8} {:5.1}%", name, reduction_pct(base, dolbie));
    }
}

/// Shared engine of Figs. 4–5: mean ± CI latency series over repeated
/// cluster realizations. Public so the determinism regression test can run
/// it at a small realization count under different thread settings.
pub fn ci_figure(cumulative: bool, name: &str, title: &str, realizations: usize) {
    println!("== {title} ({realizations} realizations of processor sampling) ==");
    // One latency series per algorithm per realization. Every
    // (seed, algorithm) pair is independent, so the whole grid fans out
    // over the harness; collection order matches the sequential
    // seed-major loop exactly.
    let n_algs = ALGORITHM_ORDER.len();
    let flat = harness::parallel_map(realizations * n_algs, |i| {
        let seed = (i / n_algs) as u64;
        let k = i % n_algs;
        let cluster = paper_cluster(MlModel::ResNet18, seed);
        let mut balancer = cluster_suite(&cluster).swap_remove(k);
        let outcome =
            run_training(balancer.as_mut(), cluster, TrainingConfig::latency_only(ROUNDS));
        let mut s = outcome.latencies();
        if cumulative {
            let mut acc = 0.0;
            for v in &mut s {
                acc += *v;
                *v = acc;
            }
        }
        s
    });
    let mut series: Vec<Vec<Vec<f64>>> = vec![Vec::new(); n_algs];
    for (i, s) in flat.into_iter().enumerate() {
        series[i % n_algs].push(s);
    }

    let mut columns = vec!["round".to_string()];
    for alg in ALGORITHM_ORDER {
        columns.push(format!("{alg}_mean"));
        columns.push(format!("{alg}_ci95"));
    }
    let mut table = Table::new(columns);
    let summaries: Vec<_> = series.iter().map(|s| per_round_summaries(s)).collect();
    for t in 0..ROUNDS {
        let mut row = vec![t as f64];
        for alg in &summaries {
            row.push(alg[t].mean());
            row.push(alg[t].ci95_half_width());
        }
        table.push_numeric_row(&row);
    }
    emit_csv(&table, name);
    let svg_series: Vec<Series> = ALGORITHM_ORDER
        .iter()
        .zip(&summaries)
        .map(|(alg, s)| {
            let means: Vec<f64> = s.iter().map(|v| v.mean()).collect();
            let bands: Vec<f64> = s.iter().map(|v| v.ci95_half_width()).collect();
            Series::from_values(alg.to_string(), &means).with_band(bands)
        })
        .collect();
    emit_svg(name, &PlotConfig::new(title, "round", "latency (s)").with_log_y(), &svg_series);

    let last = ROUNDS - 1;
    println!(
        "  round {last} ({} latency), mean ± 95% CI:",
        if cumulative { "cumulative" } else { "per-round" }
    );
    for (alg, s) in ALGORITHM_ORDER.iter().zip(&summaries) {
        println!("    {:8} {:9.4} ± {:.4} s", alg, s[last].mean(), s[last].ci95_half_width());
    }
}

/// Fig. 4: per-round latency with 95% confidence intervals over repeated
/// realizations of the processor sampling.
pub fn fig4(quick: bool) {
    ci_figure(
        false,
        "fig4_per_round_latency_ci",
        "Fig. 4: per-round latency with 95% CI",
        if quick { 10 } else { 100 },
    );
}

/// Fig. 5: cumulative training latency with 95% confidence intervals.
pub fn fig5(quick: bool) {
    ci_figure(
        true,
        "fig5_cumulative_latency_ci",
        "Fig. 5: cumulative latency with 95% CI",
        if quick { 10 } else { 100 },
    );
}
