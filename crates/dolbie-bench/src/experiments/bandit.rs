//! Experiment X2 (extension): DOLBIE under weakened feedback models.
//!
//! The paper assumes each worker observes its full local cost *function*
//! immediately after acting. Two library extensions relax that:
//! `dolbie-core::bandit` (only the realized cost value, with a
//! secant-estimated local model) and `dolbie-core::delayed` (observations
//! land `d` rounds late). This experiment quantifies the price of each on
//! the paper's ML cluster.

use crate::common::{emit_csv, paper_cluster};
use crate::harness;
use dolbie_core::{BanditDolbie, DelayedDolbie, Dolbie, DolbieConfig, LoadBalancer};
use dolbie_metrics::{Summary, Table};
use dolbie_mlsim::{run_training, MlModel, TrainingConfig};

/// Compares full-information DOLBIE against the bandit and delayed
/// variants (and EQU as the no-learning anchor) across repeated cluster
/// realizations.
pub fn bandit(quick: bool) {
    let realizations = if quick { 10 } else { 50 };
    const ROUNDS: usize = 100;
    println!(
        "== Feedback models: full vs bandit vs delayed DOLBIE ({realizations} realizations) =="
    );

    let mut totals: Vec<(String, Vec<f64>)> = vec![
        ("EQU".into(), Vec::new()),
        ("DOLBIE".into(), Vec::new()),
        ("DOLBIE-bandit".into(), Vec::new()),
        ("DOLBIE-delayed(3)".into(), Vec::new()),
    ];
    // Every (seed, feedback-model) cell is independent; fan the grid out
    // and refill `totals` in the sequential seed-major order.
    let n_variants = totals.len();
    let flat = harness::parallel_map(realizations * n_variants, |i| {
        let seed = (i / n_variants) as u64;
        let k = i % n_variants;
        let cluster = paper_cluster(MlModel::ResNet18, seed);
        let n = dolbie_core::Environment::num_workers(&cluster);
        let config = TrainingConfig::latency_only(ROUNDS);
        let mut balancer: Box<dyn LoadBalancer> = match k {
            0 => Box::new(dolbie_baselines::Equ::new(n)),
            1 => Box::new(Dolbie::with_config(
                dolbie_core::Allocation::uniform(n),
                DolbieConfig::new().with_initial_alpha(0.001),
            )),
            2 => Box::new(BanditDolbie::with_config(
                dolbie_core::Allocation::uniform(n),
                DolbieConfig::new().with_initial_alpha(0.001),
            )),
            _ => Box::new(DelayedDolbie::with_config(
                dolbie_core::Allocation::uniform(n),
                3,
                DolbieConfig::new().with_initial_alpha(0.001),
            )),
        };
        run_training(balancer.as_mut(), cluster, config).total_wall_clock()
    });
    for (i, total) in flat.into_iter().enumerate() {
        totals[i % n_variants].1.push(total);
    }

    let mut table = Table::new(vec!["algorithm", "wall_clock_mean_s", "wall_clock_ci95_s"]);
    println!("  total wall-clock over {ROUNDS} rounds (mean ± 95% CI):");
    let mut means = Vec::new();
    for (name, samples) in &totals {
        let s = Summary::from_samples(samples);
        println!("    {:14} {:9.2} ± {:.2} s", name, s.mean(), s.ci95_half_width());
        table.push_row(vec![
            name.clone(),
            format!("{:.4}", s.mean()),
            format!("{:.4}", s.ci95_half_width()),
        ]);
        means.push(s.mean());
    }
    emit_csv(&table, "bandit_feedback");
    let bandit_price = (means[2] - means[1]) / means[1] * 100.0;
    let delay_price = (means[3] - means[1]) / means[1] * 100.0;
    println!(
        "  price of bandit feedback: {bandit_price:+.1}%; of a 3-round delay: {delay_price:+.1}%\n  \
         wall-clock vs full information (all variants stay far ahead of EQU; the secant\n  \
         model is exact for the affine latency costs once two shares have been played)."
    );
}
