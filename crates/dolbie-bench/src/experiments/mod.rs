//! One module per reproduced figure/claim. See DESIGN.md §5 for the
//! experiment index mapping each to the paper.

pub mod ablation;
pub mod accuracy;
pub mod bandit;
pub mod chaos;
pub mod chaos_net;
pub mod churn;
pub mod comms;
pub mod edge_exp;
pub mod faults;
pub mod large_n;
pub mod latency;
pub mod mc;
pub mod net;
pub mod net_scale;
pub mod per_worker;
pub mod regret;
pub mod shard_scale;
pub mod utilization;
