//! Experiment X5 (extension): how the TCP runtime scales with fleet size.
//!
//! Runs real loopback fleets at N ∈ {256, 1024, 4096} under the
//! event-driven master (and the blocking master at the smaller sizes, as
//! the baseline it replaces) and writes rounds/s and bytes/s per
//! configuration to `results/net_scale.csv`. The quick variant used by
//! the tier-1 smoke runs smaller fleets and writes
//! `results/net_scale_quick.csv`, so a smoke run never clobbers the full
//! measurement.
//!
//! Every row is also a correctness gate: the trajectory at every size is
//! checked bitwise against the sequential engine before the row is
//! emitted, so the CSV cannot claim throughput for a run that diverged.
//! Throughput columns measure this machine and vary run to run; the
//! trajectory does not.

use crate::common::emit_csv;
use dolbie_core::{run_episode, Allocation, Dolbie, DolbieConfig, EpisodeOptions};
use dolbie_metrics::Table;
use dolbie_net::env::{EnvKind, WireEnvSpec};
use dolbie_net::loopback::{run_loopback, LoopbackOptions};
use dolbie_net::master::{MasterConfig, MasterKind};

const ENV_SEED: u64 = 0xD01B_5CA1;

fn kind_name(kind: MasterKind) -> &'static str {
    match kind {
        MasterKind::Blocking => "blocking",
        MasterKind::Evented => "evented",
    }
}

/// One fleet at one size under one master implementation, gated bitwise
/// against the sequential engine.
fn scenario(table: &mut Table, kind: MasterKind, n: usize, rounds: usize) {
    let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: ENV_SEED + n as u64 };
    let opts = LoopbackOptions::new(MasterConfig::new(n, rounds, env)).with_master_kind(kind);
    let run = run_loopback(&opts).expect("loopback fleet");
    let report = &run.report;
    assert_eq!(report.trace.rounds.len(), rounds);
    assert_eq!(report.epochs, 0, "no worker may be lost to connect or deadline pressure");

    let mut sequential = Dolbie::with_config(Allocation::uniform(n), DolbieConfig::new());
    let mut driver = env.environment(n);
    let trace = run_episode(&mut sequential, &mut driver, EpisodeOptions::new(rounds));
    for (t, (net_round, seq_round)) in
        run.report.trace.rounds.iter().zip(&trace.records).enumerate()
    {
        for i in 0..n {
            assert_eq!(
                net_round.allocation.share(i).to_bits(),
                seq_round.allocation.share(i).to_bits(),
                "round {t}, worker {i}: scaled fleet diverged from the sequential engine"
            );
        }
    }

    let wire = &report.wire;
    let wall = report.wall_clock;
    let bytes = wire.bytes_sent + wire.bytes_received;
    let rounds_per_s = rounds as f64 / wall.max(1e-9);
    let bytes_per_s = bytes as f64 / wall.max(1e-9);
    table.push_row(vec![
        kind_name(kind).to_string(),
        n.to_string(),
        rounds.to_string(),
        report.trace.total_messages().to_string(),
        wire.frames_sent.to_string(),
        bytes.to_string(),
        format!("{wall:.3}"),
        format!("{rounds_per_s:.1}"),
        format!("{bytes_per_s:.0}"),
        "yes".to_string(),
    ]);
    println!(
        "  {}@N={n}: {rounds} rounds in {wall:.3} s — {rounds_per_s:.1} rounds/s, \
         {bytes_per_s:.0} wire bytes/s, bitwise vs sequential: yes",
        kind_name(kind),
    );
}

/// Runs the scaling sweep and writes `results/<name>.csv`.
pub fn net_scale_named(name: &str, quick: bool) {
    println!("== TCP runtime scaling sweep ({}) ==", if quick { "quick" } else { "full" });
    let mut table = Table::new(vec![
        "master",
        "n",
        "rounds",
        "logical_messages",
        "wire_frames",
        "wire_bytes",
        "wall_clock_s",
        "rounds_per_s",
        "bytes_per_s",
        "bitwise_vs_sequential",
    ]);
    if quick {
        // The tier-1 smoke: a four-digit thread fleet is too heavy for a
        // <10 s budget, but N = 256 exercises the same readiness loop,
        // concurrent admission, and coalesced broadcasts.
        scenario(&mut table, MasterKind::Blocking, 64, 20);
        scenario(&mut table, MasterKind::Evented, 64, 20);
        scenario(&mut table, MasterKind::Evented, 256, 10);
    } else {
        for n in [256usize, 1024] {
            scenario(&mut table, MasterKind::Blocking, n, if n <= 256 { 60 } else { 30 });
            scenario(&mut table, MasterKind::Evented, n, if n <= 256 { 60 } else { 30 });
        }
        // The headline size: the blocking master's serial admission was
        // never run here — the point of the sweep is that the evented
        // master holds a multi-round run together at this scale.
        scenario(&mut table, MasterKind::Evented, 4096, 10);
    }
    emit_csv(&table, name);
    println!("  every fleet held bitwise parity with the sequential engine.");
}

/// The default entry point: `results/net_scale.csv` for the full sweep,
/// `results/net_scale_quick.csv` for the quick smoke.
pub fn net_scale(quick: bool) {
    if quick {
        net_scale_named("net_scale_quick", quick);
    } else {
        net_scale_named("net_scale", quick);
    }
}
