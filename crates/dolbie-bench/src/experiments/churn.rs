//! Experiment X3 (extension): churn recovery.
//!
//! A 10-worker paper cluster runs DOLBIE for 100 rounds through an
//! elastic-membership episode: at round 25 two workers depart — one
//! gracefully, one crash-detected — and at round 60 both rejoin at share
//! zero. `results/churn_recovery.csv` records, per round, the protocol's
//! max cost against two clairvoyant baselines:
//!
//! - the **static-N oracle**, which always balances all 10 workers — the
//!   bound the run can only match outside the churn window; and
//! - the **active-N oracle**, which balances exactly the current member
//!   set — the fair comparator during the window, showing DOLBIE
//!   re-converging to the shrunken fleet's optimum after the epoch
//!   boundary redistributes the departed shares.
//!
//! The master-worker trace is cross-checked round-by-round against the
//! sequential engine driven through `apply_membership` +
//! `Observation::from_costs_masked` (the experiment aborts on
//! divergence), and the oracle fan-out is deterministic, so the CSV is
//! byte-identical at any `--threads` setting.

use crate::common::emit_csv;
use crate::harness;
use dolbie_core::cost::DynCost;
use dolbie_core::oracle::instantaneous_minimizer;
use dolbie_core::{Dolbie, DolbieConfig, Environment, LoadBalancer, Observation};
use dolbie_metrics::Table;
use dolbie_mlsim::{Cluster, ClusterConfig, MlModel};
use dolbie_simnet::{FixedLatency, LeaveKind, MasterWorkerSim, MembershipSchedule};

const N: usize = 10;
const ROUNDS: usize = 100;
const LEAVE_ROUND: usize = 25;
const REJOIN_ROUND: usize = 60;
const GRACEFUL_WORKER: usize = 3;
const CRASHED_WORKER: usize = 7;

fn schedule() -> MembershipSchedule {
    MembershipSchedule::none()
        .with_leave(LEAVE_ROUND, GRACEFUL_WORKER, LeaveKind::Graceful)
        .with_leave(LEAVE_ROUND, CRASHED_WORKER, LeaveKind::CrashDetected)
        .with_join(REJOIN_ROUND, GRACEFUL_WORKER)
        .with_join(REJOIN_ROUND, CRASHED_WORKER)
}

/// Runs the churn-recovery episode and writes `results/<name>.csv`.
pub fn churn_named(name: &str) {
    println!("== Churn recovery: 2 of {N} workers leave at round {LEAVE_ROUND}, rejoin at {REJOIN_ROUND} ==");
    let mut cfg = ClusterConfig::paper(MlModel::ResNet18);
    cfg.num_workers = N;
    let env = Cluster::sample(cfg, 0xC4A9);
    let sched = schedule();

    let trace = MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan())
        .with_membership(sched.clone())
        .run(ROUNDS);

    // Cross-check: the protocol through churn equals the sequential engine
    // through `apply_membership` — the experiment is a regression gate.
    let mut driver = env.clone();
    let mut sequential = Dolbie::new(N);
    let mut members = vec![true; N];
    for t in 0..ROUNDS {
        if sched.apply_round(t, &mut members).changed {
            sequential.apply_membership(&members);
        }
        let played = sequential.allocation().clone();
        let drift = trace.rounds[t].allocation.l2_distance(&played);
        assert!(
            drift < 1e-9,
            "round {t}: protocol diverged from the sequential engine by {drift:e}"
        );
        let fns = driver.reveal(t);
        let obs = Observation::from_costs_masked(t, &played, &fns, &members, Vec::new());
        sequential.observe(&obs);
    }

    // Clairvoyant baselines, fanned out across rounds (each round's oracle
    // is independent; order is restored by the harness).
    let oracles: Vec<(f64, f64)> = harness::parallel_map(ROUNDS, |t| {
        let fns = env.clone().reveal(t);
        let static_opt =
            instantaneous_minimizer(&fns).expect("paper cost functions are well-formed").level;
        let members = sched.members_at(N, t);
        let active: Vec<DynCost> =
            fns.into_iter().enumerate().filter(|(i, _)| members[*i]).map(|(_, f)| f).collect();
        let active_opt =
            instantaneous_minimizer(&active).expect("a member subset stays well-formed").level;
        (static_opt, active_opt)
    });

    let mut table = Table::new(vec![
        "round",
        "max_cost",
        "static_oracle",
        "active_oracle",
        "active_count",
        "alpha",
        "share_graceful_w3",
        "share_crashed_w7",
    ]);
    for (t, r) in trace.rounds.iter().enumerate() {
        let (static_opt, active_opt) = oracles[t];
        table.push_row(vec![
            t.to_string(),
            format!("{:.6}", r.global_cost),
            format!("{static_opt:.6}"),
            format!("{active_opt:.6}"),
            r.active.iter().filter(|&&a| a).count().to_string(),
            format!("{:.9}", r.alpha),
            format!("{:.6}", r.allocation.share(GRACEFUL_WORKER)),
            format!("{:.6}", r.allocation.share(CRASHED_WORKER)),
        ]);
    }
    emit_csv(&table, name);

    let before = trace.rounds[LEAVE_ROUND - 1].global_cost;
    let spike = trace.rounds[LEAVE_ROUND].global_cost;
    let settled = trace.rounds[REJOIN_ROUND - 1].global_cost;
    let recovered = trace.rounds[ROUNDS - 1].global_cost;
    println!(
        "  max cost: {before:.3} before the leave, {spike:.3} at the boundary, {settled:.3} settled on 8 workers, {recovered:.3} after the rejoin"
    );
    println!(
        "  rejoiners re-enter at share 0: w{GRACEFUL_WORKER} = {:.4}, w{CRASHED_WORKER} = {:.4} at round {REJOIN_ROUND}; {:.4} / {:.4} by the horizon",
        trace.rounds[REJOIN_ROUND].allocation.share(GRACEFUL_WORKER),
        trace.rounds[REJOIN_ROUND].allocation.share(CRASHED_WORKER),
        trace.rounds[ROUNDS - 1].allocation.share(GRACEFUL_WORKER),
        trace.rounds[ROUNDS - 1].allocation.share(CRASHED_WORKER),
    );
    println!("  sequential-engine cross-check held to 1e-9 on every round.");
}

/// The default entry point: writes `results/churn_recovery.csv`.
pub fn churn() {
    churn_named("churn_recovery");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_matches_the_documented_episode() {
        let sched = schedule();
        sched.validate(N);
        let during = sched.members_at(N, LEAVE_ROUND);
        assert_eq!(during.iter().filter(|&&m| m).count(), N - 2);
        assert!(!during[GRACEFUL_WORKER] && !during[CRASHED_WORKER]);
        assert!(sched.members_at(N, REJOIN_ROUND).iter().all(|&m| m));
    }
}
