//! Experiment A1: ablation of the risk-averse step-size rule (eq. (7)).
//!
//! The paper's design hinges on the coordinated, diminishing step size:
//! it keeps the iterates feasible with no projection and keeps
//! non-stragglers from over-committing ("risk-averse"). This ablation
//! compares the paper's schedule against risk-seeking variants on the same
//! cluster realizations:
//!
//! - **paper** — eq. (7), initial `α` from the paper's formula;
//! - **fixed-α** — a constant step size (no tightening), relying on the
//!   in-engine feasibility guard;
//! - **aggressive** — `α = 1`: every non-straggler jumps straight to its
//!   maximum acceptable workload.

use crate::common::{emit_csv, paper_cluster};
use crate::harness;
use dolbie_core::{Allocation, Dolbie, DolbieConfig};
use dolbie_metrics::{Summary, Table};
use dolbie_mlsim::{run_training, MlModel, TrainingConfig};

const ROUNDS: usize = 100;

/// Runs the ablation across repeated cluster realizations.
pub fn ablation(quick: bool) {
    let realizations = if quick { 10 } else { 50 };
    println!(
        "== Ablation: the risk-averse step-size rule of eq. (7) ({realizations} realizations) =="
    );

    let variants: Vec<(&str, DolbieConfig)> = vec![
        ("paper (eq. 7)", DolbieConfig::new()),
        ("fixed α=0.05", DolbieConfig::new().with_initial_alpha(0.05).with_alpha_floor(0.05)),
        ("fixed α=0.3", DolbieConfig::new().with_initial_alpha(0.3).with_alpha_floor(0.3)),
        ("aggressive α=1", DolbieConfig::new().with_initial_alpha(1.0).with_alpha_floor(1.0)),
    ];

    let mut table = Table::new(vec![
        "variant",
        "total_latency_mean_s",
        "total_latency_ci95_s",
        "worse_straggler_rounds",
        "guard_activations",
    ]);
    println!("  variant          total latency (mean ± CI)   worse-straggler rds  guard hits");
    for (name, config) in &variants {
        // Realizations are independent; fan them out and fold the results
        // back in seed order.
        let per_seed = harness::parallel_map(realizations, |seed| {
            let cluster = paper_cluster(MlModel::ResNet18, seed as u64);
            let n = dolbie_core::Environment::num_workers(&cluster);
            let mut dolbie = Dolbie::with_config(Allocation::uniform(n), *config);
            let outcome = run_training(&mut dolbie, cluster, TrainingConfig::latency_only(ROUNDS));
            // A "worse straggler" event: the global latency jumped by more
            // than the ambient fluctuation (20%) over the previous round —
            // the risk the paper's rule is designed to avoid.
            let worse = outcome
                .rounds
                .windows(2)
                .filter(|w| w[1].global_latency > w[0].global_latency * 1.2)
                .count();
            (outcome.total_wall_clock(), worse, dolbie.stats().guard_activations)
        });
        let mut totals = Vec::new();
        let mut worse_rounds = 0usize;
        let mut guards = 0usize;
        for (total, worse, guard) in per_seed {
            totals.push(total);
            worse_rounds += worse;
            guards += guard;
        }
        let s = Summary::from_samples(&totals);
        println!(
            "  {name:16} {:9.2} ± {:7.2} s        {worse_rounds:6}              {guards:6}",
            s.mean(),
            s.ci95_half_width()
        );
        table.push_row(vec![
            name.to_string(),
            format!("{:.4}", s.mean()),
            format!("{:.4}", s.ci95_half_width()),
            worse_rounds.to_string(),
            guards.to_string(),
        ]);
    }
    emit_csv(&table, "ablation_step_size");
    println!(
        "  reading: the eq. (7) schedule is the only variant that is feasible *by design*\n  \
         (zero guard activations) and satisfies the non-increasing-α premise of Theorem 1;\n  \
         the risk-seeking variants converge faster here but lean on the engine's\n  \
         out-of-paper feasibility guard thousands of times and produce more\n  \
         worse-straggler rounds — the trade-off §IV-B is about."
    );
}
