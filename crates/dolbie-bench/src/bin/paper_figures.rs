//! Regenerates every figure of the DOLBIE paper plus the extension
//! experiments.
//!
//! ```text
//! cargo run --release -p dolbie-bench --bin paper_figures -- all
//! cargo run --release -p dolbie-bench --bin paper_figures -- fig3 fig11
//! cargo run --release -p dolbie-bench --bin paper_figures -- --quick all
//! cargo run --release -p dolbie-bench --bin paper_figures -- --threads 4 fig4
//! cargo run --release -p dolbie-bench --bin paper_figures -- --quick --bench fig3 fig4 regret
//! ```
//!
//! Realization loops fan out over `--threads N` worker threads (default:
//! the machine's available parallelism) with outputs byte-identical to a
//! sequential run; see `dolbie_bench::harness`. `--bench` additionally
//! times every requested target at one thread and at `N` threads and
//! writes the measurements to `BENCH_paper_figures.json` in the workspace
//! root.

use dolbie_bench::experiments::large_n::LargeNOptions;
use dolbie_bench::experiments::{
    ablation, accuracy, bandit, chaos, chaos_net, churn, comms, edge_exp, faults, large_n, latency,
    mc, net, net_scale, per_worker, regret, shard_scale, utilization,
};
use dolbie_bench::{common, harness};
use dolbie_core::kernel::KernelVariant;
use std::time::Instant;

const TARGETS: [&str; 12] = [
    "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "regret", "comms",
    "edge",
];

const EXTENSION_TARGETS: [&str; 11] = [
    "ablation",
    "faults",
    "bandit",
    "large_n",
    "chaos",
    "chaos_net",
    "mc",
    "churn",
    "net",
    "net_scale",
    "shard_scale",
];

fn usage() -> ! {
    eprintln!(
        "usage: paper_figures [--quick] [--threads N] [--bench] [--kernel K] [--gate] <target>...\n\
         targets: {}, {}, all\n\
         --quick    reduces realization counts for a fast smoke run\n\
         --threads  worker threads for the realization fan-out (default: all cores)\n\
         --bench    times each target at 1 and N threads; writes BENCH_paper_figures.json\n\
         --kernel   large_n round kernels: split, fused, simd, all, or a comma list (default: all)\n\
         --gate     large_n only: fail if quick throughput regresses >20% below BENCH_large_n.json",
        TARGETS.join(", "),
        EXTENSION_TARGETS.join(", ")
    );
    std::process::exit(2);
}

/// Per-run options beyond the target list; only `large_n` consumes the
/// kernel selection and the gate.
struct RunOptions {
    quick: bool,
    kernels: Vec<KernelVariant>,
    gate: bool,
}

fn run(target: &str, options: &RunOptions) {
    let quick = options.quick;
    match target {
        "fig3" => latency::fig3(),
        "fig4" => latency::fig4(quick),
        "fig5" => latency::fig5(quick),
        "fig6" => accuracy::fig6(),
        "fig7" => accuracy::fig7(),
        "fig8" => accuracy::fig8(),
        "fig9" => per_worker::fig9(),
        "fig10" => per_worker::fig10(),
        "fig11" => utilization::fig11(quick),
        "regret" => regret::regret(quick),
        "comms" => comms::comms(),
        "edge" => edge_exp::edge(quick),
        "ablation" => ablation::ablation(quick),
        "faults" => faults::faults(),
        "bandit" => bandit::bandit(quick),
        "large_n" => large_n::large_n_with(&LargeNOptions {
            quick,
            kernels: options.kernels.clone(),
            gate: options.gate,
        }),
        "chaos" => chaos::chaos(quick),
        "chaos_net" => chaos_net::chaos_net(quick),
        "mc" => mc::mc(quick),
        "churn" => churn::churn(),
        "net" => net::net(quick),
        "net_scale" => net_scale::net_scale(quick),
        "shard_scale" => shard_scale::shard_scale(quick),
        other => {
            eprintln!("unknown target: {other}");
            usage();
        }
    }
    println!();
}

struct BenchRow {
    target: String,
    seconds: f64,
    seconds_one_thread: f64,
}

fn write_bench_json(rows: &[BenchRow], threads: usize, quick: bool) {
    let path = common::workspace_root().join("BENCH_paper_figures.json");
    let cpu_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"cpu_cores\": {cpu_cores},\n"));
    body.push_str(&format!("  \"threads\": {threads},\n"));
    body.push_str(&format!("  \"quick\": {quick},\n"));
    body.push_str("  \"targets\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let speedup = row.seconds_one_thread / row.seconds.max(1e-9);
        body.push_str(&format!(
            "    {{\"target\": \"{}\", \"seconds\": {:.3}, \"seconds_1thread\": {:.3}, \"speedup\": {:.2}}}{}\n",
            row.target,
            row.seconds,
            row.seconds_one_thread,
            speedup,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    body.push_str("  ],\n");
    let total: f64 = rows.iter().map(|r| r.seconds).sum();
    let total_one: f64 = rows.iter().map(|r| r.seconds_one_thread).sum();
    body.push_str(&format!("  \"total_seconds\": {total:.3},\n"));
    body.push_str(&format!("  \"total_seconds_1thread\": {total_one:.3},\n"));
    body.push_str(&format!("  \"total_speedup\": {:.2}\n", total_one / total.max(1e-9)));
    body.push_str("}\n");
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut bench = false;
    let mut gate = false;
    let mut kernels: Vec<KernelVariant> = Vec::new();
    let mut threads: Option<usize> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--bench" => bench = true,
            "--gate" => gate = true,
            "--kernel" => {
                let Some(value) = it.next() else {
                    eprintln!("--kernel requires a value (split, fused, simd, all)");
                    usage();
                };
                for part in value.split(',') {
                    if part == "all" {
                        kernels.extend(KernelVariant::all());
                        continue;
                    }
                    match KernelVariant::parse(part) {
                        Some(k) if !kernels.contains(&k) => kernels.push(k),
                        Some(_) => {}
                        None => {
                            eprintln!(
                                "invalid value for --kernel: {part:?} (expected split, fused, \
                                 simd, or all)"
                            );
                            usage();
                        }
                    }
                }
            }
            "--threads" => {
                let Some(value) = it.next() else {
                    eprintln!("--threads requires a value (a positive worker-thread count)");
                    usage();
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => threads = Some(n),
                    _ => {
                        eprintln!(
                            "invalid value for --threads: {value:?} (expected a positive integer)"
                        );
                        usage();
                    }
                }
            }
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                usage();
            }
            target => targets.push(target.to_string()),
        }
    }
    if targets.is_empty() {
        usage();
    }
    let threads =
        threads.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    harness::set_threads(threads);
    if kernels.is_empty() {
        kernels.extend(KernelVariant::all());
    }
    let options = RunOptions { quick, kernels, gate };

    // Expand `all` preserving the canonical ordering.
    let expanded: Vec<&str> = targets
        .iter()
        .flat_map(|t| {
            if t == "all" {
                TARGETS.iter().chain(EXTENSION_TARGETS.iter()).copied().collect::<Vec<_>>()
            } else {
                vec![t.as_str()]
            }
        })
        .collect();

    if bench {
        if std::thread::available_parallelism().map_or(1, |n| n.get()) == 1 {
            eprintln!(
                "[warn] this machine reports a single CPU core: multi-thread timings will sit \
                 near 1.0x the single-thread ones; that is the hardware, not a harness regression"
            );
        }
        let mut rows = Vec::with_capacity(expanded.len());
        for target in &expanded {
            harness::set_threads(1);
            let start = Instant::now();
            run(target, &options);
            let seconds_one_thread = start.elapsed().as_secs_f64();
            harness::set_threads(threads);
            let start = Instant::now();
            run(target, &options);
            let seconds = start.elapsed().as_secs_f64();
            println!(
                "[bench] {target}: {seconds:.3} s at {threads} threads, {seconds_one_thread:.3} s at 1 thread ({:.2}x)",
                seconds_one_thread / seconds.max(1e-9)
            );
            rows.push(BenchRow { target: target.to_string(), seconds, seconds_one_thread });
        }
        write_bench_json(&rows, threads, quick);
    } else {
        for target in &expanded {
            run(target, &options);
        }
    }
}
