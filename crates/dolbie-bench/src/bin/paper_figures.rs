//! Regenerates every figure of the DOLBIE paper plus the extension
//! experiments.
//!
//! ```text
//! cargo run --release -p dolbie-bench --bin paper_figures -- all
//! cargo run --release -p dolbie-bench --bin paper_figures -- fig3 fig11
//! cargo run --release -p dolbie-bench --bin paper_figures -- --quick all
//! ```

use dolbie_bench::experiments::{
    ablation, accuracy, bandit, comms, edge_exp, faults, latency, per_worker, regret,
    utilization,
};

const TARGETS: [&str; 12] = [
    "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "regret",
    "comms", "edge",
];

const EXTENSION_TARGETS: [&str; 3] = ["ablation", "faults", "bandit"];

fn usage() -> ! {
    eprintln!(
        "usage: paper_figures [--quick] <target>...\n\
         targets: {}, {}, all\n\
         --quick reduces realization counts for a fast smoke run",
        TARGETS.join(", "),
        EXTENSION_TARGETS.join(", ")
    );
    std::process::exit(2);
}

fn run(target: &str, quick: bool) {
    match target {
        "fig3" => latency::fig3(),
        "fig4" => latency::fig4(quick),
        "fig5" => latency::fig5(quick),
        "fig6" => accuracy::fig6(),
        "fig7" => accuracy::fig7(),
        "fig8" => accuracy::fig8(),
        "fig9" => per_worker::fig9(),
        "fig10" => per_worker::fig10(),
        "fig11" => utilization::fig11(quick),
        "regret" => regret::regret(quick),
        "comms" => comms::comms(),
        "edge" => edge_exp::edge(quick),
        "ablation" => ablation::ablation(quick),
        "faults" => faults::faults(),
        "bandit" => bandit::bandit(quick),
        other => {
            eprintln!("unknown target: {other}");
            usage();
        }
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let targets: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    if targets.is_empty() {
        usage();
    }
    for target in targets {
        if target == "all" {
            for t in TARGETS {
                run(t, quick);
            }
            for t in EXTENSION_TARGETS {
                run(t, quick);
            }
        } else {
            run(target, quick);
        }
    }
}
