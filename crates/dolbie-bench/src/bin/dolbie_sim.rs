//! A general-purpose simulation CLI: pick an algorithm, an environment,
//! and a horizon; get per-round series and a summary.
//!
//! ```text
//! cargo run --release -p dolbie-bench --bin dolbie_sim -- \
//!     --algorithm dolbie --env cluster --model resnet18 --workers 30 \
//!     --rounds 100 --seed 42 --csv results/run.csv
//! ```
//!
//! Environments: `cluster` (the §VI ML cluster; honors `--model`),
//! `edge` (the §III-B offloading scenario; `--workers` = servers + 1),
//! `rotating` (the synthetic rotating-straggler adversary).
//! Algorithms: `equ`, `ogd`, `abs`, `lbbsp`, `dolbie`, `bandit`, `opt`.

use dolbie_baselines::{Abs, ClairvoyantOpt, Equ, LbBsp, Ogd};
use dolbie_core::environment::RotatingStragglerEnvironment;
use dolbie_core::{
    run_episode, Allocation, BanditDolbie, Dolbie, DolbieConfig, Environment, EpisodeOptions,
    EpisodeTrace, LoadBalancer,
};
use dolbie_edge::{EdgeConfig, EdgeScenario};
use dolbie_metrics::Table;
use dolbie_mlsim::{Cluster, ClusterConfig, MlModel};

#[derive(Debug)]
struct Args {
    algorithm: String,
    env: String,
    model: MlModel,
    workers: usize,
    rounds: usize,
    seed: u64,
    alpha: f64,
    track_optimum: bool,
    csv: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            algorithm: "dolbie".into(),
            env: "cluster".into(),
            model: MlModel::ResNet18,
            workers: 30,
            rounds: 100,
            seed: 42,
            alpha: 0.001,
            track_optimum: false,
            csv: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: dolbie_sim [--algorithm equ|ogd|abs|lbbsp|dolbie|bandit|opt]\n\
         \x20                 [--env cluster|edge|rotating] [--model lenet5|resnet18|vgg16]\n\
         \x20                 [--workers N] [--rounds T] [--seed S] [--alpha A]\n\
         \x20                 [--regret] [--csv PATH] [--threads N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage()).clone();
        match flag.as_str() {
            "--algorithm" => args.algorithm = value().to_lowercase(),
            "--env" => args.env = value().to_lowercase(),
            "--model" => {
                args.model = match value().to_lowercase().as_str() {
                    "lenet5" => MlModel::LeNet5,
                    "resnet18" => MlModel::ResNet18,
                    "vgg16" => MlModel::Vgg16,
                    other => {
                        eprintln!("unknown model: {other}");
                        usage();
                    }
                }
            }
            "--workers" => args.workers = value().parse().unwrap_or_else(|_| usage()),
            "--rounds" => args.rounds = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--alpha" => args.alpha = value().parse().unwrap_or_else(|_| usage()),
            "--regret" => args.track_optimum = true,
            "--csv" => args.csv = Some(value()),
            "--threads" => {
                let n: usize = value().parse().unwrap_or_else(|_| usage());
                dolbie_bench::harness::set_threads(n.max(1));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    args
}

/// A cloneable environment selection so clairvoyant OPT can replay it.
#[derive(Clone)]
enum Env {
    Cluster(Box<Cluster>),
    Edge(Box<EdgeScenario>),
    Rotating(RotatingStragglerEnvironment),
}

impl Environment for Env {
    fn num_workers(&self) -> usize {
        match self {
            Env::Cluster(e) => e.num_workers(),
            Env::Edge(e) => e.num_workers(),
            Env::Rotating(e) => e.num_workers(),
        }
    }

    fn reveal(&mut self, round: usize) -> Vec<dolbie_core::cost::DynCost> {
        match self {
            Env::Cluster(e) => e.reveal(round),
            Env::Edge(e) => e.reveal(round),
            Env::Rotating(e) => e.reveal(round),
        }
    }
}

fn build_env(args: &Args) -> Env {
    match args.env.as_str() {
        "cluster" => {
            let mut cfg = ClusterConfig::paper(args.model);
            cfg.num_workers = args.workers;
            Env::Cluster(Box::new(Cluster::sample(cfg, args.seed)))
        }
        "edge" => {
            let mut cfg = EdgeConfig::paper_like();
            cfg.num_servers = args.workers.saturating_sub(1).max(1);
            Env::Edge(Box::new(EdgeScenario::sample(cfg, args.seed)))
        }
        "rotating" => Env::Rotating(RotatingStragglerEnvironment::new(args.workers, 10, 4.0, 1.0)),
        other => {
            eprintln!("unknown environment: {other}");
            usage();
        }
    }
}

fn build_balancer(args: &Args, env: &Env, n: usize) -> Box<dyn LoadBalancer> {
    let config = DolbieConfig::new().with_initial_alpha(args.alpha);
    match args.algorithm.as_str() {
        "equ" => Box::new(Equ::new(n)),
        "ogd" => Box::new(Ogd::new(n, args.alpha)),
        "abs" => Box::new(Abs::new(n, 5)),
        "lbbsp" => Box::new(LbBsp::new(n, 5.0 / 256.0, 5)),
        "dolbie" => Box::new(Dolbie::with_config(Allocation::uniform(n), config)),
        "bandit" => Box::new(BanditDolbie::with_config(Allocation::uniform(n), config)),
        "opt" => Box::new(ClairvoyantOpt::new(env.clone())),
        other => {
            eprintln!("unknown algorithm: {other}");
            usage();
        }
    }
}

fn report(trace: &EpisodeTrace, args: &Args) {
    println!(
        "{} on `{}` ({} workers, {} rounds, seed {})",
        trace.algorithm,
        args.env,
        trace.records[0].allocation.num_workers(),
        args.rounds,
        args.seed
    );
    let costs = trace.global_costs();
    let show = |t: usize| {
        if t < costs.len() {
            println!("  round {t:4}: global cost {:.6}", costs[t]);
        }
    };
    show(0);
    for t in (0..args.rounds).step_by((args.rounds / 10).max(1)).skip(1) {
        show(t);
    }
    show(args.rounds - 1);
    println!("  total cost: {:.6}", trace.total_cost());
    if let Some(regret) = trace.regret() {
        println!(
            "  dynamic regret: {:.6} (path length {:.6})",
            regret.dynamic_regret(),
            regret.path_length()
        );
    }
    if let Some(path) = &args.csv {
        let mut table = Table::new(vec!["round", "global_cost", "straggler"]);
        for r in &trace.records {
            table.push_row(vec![
                r.round.to_string(),
                format!("{:.9}", r.global_cost),
                r.straggler.to_string(),
            ]);
        }
        match table.write_csv(path) {
            Ok(()) => println!("  wrote {path}"),
            Err(e) => eprintln!("  failed to write {path}: {e}"),
        }
    }
}

fn main() {
    let args = parse_args();
    if args.rounds == 0 || args.workers < 2 {
        eprintln!("need at least 1 round and 2 workers");
        usage();
    }
    let env = build_env(&args);
    let n = env.num_workers();
    let mut balancer = build_balancer(&args, &env, n);
    let mut driver = env;
    let options = if args.track_optimum {
        EpisodeOptions::new(args.rounds).with_optimum()
    } else {
        EpisodeOptions::new(args.rounds)
    };
    let trace = run_episode(balancer.as_mut(), &mut driver, options);
    report(&trace, &args);
}
