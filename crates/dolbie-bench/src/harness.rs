//! Deterministic parallel fan-out over independent experiment tasks.
//!
//! Every figure of §VI replays many independent seeded realizations; this
//! module runs them across threads without changing a single output byte.
//! Three properties make that safe:
//!
//! - **Pure tasks.** Each task is a function of its index alone (the index
//!   is the seed, or indexes a precomputed configuration table), so the
//!   execution schedule cannot leak into a result.
//! - **Ordered collection.** Results land in a per-index slot and are
//!   returned in index order, so downstream CSV writing, summary tables and
//!   confidence intervals see exactly the sequential iteration order.
//! - **Work stealing.** Workers claim indices from a shared atomic counter,
//!   so a slow realization (e.g. a pathological cluster sample) does not
//!   idle the other cores the way a static block partition would.
//!
//! The thread count is a process-wide setting (`--threads N` in the
//! binaries): [`set_threads`] pins it, and an unset count resolves to the
//! machine's available parallelism. With one thread [`parallel_map`]
//! degenerates to a plain sequential loop on the calling thread.
//!
//! Only `std` is used — the build environment is offline, so `rayon`-style
//! registries are deliberately out of reach.

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// 0 means "not set": fall back to available parallelism.
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Pins the number of worker threads used by [`parallel_map`].
///
/// `0` resets to the default (the machine's available parallelism); any
/// other value is used as-is. Affects every subsequent experiment in the
/// process.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::SeqCst);
}

/// The number of worker threads [`parallel_map`] will use.
pub fn threads() -> usize {
    match THREADS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Runs `task` for every index in `0..tasks` and returns the results in
/// index order, fanning out over [`threads`] scoped worker threads.
///
/// `task` must derive its result from the index alone (not from any
/// execution-order-dependent state): under that contract the returned
/// vector is identical for every thread count, which is what keeps the
/// experiment CSVs byte-stable.
///
/// # Panics
///
/// Propagates the first observed panic from a worker thread.
pub fn parallel_map<T, F>(tasks: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads().min(tasks);
    if workers <= 1 {
        return (0..tasks).map(task).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks {
                        break;
                    }
                    let result = task(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                })
            })
            .collect();
        for handle in handles {
            if let Err(panic) = handle.join() {
                resume_unwind(panic);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed index stores a result")
        })
        .collect()
}

/// [`parallel_map`] over a slice: runs `task` on every item and returns
/// the results in item order.
pub fn parallel_map_items<I, T, F>(items: &[I], task: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    parallel_map(items.len(), |i| task(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        set_threads(4);
        let out = parallel_map(64, |i| {
            // Stagger completion so later indices often finish first.
            std::thread::sleep(std::time::Duration::from_micros((64 - i as u64) * 10));
            i * i
        });
        set_threads(0);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        set_threads(1);
        let seq = parallel_map(100, |i| (i as f64).sqrt());
        set_threads(4);
        let par = parallel_map(100, |i| (i as f64).sqrt());
        set_threads(0);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_and_tiny_task_counts_work() {
        set_threads(8);
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, |i| i + 1), vec![1]);
        set_threads(0);
    }

    #[test]
    fn items_variant_preserves_order() {
        set_threads(3);
        let items = vec!["a", "bb", "ccc", "dddd"];
        let lens = parallel_map_items(&items, |s| s.len());
        set_threads(0);
        assert_eq!(lens, vec![1, 2, 3, 4]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        set_threads(6);
        let count = AtomicUsize::new(0);
        let out = parallel_map(1000, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        set_threads(0);
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn worker_panic_propagates() {
        set_threads(4);
        let result = std::panic::catch_unwind(|| {
            parallel_map(16, |i| {
                if i == 7 {
                    panic!("task failure");
                }
                i
            })
        });
        set_threads(0);
        assert!(result.is_err());
    }
}
