//! Deterministic parallel fan-out over independent experiment tasks.
//!
//! The harness itself now lives in [`dolbie_core::parallel`], promoted
//! there so a single thread-count setting and scheduling discipline serves
//! both the across-experiment fan-out here and the intra-round chunked
//! passes of the large-N episode engine
//! ([`dolbie_core::ChunkedDolbie`](dolbie_core::engine::ChunkedDolbie)).
//! This module re-exports it under the established `harness::` path so
//! experiment code and the binaries keep reading naturally.

pub use dolbie_core::parallel::{
    parallel_for_each, parallel_map, parallel_map_items, set_threads, threads,
};

#[cfg(test)]
mod tests {
    use super::*;

    /// The bench-side `--threads` knob and the core engine's intra-round
    /// parallelism must share one setting: pinning through this shim is
    /// observed by the core module and vice versa.
    #[test]
    fn thread_setting_is_shared_with_the_core_harness() {
        set_threads(3);
        assert_eq!(dolbie_core::parallel::threads(), 3);
        dolbie_core::parallel::set_threads(5);
        assert_eq!(threads(), 5);
        set_threads(0);
    }

    #[test]
    fn fan_out_still_works_through_the_shim() {
        set_threads(2);
        let out = parallel_map(10, |i| i * 3);
        set_threads(0);
        assert_eq!(out, (0..10).map(|i| i * 3).collect::<Vec<_>>());
    }
}
