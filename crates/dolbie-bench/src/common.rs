//! Shared plumbing for the figure-regeneration experiments.

use dolbie_baselines::paper_suite;
use dolbie_core::LoadBalancer;
use dolbie_metrics::{plot, Table};
use dolbie_mlsim::{
    run_training, Cluster, ClusterConfig, MlModel, TrainingConfig, TrainingOutcome,
};
use std::path::{Path, PathBuf};

/// The algorithm display order used throughout the paper's figures.
pub const ALGORITHM_ORDER: [&str; 6] = ["EQU", "OGD", "ABS", "LB-BSP", "DOLBIE", "OPT"];

/// The workspace root (two levels above this crate's manifest), or the
/// current directory when run elsewhere.
pub fn workspace_root() -> PathBuf {
    // When run via `cargo run -p dolbie-bench`, CARGO_MANIFEST_DIR points
    // at crates/dolbie-bench; the workspace root is two levels up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Where experiment CSVs are written (`results/` under the workspace root,
/// or the current directory when run elsewhere).
pub fn results_dir() -> PathBuf {
    workspace_root().join("results")
}

/// Samples the paper's cluster (`N = 30`, `B = 256`) for `model`.
pub fn paper_cluster(model: MlModel, seed: u64) -> Cluster {
    Cluster::sample(ClusterConfig::paper(model), seed)
}

/// The §VI comparison suite for a given cluster realization.
pub fn cluster_suite(cluster: &Cluster) -> Vec<Box<dyn LoadBalancer>> {
    paper_suite(dolbie_core::Environment::num_workers(cluster), cluster.clone())
}

/// Runs the whole suite on one cluster realization, returning outcomes in
/// [`ALGORITHM_ORDER`]. The six algorithms run in parallel (each gets its
/// own copy of the cluster, so this is exactly the sequential computation
/// fanned out).
pub fn run_suite(cluster: &Cluster, config: TrainingConfig) -> Vec<TrainingOutcome> {
    crate::harness::parallel_map(ALGORITHM_ORDER.len(), |k| {
        let mut balancer = cluster_suite(cluster).swap_remove(k);
        run_training(balancer.as_mut(), cluster.clone(), config)
    })
}

/// Writes `table` to `results/<name>.csv` and reports the path on stdout.
pub fn emit_csv(table: &Table, name: &str) {
    let path = results_dir().join(format!("{name}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  failed to write {}: {e}", path.display()),
    }
}

/// Writes an SVG chart to `results/<name>.svg` and reports the path.
pub fn emit_svg(name: &str, config: &plot::PlotConfig, series: &[plot::Series]) {
    let path = results_dir().join(format!("{name}.svg"));
    match plot::write_svg(&path, config, series) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  failed to write {}: {e}", path.display()),
    }
}

/// Percentage reduction of `ours` relative to `baseline`.
pub fn reduction_pct(baseline: f64, ours: f64) -> f64 {
    if baseline <= 0.0 {
        return 0.0;
    }
    (baseline - ours) / baseline * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_order_matches_constant() {
        let cluster = paper_cluster(MlModel::ResNet18, 1);
        let suite = cluster_suite(&cluster);
        let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        assert_eq!(names, ALGORITHM_ORDER);
    }

    #[test]
    fn run_suite_produces_one_outcome_per_algorithm() {
        let mut cfg = ClusterConfig::paper(MlModel::LeNet5);
        cfg.num_workers = 4;
        let cluster = Cluster::sample(cfg, 2);
        let outcomes = run_suite(&cluster, TrainingConfig::latency_only(5));
        assert_eq!(outcomes.len(), 6);
        for (o, name) in outcomes.iter().zip(ALGORITHM_ORDER) {
            assert_eq!(o.algorithm, name);
            assert_eq!(o.rounds.len(), 5);
        }
    }

    #[test]
    fn reduction_pct_hand_check() {
        assert_eq!(reduction_pct(2.0, 1.0), 50.0);
        assert_eq!(reduction_pct(0.0, 1.0), 0.0);
    }

    #[test]
    fn results_dir_is_workspace_level() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
    }
}
