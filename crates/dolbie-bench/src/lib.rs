//! # dolbie-bench
//!
//! The benchmark harness of the DOLBIE reproduction. Two entry points:
//!
//! - `cargo run --release -p dolbie-bench --bin paper_figures -- <target>`
//!   regenerates the paper's figures (fig3..fig11) and the extension
//!   experiments (regret, comms, edge, ablation), printing the series the
//!   paper reports and writing CSVs to `results/`;
//! - `cargo bench -p dolbie-bench` runs the Criterion microbenchmarks
//!   (decision-update overhead, simplex projection, monotone inverse,
//!   protocol simulation throughput).
//!
//! The experiment-to-figure mapping lives in DESIGN.md §5; measured-vs-
//! paper outcomes are recorded in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod experiments;
pub mod harness;
