//! Temporal dynamics of worker capacity and network rate.
//!
//! The paper motivates *online* optimization with unpredictable
//! fluctuations in processing power and data rate ("the computation and
//! communication capabilities of the workers may fluctuate over time").
//! This module provides the stochastic processes that produce those
//! fluctuations in the simulator:
//!
//! - [`Ar1Fluctuation`] — a stationary log-normal AR(1) multiplier,
//!   modelling smooth capacity drift (background load, DVFS, congestion);
//! - [`SpikeProcess`] — occasional multiplicative contention spikes
//!   (co-located jobs stealing the device).
//!
//! Both are seeded and deterministic so clairvoyant OPT can replay them.
//! Normal deviates come from an in-crate Box–Muller transform to avoid an
//! extra dependency.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a standard normal deviate via the Box–Muller transform.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A stationary log-normal AR(1) multiplicative process:
/// `z_{t+1} = ρ z_t + σ ε_t`, multiplier `m_t = exp(z_t)`.
///
/// With `|ρ| < 1` the log-state is stationary with variance
/// `σ²/(1 − ρ²)`, so multipliers hover around 1 with temporally correlated
/// excursions — a standard model for slowly varying capacity.
///
/// # Examples
///
/// ```
/// use dolbie_mlsim::fluctuation::Ar1Fluctuation;
///
/// let mut f = Ar1Fluctuation::new(0.8, 0.1, 7);
/// let m = f.next_multiplier();
/// assert!(m > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ar1Fluctuation {
    rho: f64,
    sigma: f64,
    state: f64,
    rng: StdRng,
}

impl Ar1Fluctuation {
    /// Creates the process with autocorrelation `rho` and innovation
    /// deviation `sigma`, seeded deterministically. The initial state is
    /// drawn from the stationary distribution so there is no burn-in.
    ///
    /// # Panics
    ///
    /// Panics if `|rho| >= 1` or `sigma < 0`.
    pub fn new(rho: f64, sigma: f64, seed: u64) -> Self {
        assert!(rho.abs() < 1.0, "AR(1) requires |rho| < 1 for stationarity");
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        let stationary_sd = if sigma == 0.0 { 0.0 } else { sigma / (1.0 - rho * rho).sqrt() };
        let state = stationary_sd * standard_normal(&mut rng);
        Self { rho, sigma, state, rng }
    }

    /// A frozen process that always returns multiplier 1 (for tests and
    /// noise-free ablations).
    pub fn frozen(seed: u64) -> Self {
        Self::new(0.0, 0.0, seed)
    }

    /// Advances one round and returns the multiplier `exp(z_t)`.
    pub fn next_multiplier(&mut self) -> f64 {
        let current = self.state.exp();
        self.state = self.rho * self.state + self.sigma * standard_normal(&mut self.rng);
        current
    }
}

/// Occasional multiplicative slowdowns: with probability `probability` per
/// round, capacity is divided by a factor drawn uniformly from
/// `[1, max_factor]`.
#[derive(Debug, Clone)]
pub struct SpikeProcess {
    probability: f64,
    max_factor: f64,
    rng: StdRng,
}

impl SpikeProcess {
    /// Creates the spike process.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]` or `max_factor < 1`.
    pub fn new(probability: f64, max_factor: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&probability), "probability must be in [0, 1]");
        assert!(max_factor >= 1.0 && max_factor.is_finite(), "max_factor must be >= 1");
        Self { probability, max_factor, rng: StdRng::seed_from_u64(seed) }
    }

    /// A process that never spikes.
    pub fn never(seed: u64) -> Self {
        Self::new(0.0, 1.0, seed)
    }

    /// Advances one round, returning the slowdown divisor (1.0 = no spike).
    pub fn next_divisor(&mut self) -> f64 {
        let fire: f64 = self.rng.gen_range(0.0..1.0);
        if fire < self.probability && self.max_factor > 1.0 {
            self.rng.gen_range(1.0..self.max_factor)
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_muller_has_roughly_standard_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn ar1_is_deterministic_under_seed() {
        let mut a = Ar1Fluctuation::new(0.8, 0.1, 99);
        let mut b = Ar1Fluctuation::new(0.8, 0.1, 99);
        for _ in 0..50 {
            assert_eq!(a.next_multiplier(), b.next_multiplier());
        }
    }

    #[test]
    fn ar1_clone_replays() {
        let mut a = Ar1Fluctuation::new(0.7, 0.2, 5);
        // Advance, then clone: the clone continues identically.
        for _ in 0..10 {
            a.next_multiplier();
        }
        let mut b = a.clone();
        for _ in 0..20 {
            assert_eq!(a.next_multiplier(), b.next_multiplier());
        }
    }

    #[test]
    fn ar1_multipliers_hover_around_one() {
        let mut f = Ar1Fluctuation::new(0.8, 0.1, 3);
        let n = 5_000;
        let mean_log: f64 = (0..n).map(|_| f.next_multiplier().ln()).sum::<f64>() / n as f64;
        assert!(mean_log.abs() < 0.05, "log-multipliers should center near 0: {mean_log}");
    }

    #[test]
    fn ar1_is_temporally_correlated() {
        let mut f = Ar1Fluctuation::new(0.95, 0.05, 11);
        let xs: Vec<f64> = (0..2_000).map(|_| f.next_multiplier().ln()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let num: f64 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
        let den: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
        let lag1 = num / den;
        assert!(lag1 > 0.7, "lag-1 autocorrelation should be high: {lag1}");
    }

    #[test]
    fn frozen_is_exactly_one() {
        let mut f = Ar1Fluctuation::frozen(0);
        for _ in 0..10 {
            assert_eq!(f.next_multiplier(), 1.0);
        }
    }

    #[test]
    fn spikes_respect_probability_and_range() {
        let mut s = SpikeProcess::new(0.2, 3.0, 17);
        let n = 10_000;
        let mut fired = 0;
        for _ in 0..n {
            let d = s.next_divisor();
            assert!((1.0..=3.0).contains(&d));
            if d > 1.0 {
                fired += 1;
            }
        }
        let rate = fired as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "spike rate {rate}");
    }

    #[test]
    fn never_spikes() {
        let mut s = SpikeProcess::never(1);
        for _ in 0..100 {
            assert_eq!(s.next_divisor(), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "stationarity")]
    fn unit_root_is_rejected() {
        let _ = Ar1Fluctuation::new(1.0, 0.1, 0);
    }
}
