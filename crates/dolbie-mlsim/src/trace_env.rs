//! Trace-driven environments: replay *measured* per-round worker speeds
//! and network rates instead of sampling a synthetic model.
//!
//! The paper's experiments "are run over the actual processing speed and
//! the parameter transfer time among processors in each round" — i.e. a
//! measurement trace. Users with their own cluster telemetry can feed it
//! in here (programmatically or as CSV) and drive every algorithm in this
//! workspace over it.

use crate::model_profile::MlModel;
use dolbie_core::cost::{DynCost, LatencyCost};
use dolbie_core::Environment;

/// An [`Environment`] replaying recorded `(speed, rate)` measurements.
///
/// Round `t` uses row `t` of the trace; when the trace is shorter than the
/// episode it wraps around (round-robin replay), which keeps long
/// experiments runnable on short traces.
///
/// # Examples
///
/// ```
/// use dolbie_mlsim::{MlModel, TraceEnvironment};
/// use dolbie_core::Environment;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let speeds = vec![vec![1000.0, 120.0], vec![900.0, 130.0]];
/// let rates = vec![vec![1e9, 5e8], vec![1.1e9, 6e8]];
/// let mut env = TraceEnvironment::new(MlModel::ResNet18, 256.0, speeds, rates)?;
/// assert_eq!(env.num_workers(), 2);
/// let costs = env.reveal(0);
/// assert_eq!(costs.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TraceEnvironment {
    model: MlModel,
    global_batch: f64,
    speeds: Vec<Vec<f64>>,
    rates: Vec<Vec<f64>>,
}

/// Error constructing a [`TraceEnvironment`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The trace has no rounds.
    Empty,
    /// A row's width differs from the first row's.
    RaggedRows {
        /// The offending round index.
        round: usize,
    },
    /// The speeds and rates traces disagree in shape.
    ShapeMismatch,
    /// A measurement was non-positive or non-finite.
    BadMeasurement {
        /// The offending round index.
        round: usize,
        /// The offending worker index.
        worker: usize,
    },
    /// A CSV cell failed to parse as a number.
    Parse {
        /// The offending (1-based) CSV line.
        line: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace has no rounds"),
            TraceError::RaggedRows { round } => {
                write!(f, "round {round} has a different worker count")
            }
            TraceError::ShapeMismatch => write!(f, "speed and rate traces differ in shape"),
            TraceError::BadMeasurement { round, worker } => {
                write!(f, "non-positive measurement at round {round}, worker {worker}")
            }
            TraceError::Parse { line } => write!(f, "unparseable number on CSV line {line}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl TraceEnvironment {
    /// Builds the environment from in-memory traces:
    /// `speeds[t][i]` = samples/second of worker `i` in round `t`,
    /// `rates[t][i]` = network bytes/second.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] for empty, ragged, mismatched, or
    /// non-positive traces.
    pub fn new(
        model: MlModel,
        global_batch: f64,
        speeds: Vec<Vec<f64>>,
        rates: Vec<Vec<f64>>,
    ) -> Result<Self, TraceError> {
        if speeds.is_empty() || speeds[0].is_empty() {
            return Err(TraceError::Empty);
        }
        let n = speeds[0].len();
        if rates.len() != speeds.len() {
            return Err(TraceError::ShapeMismatch);
        }
        for (t, (srow, rrow)) in speeds.iter().zip(&rates).enumerate() {
            if srow.len() != n {
                return Err(TraceError::RaggedRows { round: t });
            }
            if rrow.len() != n {
                return Err(TraceError::ShapeMismatch);
            }
            for (i, (&s, &r)) in srow.iter().zip(rrow).enumerate() {
                if !(s.is_finite() && s > 0.0 && r.is_finite() && r > 0.0) {
                    return Err(TraceError::BadMeasurement { round: t, worker: i });
                }
            }
        }
        assert!(global_batch > 0.0, "global batch must be positive");
        Ok(Self { model, global_batch, speeds, rates })
    }

    /// Parses a trace from CSV text with rows
    /// `round, speed_0, .., speed_{N-1}, rate_0, .., rate_{N-1}`
    /// (header lines starting with `#` or a non-numeric first cell are
    /// skipped).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on malformed numbers or shapes.
    pub fn from_csv(model: MlModel, global_batch: f64, csv: &str) -> Result<Self, TraceError> {
        let mut speeds = Vec::new();
        let mut rates = Vec::new();
        for (lineno, line) in csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let cells: Vec<&str> = line.split(',').map(str::trim).collect();
            if cells.first().is_some_and(|c| c.parse::<f64>().is_err()) {
                // Header row.
                continue;
            }
            if cells.len() < 3 || !(cells.len() - 1).is_multiple_of(2) {
                return Err(TraceError::Parse { line: lineno + 1 });
            }
            let n = (cells.len() - 1) / 2;
            let parse = |cell: &str| -> Result<f64, TraceError> {
                cell.parse::<f64>().map_err(|_| TraceError::Parse { line: lineno + 1 })
            };
            let mut srow = Vec::with_capacity(n);
            let mut rrow = Vec::with_capacity(n);
            for k in 0..n {
                srow.push(parse(cells[1 + k])?);
            }
            for k in 0..n {
                rrow.push(parse(cells[1 + n + k])?);
            }
            speeds.push(srow);
            rates.push(rrow);
        }
        Self::new(model, global_batch, speeds, rates)
    }

    /// Number of recorded rounds before the replay wraps.
    pub fn trace_len(&self) -> usize {
        self.speeds.len()
    }

    /// The model whose transfer size prices the communication term.
    pub fn model(&self) -> MlModel {
        self.model
    }
}

impl Environment for TraceEnvironment {
    fn num_workers(&self) -> usize {
        self.speeds[0].len()
    }

    fn reveal(&mut self, round: usize) -> Vec<DynCost> {
        let row = round % self.speeds.len();
        let transfer = self.model.transfer_bytes();
        self.speeds[row]
            .iter()
            .zip(&self.rates[row])
            .map(|(&speed, &rate)| {
                Box::new(LatencyCost::new(self.global_batch, speed, transfer / rate)) as DynCost
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dolbie_core::cost::CostFunction;

    fn small() -> TraceEnvironment {
        TraceEnvironment::new(
            MlModel::ResNet18,
            256.0,
            vec![vec![1000.0, 100.0], vec![800.0, 120.0]],
            vec![vec![1e9, 1e9], vec![1e9, 1e9]],
        )
        .unwrap()
    }

    #[test]
    fn replays_rows_and_wraps() {
        let mut env = small();
        assert_eq!(env.trace_len(), 2);
        assert_eq!(env.model(), MlModel::ResNet18);
        let r0 = env.reveal(0);
        let r2 = env.reveal(2); // wraps to row 0
        assert_eq!(r0[0].eval(0.5), r2[0].eval(0.5));
        let r1 = env.reveal(1);
        assert_ne!(r0[0].eval(0.5), r1[0].eval(0.5));
    }

    #[test]
    fn costs_match_the_latency_model() {
        let mut env = small();
        let costs = env.reveal(0);
        // Worker 0: 0.5 * 256 / 1000 + transfer/rate.
        let expected = 0.5 * 256.0 / 1000.0 + MlModel::ResNet18.transfer_bytes() / 1e9;
        assert!((costs[0].eval(0.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn csv_round_trip() {
        let csv = "\
# round, speeds..., rates...
round,s0,s1,r0,r1
0, 1000, 100, 1e9, 5e8
1, 900, 110, 1.1e9, 6e8
";
        let mut env = TraceEnvironment::from_csv(MlModel::LeNet5, 256.0, csv).unwrap();
        assert_eq!(env.num_workers(), 2);
        assert_eq!(env.trace_len(), 2);
        let costs = env.reveal(1);
        let expected = 0.5 * 256.0 / 900.0 + MlModel::LeNet5.transfer_bytes() / 1.1e9;
        assert!((costs[0].eval(0.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn csv_errors() {
        assert_eq!(
            TraceEnvironment::from_csv(MlModel::LeNet5, 256.0, "0, 1\n").unwrap_err(),
            TraceError::Parse { line: 1 }
        );
        assert_eq!(
            TraceEnvironment::from_csv(MlModel::LeNet5, 256.0, "0, 1, 2, 3\n").unwrap_err(),
            TraceError::Parse { line: 1 },
            "even cell counts after the round column are malformed"
        );
        assert_eq!(
            TraceEnvironment::from_csv(MlModel::LeNet5, 256.0, "0, 1, x, 3, 4\n").unwrap_err(),
            TraceError::Parse { line: 1 }
        );
        assert_eq!(
            TraceEnvironment::from_csv(MlModel::LeNet5, 256.0, "# only comments\n").unwrap_err(),
            TraceError::Empty
        );
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            TraceEnvironment::new(MlModel::LeNet5, 1.0, vec![], vec![]).unwrap_err(),
            TraceError::Empty
        );
        assert_eq!(
            TraceEnvironment::new(
                MlModel::LeNet5,
                1.0,
                vec![vec![1.0], vec![1.0, 2.0]],
                vec![vec![1.0], vec![1.0, 2.0]],
            )
            .unwrap_err(),
            TraceError::RaggedRows { round: 1 }
        );
        assert_eq!(
            TraceEnvironment::new(MlModel::LeNet5, 1.0, vec![vec![1.0]], vec![]).unwrap_err(),
            TraceError::ShapeMismatch
        );
        assert_eq!(
            TraceEnvironment::new(MlModel::LeNet5, 1.0, vec![vec![0.0]], vec![vec![1.0]])
                .unwrap_err(),
            TraceError::BadMeasurement { round: 0, worker: 0 }
        );
        assert!(!TraceError::Empty.to_string().is_empty());
    }

    #[test]
    fn dolbie_runs_on_a_trace() {
        use dolbie_core::{run_episode, Dolbie, EpisodeOptions};
        let mut env = small();
        let mut dolbie = Dolbie::new(2);
        let trace = run_episode(&mut dolbie, &mut env, EpisodeOptions::new(40));
        let first = trace.records[0].global_cost;
        let last = trace.records[39].global_cost;
        assert!(last < first, "DOLBIE should improve on the replayed trace");
    }
}
