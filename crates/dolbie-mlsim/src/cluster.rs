//! The simulated heterogeneous training cluster.
//!
//! [`Cluster`] reproduces the paper's experimental setup (§VI-B): `N = 30`
//! workers, each equipped with one of five processors uniformly at random,
//! cooperatively training a model with global batch size `B = 256`. Each
//! round it reveals per-worker latency cost functions
//! `f_{i,t}(b) = b·B/γ_{i,t} + d/φ_{i,t}` where the processing speed
//! `γ_{i,t}` and the data rate `φ_{i,t}` fluctuate via seeded AR(1)
//! processes plus occasional contention spikes.
//!
//! `Cluster` is `Clone` and fully deterministic given its seed, which is
//! what lets the clairvoyant OPT baseline replay the future.

use crate::fluctuation::{Ar1Fluctuation, SpikeProcess};
use crate::hardware::Processor;
use crate::model_profile::MlModel;
use dolbie_core::cost::{DynCost, LatencyCost};
use dolbie_core::Environment;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunable parameters of the cluster simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of workers `N` (the paper uses 30).
    pub num_workers: usize,
    /// The model being trained (selects throughputs and transfer size).
    pub model: MlModel,
    /// Global batch size `B` in samples (the paper uses 256).
    pub global_batch: f64,
    /// AR(1) autocorrelation of capacity/rate fluctuations.
    pub fluctuation_rho: f64,
    /// AR(1) innovation deviation.
    pub fluctuation_sigma: f64,
    /// Per-round probability of a contention spike on each worker.
    pub spike_probability: f64,
    /// Maximum spike slowdown factor.
    pub spike_max_factor: f64,
    /// Range of per-worker nominal network rates, bytes/second.
    pub rate_range: (f64, f64),
}

impl ClusterConfig {
    /// The paper's setup for `model`: 30 workers, `B = 256`, moderate
    /// fluctuations, cluster-grade interconnects (16–160 Gb/s, so compute
    /// heterogeneity dominates per-round latency as in the paper's
    /// testbed, while communication stays visible for the larger models).
    pub fn paper(model: MlModel) -> Self {
        Self {
            num_workers: 30,
            model,
            global_batch: 256.0,
            fluctuation_rho: 0.8,
            fluctuation_sigma: 0.08,
            spike_probability: 0.03,
            spike_max_factor: 2.5,
            rate_range: (2e9, 2e10),
        }
    }

    /// A smaller, noise-free configuration for fast deterministic tests.
    pub fn quiet(model: MlModel, num_workers: usize) -> Self {
        Self {
            num_workers,
            model,
            global_batch: 256.0,
            fluctuation_rho: 0.0,
            fluctuation_sigma: 0.0,
            spike_probability: 0.0,
            spike_max_factor: 1.0,
            rate_range: (5e8, 5e8),
        }
    }
}

#[derive(Debug, Clone)]
struct WorkerSim {
    processor: Processor,
    base_throughput: f64,
    base_rate: f64,
    compute_fluctuation: Ar1Fluctuation,
    rate_fluctuation: Ar1Fluctuation,
    spikes: SpikeProcess,
}

/// The simulated cluster: an [`Environment`] revealing one
/// [`LatencyCost`] per worker per round.
///
/// # Examples
///
/// ```
/// use dolbie_mlsim::{Cluster, ClusterConfig, MlModel};
/// use dolbie_core::Environment;
///
/// let mut cluster = Cluster::sample(ClusterConfig::paper(MlModel::ResNet18), 42);
/// assert_eq!(cluster.num_workers(), 30);
/// let costs = cluster.reveal(0);
/// assert_eq!(costs.len(), 30);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
    workers: Vec<WorkerSim>,
}

impl Cluster {
    /// Samples a cluster: each worker draws a processor uniformly at random
    /// (the paper's assignment), a nominal network rate from the configured
    /// range, and independent seeded fluctuation processes.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_workers == 0` or the rate range is invalid.
    pub fn sample(config: ClusterConfig, seed: u64) -> Self {
        assert!(config.num_workers > 0, "at least one worker required");
        let (lo, hi) = config.rate_range;
        assert!(lo > 0.0 && hi >= lo, "invalid network rate range");
        let mut rng = StdRng::seed_from_u64(seed);
        let workers = (0..config.num_workers)
            .map(|i| {
                let processor = Processor::ALL[rng.gen_range(0..Processor::ALL.len())];
                let base_rate = if hi > lo { rng.gen_range(lo..hi) } else { lo };
                let sub = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
                WorkerSim {
                    processor,
                    base_throughput: processor.base_throughput(config.model),
                    base_rate,
                    compute_fluctuation: Ar1Fluctuation::new(
                        config.fluctuation_rho,
                        config.fluctuation_sigma,
                        sub,
                    ),
                    rate_fluctuation: Ar1Fluctuation::new(
                        config.fluctuation_rho,
                        config.fluctuation_sigma,
                        sub ^ 0xDEAD_BEEF,
                    ),
                    spikes: SpikeProcess::new(
                        config.spike_probability,
                        config.spike_max_factor,
                        sub ^ 0xFACE_FEED,
                    ),
                }
            })
            .collect();
        Self { config, workers }
    }

    /// The configuration the cluster was sampled with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The processor assigned to each worker.
    pub fn processors(&self) -> Vec<Processor> {
        self.workers.iter().map(|w| w.processor).collect()
    }

    /// Advances every worker's stochastic processes by one round and
    /// returns the revealed latency costs, strongly typed so callers can
    /// decompose processing vs. communication time (Fig. 11).
    pub fn reveal_typed(&mut self, _round: usize) -> Vec<LatencyCost> {
        let b = self.config.global_batch;
        let transfer = self.config.model.transfer_bytes();
        self.workers
            .iter_mut()
            .map(|w| {
                let speed = (w.base_throughput * w.compute_fluctuation.next_multiplier()
                    / w.spikes.next_divisor())
                .max(1e-6);
                let rate = (w.base_rate * w.rate_fluctuation.next_multiplier()).max(1.0);
                LatencyCost::new(b, speed, transfer / rate)
            })
            .collect()
    }
}

impl Environment for Cluster {
    fn num_workers(&self) -> usize {
        self.workers.len()
    }

    fn reveal(&mut self, round: usize) -> Vec<DynCost> {
        self.reveal_typed(round).into_iter().map(|c| Box::new(c) as DynCost).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dolbie_core::cost::CostFunction;

    #[test]
    fn sampling_is_deterministic() {
        let mut a = Cluster::sample(ClusterConfig::paper(MlModel::ResNet18), 7);
        let mut b = Cluster::sample(ClusterConfig::paper(MlModel::ResNet18), 7);
        assert_eq!(a.processors(), b.processors());
        for t in 0..5 {
            let ca = a.reveal_typed(t);
            let cb = b.reveal_typed(t);
            for (x, y) in ca.iter().zip(&cb) {
                assert_eq!(x.speed(), y.speed());
                assert_eq!(x.comm_time(), y.comm_time());
            }
        }
    }

    #[test]
    fn clone_replays_the_future() {
        let mut a = Cluster::sample(ClusterConfig::paper(MlModel::Vgg16), 3);
        for t in 0..4 {
            a.reveal_typed(t);
        }
        let mut b = a.clone();
        for t in 4..10 {
            let ca = a.reveal_typed(t);
            let cb = b.reveal_typed(t);
            for (x, y) in ca.iter().zip(&cb) {
                assert_eq!(x.speed(), y.speed());
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Cluster::sample(ClusterConfig::paper(MlModel::ResNet18), 1);
        let b = Cluster::sample(ClusterConfig::paper(MlModel::ResNet18), 2);
        assert_ne!(a.processors(), b.processors());
    }

    #[test]
    fn quiet_config_is_noise_free() {
        let mut c = Cluster::sample(ClusterConfig::quiet(MlModel::LeNet5, 4), 5);
        let first = c.reveal_typed(0);
        let later = c.reveal_typed(1);
        for (a, b) in first.iter().zip(&later) {
            assert_eq!(a.speed(), b.speed(), "no fluctuation in quiet mode");
            assert_eq!(a.comm_time(), b.comm_time());
        }
    }

    #[test]
    fn costs_reflect_model_scale() {
        let mut small = Cluster::sample(ClusterConfig::quiet(MlModel::LeNet5, 6), 11);
        let mut large = Cluster::sample(ClusterConfig::quiet(MlModel::Vgg16, 6), 11);
        // Same seed => same processor assignment; VGG must be uniformly
        // slower at the full batch.
        assert_eq!(small.processors(), large.processors());
        let cs = small.reveal_typed(0);
        let cl = large.reveal_typed(0);
        for (s, l) in cs.iter().zip(&cl) {
            assert!(l.eval(1.0) > s.eval(1.0));
            assert!(l.comm_time() > s.comm_time());
        }
    }

    #[test]
    fn environment_impl_matches_typed() {
        let mut a = Cluster::sample(ClusterConfig::paper(MlModel::ResNet18), 21);
        let mut b = a.clone();
        let typed = a.reveal_typed(0);
        let boxed = b.reveal(0);
        for (t, d) in typed.iter().zip(&boxed) {
            assert_eq!(t.eval(0.3), d.eval(0.3));
        }
        assert_eq!(a.num_workers(), 30);
    }

    #[test]
    fn fluctuations_move_costs_over_time() {
        let mut c = Cluster::sample(ClusterConfig::paper(MlModel::ResNet18), 9);
        let a = c.reveal_typed(0);
        let b = c.reveal_typed(1);
        let moved = a.iter().zip(&b).filter(|(x, y)| x.speed() != y.speed()).count();
        assert!(moved > 20, "most workers should fluctuate round to round");
    }
}
