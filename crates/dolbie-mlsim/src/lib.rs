//! # dolbie-mlsim
//!
//! The distributed-ML evaluation substrate of the DOLBIE reproduction
//! (paper §VI): everything needed to regenerate Figs. 3–11 without the
//! authors' GPU testbed or CIFAR-10.
//!
//! - [`hardware`] — the five-processor pool (V100, P100, T4, Xeon Gold
//!   6238, E5-2683 v4) as a calibrated throughput table;
//! - [`model_profile`] — LeNet5 / ResNet18 / VGG16 cost profiles
//!   (parameter counts → communication bytes, throughput rows → compute);
//! - [`fluctuation`] — seeded AR(1) capacity drift and contention spikes;
//! - [`cluster`] — the 30-worker sampled cluster as a replayable
//!   [`Environment`](dolbie_core::Environment);
//! - [`nn`] + [`data`] — a from-scratch MLP trained by real SGD on a
//!   synthetic 10-class mixture (the genuine learner behind the accuracy
//!   curves);
//! - [`training`] — the coupled batch-size-tuning + learning loop of the
//!   paper's Fig. 2, with utilization and overhead accounting;
//! - [`trace_env`] — replay of *measured* per-round speed/rate traces
//!   (programmatic or CSV), as the paper's own experiments do.
//!
//! Every substitution relative to the paper's physical testbed is recorded
//! in the repository's DESIGN.md §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod data;
pub mod fluctuation;
pub mod hardware;
pub mod model_profile;
pub mod nn;
pub mod trace_env;
pub mod training;

pub use cluster::{Cluster, ClusterConfig};
pub use data::{generate_mixture, Dataset, MixtureConfig};
pub use hardware::Processor;
pub use model_profile::MlModel;
pub use trace_env::{TraceEnvironment, TraceError};
pub use training::{run_training, TrainingConfig, TrainingOutcome, TrainingRound};
