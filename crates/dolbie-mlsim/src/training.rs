//! The integrated distributed-training loop of Fig. 2.
//!
//! Each round couples a batch-size-tuning phase (the load balancer) with a
//! learning phase (the SGD trainer): the balancer's allocation decides the
//! per-worker batch fractions, the cluster model produces the per-worker
//! latencies those fractions incur, and the trainer performs the round's
//! synchronous SGD step. Because synchronous data-parallel SGD aggregates
//! the same global gradient regardless of how the batch is partitioned,
//! accuracy-vs-*round* is identical across balancers — the figures differ
//! through accuracy-vs-*wall-clock*, which is exactly the effect the paper
//! measures.

use crate::cluster::Cluster;
use crate::data::{generate_mixture, Dataset, MixtureConfig};
use crate::hardware::Processor;
use crate::nn::Mlp;
use dolbie_core::cost::{CostFunction, DynCost};
use dolbie_core::{LoadBalancer, Observation};
use dolbie_metrics::{OverheadTimer, UtilizationTracker};

/// Configuration of the learning phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// Training rounds `T`.
    pub rounds: usize,
    /// Hidden width of the proxy MLP.
    pub hidden: usize,
    /// SGD learning rate (the paper uses 0.1 for its models; the proxy
    /// MLP is tuned so the 95%-training-accuracy crossing lands around
    /// round 120–140, inside the horizon where the balancers have fully
    /// differentiated — mirroring the paper's 100-epoch runs).
    pub learning_rate: f64,
    /// Training-set size.
    pub train_size: usize,
    /// Mixture shape.
    pub mixture: MixtureConfig,
    /// Seed for data generation and model initialization.
    pub seed: u64,
    /// Whether to actually run SGD (disable for latency-only experiments
    /// such as Figs. 3–5, where training adds nothing).
    pub train_model: bool,
}

impl TrainingConfig {
    /// The defaults used across the figure reproductions.
    pub fn paper_like(rounds: usize) -> Self {
        Self {
            rounds,
            hidden: 48,
            learning_rate: 0.04,
            train_size: 4096,
            mixture: MixtureConfig::cifar_like(),
            seed: 1234,
            train_model: true,
        }
    }

    /// Latency-only variant (no SGD).
    pub fn latency_only(rounds: usize) -> Self {
        let mut cfg = Self::paper_like(rounds);
        cfg.train_model = false;
        cfg
    }
}

/// Everything recorded about one training round.
#[derive(Debug, Clone)]
pub struct TrainingRound {
    /// Round index.
    pub round: usize,
    /// Batch fraction per worker (`b_{i,t}`).
    pub batch_fractions: Vec<f64>,
    /// Per-worker latency `l_{i,t}` in seconds.
    pub worker_latencies: Vec<f64>,
    /// The round's global latency `l_t` (the per-round training time).
    pub global_latency: f64,
    /// The straggler.
    pub straggler: usize,
    /// Cumulative wall-clock at the *end* of this round.
    pub wall_clock: f64,
    /// Training accuracy measured after this round's SGD step (if
    /// training is enabled).
    pub train_accuracy: Option<f64>,
}

/// The outcome of one full training run under one balancer.
#[derive(Debug, Clone)]
pub struct TrainingOutcome {
    /// The balancer's display name.
    pub algorithm: String,
    /// Per-round records.
    pub rounds: Vec<TrainingRound>,
    /// The processor assigned to each worker.
    pub processors: Vec<Processor>,
    /// Computation / communication / waiting decomposition per worker.
    pub utilization: UtilizationTracker,
    /// Wall-clock of each balancer update, in microseconds (the Fig. 11
    /// "algorithm run time" panel).
    pub overhead_micros: Vec<f64>,
}

impl TrainingOutcome {
    /// Total wall-clock of the run.
    pub fn total_wall_clock(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.wall_clock)
    }

    /// The per-round global latencies.
    pub fn latencies(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.global_latency).collect()
    }

    /// First wall-clock time at which training accuracy reached `target`,
    /// if it ever did — the "time to 95% training accuracy" metric of
    /// Figs. 6–8.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.rounds
            .iter()
            .find(|r| r.train_accuracy.is_some_and(|a| a >= target))
            .map(|r| r.wall_clock)
    }
}

/// Runs the coupled tuning + learning loop of Fig. 2.
///
/// The caller supplies the cluster (one fresh copy per balancer so every
/// algorithm faces the *same* realization of processor assignments and
/// fluctuations) and the balancer. Training data, model initialization and
/// batching are seeded identically, so accuracy differences across
/// balancers are exactly zero per round — as in real synchronous SGD.
///
/// # Panics
///
/// Panics if balancer and cluster disagree on the worker count.
pub fn run_training(
    balancer: &mut dyn LoadBalancer,
    mut cluster: Cluster,
    config: TrainingConfig,
) -> TrainingOutcome {
    let n = dolbie_core::Environment::num_workers(&cluster);
    assert_eq!(
        balancer.allocation().num_workers(),
        n,
        "balancer and cluster must agree on the worker count"
    );
    let batch_size = cluster.config().global_batch as usize;
    let (dataset, mut model): (Option<Dataset>, Option<Mlp>) = if config.train_model {
        let data = generate_mixture(config.mixture, config.train_size, config.seed);
        let mlp = Mlp::new(data.dim(), config.hidden, data.num_classes(), config.seed ^ 0xA5A5);
        (Some(data), Some(mlp))
    } else {
        (None, None)
    };

    let mut utilization = UtilizationTracker::new(n);
    let mut timer = OverheadTimer::new();
    let mut rounds = Vec::with_capacity(config.rounds);
    let mut wall_clock = 0.0;
    let mut cursor = 0usize;

    for t in 0..config.rounds {
        let typed = cluster.reveal_typed(t);
        let allocation = balancer.allocation().clone();

        // Latency phase: what this round costs under the chosen partition.
        let worker_latencies: Vec<f64> =
            (0..n).map(|i| typed[i].eval(allocation.share(i))).collect();
        let computation: Vec<f64> =
            (0..n).map(|i| typed[i].processing_time(allocation.share(i))).collect();
        let communication: Vec<f64> = (0..n).map(|i| typed[i].comm_time()).collect();
        utilization.record_round(&computation, &communication);
        let mut global_latency = f64::MIN;
        let mut straggler = 0usize;
        for (i, &l) in worker_latencies.iter().enumerate() {
            if l > global_latency {
                global_latency = l;
                straggler = i;
            }
        }
        wall_clock += global_latency;

        // Learning phase: one synchronous SGD step on B samples.
        let train_accuracy = match (&dataset, &mut model) {
            (Some(data), Some(mlp)) => {
                let (x, y) = data.batch(cursor, batch_size);
                cursor += batch_size;
                mlp.train_batch(&x, &y, config.learning_rate);
                Some(mlp.accuracy(data.features(), data.labels()))
            }
            _ => None,
        };

        rounds.push(TrainingRound {
            round: t,
            batch_fractions: allocation.as_slice().to_vec(),
            worker_latencies: worker_latencies.clone(),
            global_latency,
            straggler,
            wall_clock,
            train_accuracy,
        });

        // Tuning phase: reveal the costs to the balancer, timing the
        // decision update itself (Fig. 11, lower panel).
        let dyn_costs: Vec<DynCost> = typed.iter().map(|c| Box::new(*c) as DynCost).collect();
        let observation = Observation::from_costs(t, &allocation, &dyn_costs);
        timer.time(|| balancer.observe(&observation));
    }

    TrainingOutcome {
        algorithm: balancer.name().to_owned(),
        rounds,
        processors: cluster.processors(),
        utilization,
        overhead_micros: timer.samples_micros(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::model_profile::MlModel;
    use dolbie_baselines::Equ;
    use dolbie_core::Dolbie;

    fn small_cluster(seed: u64) -> Cluster {
        let mut cfg = ClusterConfig::paper(MlModel::ResNet18);
        cfg.num_workers = 8;
        Cluster::sample(cfg, seed)
    }

    #[test]
    fn records_every_round_and_wall_clock_accumulates() {
        let mut balancer = Equ::new(8);
        let cfg = TrainingConfig::latency_only(12);
        let outcome = run_training(&mut balancer, small_cluster(1), cfg);
        assert_eq!(outcome.rounds.len(), 12);
        assert_eq!(outcome.algorithm, "EQU");
        assert_eq!(outcome.processors.len(), 8);
        assert_eq!(outcome.overhead_micros.len(), 12);
        let mut last = 0.0;
        for r in &outcome.rounds {
            assert!(r.wall_clock > last, "wall clock must accumulate");
            assert!((r.wall_clock - last - r.global_latency).abs() < 1e-9);
            last = r.wall_clock;
            assert!(r.train_accuracy.is_none());
            assert_eq!(r.batch_fractions.len(), 8);
        }
        assert_eq!(outcome.utilization.rounds(), 12);
    }

    #[test]
    fn dolbie_beats_equ_on_wall_clock() {
        let cluster = small_cluster(3);
        let cfg = TrainingConfig::latency_only(60);
        let mut equ = Equ::new(8);
        let equ_outcome = run_training(&mut equ, cluster.clone(), cfg);
        let mut dolbie = Dolbie::new(8);
        let dolbie_outcome = run_training(&mut dolbie, cluster, cfg);
        assert!(
            dolbie_outcome.total_wall_clock() < equ_outcome.total_wall_clock(),
            "DOLBIE {} should finish before EQU {}",
            dolbie_outcome.total_wall_clock(),
            equ_outcome.total_wall_clock()
        );
        // And waste less idle time.
        assert!(
            dolbie_outcome.utilization.mean_idle_time() < equ_outcome.utilization.mean_idle_time()
        );
    }

    #[test]
    fn accuracy_per_round_is_balancer_independent() {
        let cluster = small_cluster(5);
        let cfg = TrainingConfig::paper_like(15);
        let mut equ = Equ::new(8);
        let a = run_training(&mut equ, cluster.clone(), cfg);
        let mut dolbie = Dolbie::new(8);
        let b = run_training(&mut dolbie, cluster, cfg);
        for (x, y) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(
                x.train_accuracy, y.train_accuracy,
                "synchronous SGD must be partition-independent at round {}",
                x.round
            );
        }
        // Wall-clock, however, differs.
        assert_ne!(a.total_wall_clock(), b.total_wall_clock());
    }

    #[test]
    fn accuracy_rises_and_time_to_accuracy_works() {
        let mut dolbie = Dolbie::new(8);
        let cfg = TrainingConfig::paper_like(120);
        let outcome = run_training(&mut dolbie, small_cluster(9), cfg);
        let first = outcome.rounds.first().unwrap().train_accuracy.unwrap();
        let last = outcome.rounds.last().unwrap().train_accuracy.unwrap();
        assert!(last > first + 0.3, "training must make real progress: {first} -> {last}");
        let t80 = outcome.time_to_accuracy(0.8);
        assert!(t80.is_some(), "should reach 80% within 120 rounds, got {last}");
        assert!(t80.unwrap() <= outcome.total_wall_clock());
        assert!(outcome.time_to_accuracy(2.0).is_none(), "accuracy cannot exceed 1");
        assert_eq!(outcome.latencies().len(), 120);
    }
}
