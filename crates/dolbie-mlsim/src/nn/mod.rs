//! The from-scratch neural-network trainer.
//!
//! A dependency-free [`Matrix`] type and a two-layer [`Mlp`] trained with
//! SGD + softmax cross-entropy. The backward pass is validated against
//! finite differences, so the accuracy curves in the Fig. 6–8 reproduction
//! come from genuine optimization rather than a fitted curve.

pub mod matrix;
pub mod mlp;

pub use matrix::Matrix;
pub use mlp::{Mlp, Momentum};
