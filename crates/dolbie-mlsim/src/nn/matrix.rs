//! A minimal dense-matrix type for the from-scratch trainer.
//!
//! Row-major `f64` storage with exactly the operations the MLP needs —
//! no BLAS, no external crates, thoroughly tested including a
//! finite-difference check at the network level (see
//! [`mlp`](crate::nn::mlp)).

use std::fmt;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length must equal rows * cols");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of range");
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of range");
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw data access (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data access (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[r * other.cols..(r + 1) * other.cols];
                let other_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "outer dimensions must agree");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            for r in 0..self.cols {
                let a = self.data[k * self.cols + r];
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[r * other.cols..(r + 1) * other.cols];
                let other_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            let a_row = &self.data[r * self.cols..(r + 1) * self.cols];
            for c in 0..other.rows {
                let b_row = &other.data[c * other.cols..(c + 1) * other.cols];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[r * other.rows + c] = acc;
            }
        }
        out
    }

    /// Adds `vector` to every row in place.
    ///
    /// # Panics
    ///
    /// Panics if `vector.len() != self.cols`.
    pub fn add_row_vector(&mut self, vector: &[f64]) {
        assert_eq!(vector.len(), self.cols, "vector length must equal column count");
        for r in 0..self.rows {
            for (c, &v) in vector.iter().enumerate() {
                self.data[r * self.cols + c] += v;
            }
        }
    }

    /// Applies ReLU in place, returning the mask of active units.
    pub fn relu_in_place(&mut self) -> Vec<bool> {
        self.data
            .iter_mut()
            .map(|v| {
                if *v > 0.0 {
                    true
                } else {
                    *v = 0.0;
                    false
                }
            })
            .collect()
    }

    /// Column sums (used for bias gradients).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (c, sum) in sums.iter_mut().enumerate() {
                *sum += self.data[r * self.cols + c];
            }
        }
        sums
    }

    /// In-place `self ← self − scale · other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub_scaled(&mut self, other: &Matrix, scale: f64) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shapes must match for sub_scaled"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= scale * b;
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, " {:8.4}", self.get(r, c))?;
            }
            writeln!(f, " ]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_hand_check() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
    }

    #[test]
    fn transpose_matmul_agrees_with_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64 * 0.5 - 1.0);
        let b = Matrix::from_fn(4, 2, |r, c| (r + c) as f64);
        let at = Matrix::from_fn(3, 4, |r, c| a.get(c, r));
        let expected = at.matmul(&b);
        let got = a.transpose_matmul(&b);
        assert_eq!(expected, got);
    }

    #[test]
    fn matmul_transpose_agrees_with_explicit_transpose() {
        let a = Matrix::from_fn(2, 5, |r, c| (r as f64 - c as f64) * 0.3);
        let b = Matrix::from_fn(3, 5, |r, c| (r * c) as f64 + 1.0);
        let bt = Matrix::from_fn(5, 3, |r, c| b.get(c, r));
        let expected = a.matmul(&bt);
        let got = a.matmul_transpose(&b);
        assert_eq!(expected, got);
    }

    #[test]
    fn add_row_vector_broadcasts() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn relu_masks_negatives() {
        let mut m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        let mask = m.relu_in_place();
        assert_eq!(m.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        assert_eq!(mask, vec![false, false, true, false]);
    }

    #[test]
    fn column_sums_hand_check() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.column_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn sub_scaled_is_sgd_step() {
        let mut w = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let g = Matrix::from_vec(1, 2, vec![0.5, -0.5]);
        w.sub_scaled(&g, 0.1);
        assert_eq!(w.as_slice(), &[0.95, 1.05]);
    }

    #[test]
    fn accessors_and_display() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 0, 7.0);
        assert_eq!(m.get(1, 0), 7.0);
        assert!(m.to_string().contains("Matrix 2x2"));
        assert_eq!(m.as_mut_slice().len(), 4);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
