//! A two-layer MLP classifier trained with SGD and softmax cross-entropy.
//!
//! This is the *real* learner behind the accuracy curves of Figs. 6–8 (the
//! paper trains LeNet5/ResNet18/VGG16 on CIFAR-10; our substitution keeps
//! the optimization genuine while the large models contribute their *cost
//! profiles* — see DESIGN.md §4). Forward, backward, and the update rule
//! are implemented from scratch on [`Matrix`] and validated against
//! finite-difference gradients.

use super::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 2-layer multi-layer perceptron: `input → ReLU(hidden) → logits`.
#[derive(Debug, Clone)]
pub struct Mlp {
    // Weight layout: w1 is (input × hidden) so forward is x · w1.
    w1: Matrix,
    b1: Vec<f64>,
    w2: Matrix,
    b2: Vec<f64>,
}

/// Gradients of one backward pass, same shapes as the parameters.
#[derive(Debug, Clone)]
struct Gradients {
    w1: Matrix,
    b1: Vec<f64>,
    w2: Matrix,
    b2: Vec<f64>,
}

impl Mlp {
    /// Creates an MLP with He-style initialization, seeded for
    /// reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(input: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        assert!(input > 0 && hidden > 0 && classes > 0, "dimensions must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let scale1 = (2.0 / input as f64).sqrt();
        let scale2 = (2.0 / hidden as f64).sqrt();
        let init = |scale: f64, rng: &mut StdRng| -> f64 {
            // Uniform in [-scale, scale]; adequate for a shallow net and
            // keeps the crate free of extra distributions.
            rng.gen_range(-scale..scale)
        };
        Self {
            w1: Matrix::from_fn(input, hidden, |_, _| init(scale1, &mut rng)),
            b1: vec![0.0; hidden],
            w2: Matrix::from_fn(hidden, classes, |_, _| init(scale2, &mut rng)),
            b2: vec![0.0; classes],
        }
    }

    /// Number of input features.
    pub fn input_dim(&self) -> usize {
        self.w1.rows()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.w2.cols()
    }

    /// Forward pass returning `(hidden_activations, logits)`.
    fn forward(&self, x: &Matrix) -> (Matrix, Matrix) {
        let mut hidden = x.matmul(&self.w1);
        hidden.add_row_vector(&self.b1);
        hidden.relu_in_place();
        let mut logits = hidden.matmul(&self.w2);
        logits.add_row_vector(&self.b2);
        (hidden, logits)
    }

    /// Row-wise softmax probabilities (numerically stabilized).
    fn softmax(logits: &Matrix) -> Matrix {
        Matrix::from_fn(logits.rows(), logits.cols(), |r, c| {
            let row = logits.row(r);
            let max = row.iter().cloned().fold(f64::MIN, f64::max);
            let denom: f64 = row.iter().map(|v| (v - max).exp()).sum();
            (logits.get(r, c) - max).exp() / denom
        })
    }

    /// Mean cross-entropy loss of `x` against integer `labels`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or a label is out of range.
    pub fn loss(&self, x: &Matrix, labels: &[usize]) -> f64 {
        assert_eq!(x.rows(), labels.len(), "one label per sample");
        let (_, logits) = self.forward(x);
        let probs = Self::softmax(&logits);
        let mut total = 0.0;
        for (r, &y) in labels.iter().enumerate() {
            assert!(y < self.num_classes(), "label {y} out of range");
            total -= probs.get(r, y).max(1e-300).ln();
        }
        total / labels.len() as f64
    }

    /// Classification accuracy of `x` against `labels`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn accuracy(&self, x: &Matrix, labels: &[usize]) -> f64 {
        assert_eq!(x.rows(), labels.len(), "one label per sample");
        let (_, logits) = self.forward(x);
        let mut correct = 0usize;
        for (r, &y) in labels.iter().enumerate() {
            let row = logits.row(r);
            let mut best = 0;
            for (c, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = c;
                }
            }
            if best == y {
                correct += 1;
            }
        }
        correct as f64 / labels.len() as f64
    }

    fn backward(&self, x: &Matrix, labels: &[usize]) -> Gradients {
        let batch = x.rows() as f64;
        let (hidden, logits) = self.forward(x);
        // dL/dlogits = (softmax − onehot) / batch.
        let mut dlogits = Self::softmax(&logits);
        for (r, &y) in labels.iter().enumerate() {
            dlogits.set(r, y, dlogits.get(r, y) - 1.0);
        }
        for v in dlogits.as_mut_slice() {
            *v /= batch;
        }
        let dw2 = hidden.transpose_matmul(&dlogits);
        let db2 = dlogits.column_sums();
        // dL/dhidden, masked by ReLU activity (hidden > 0).
        let mut dhidden = dlogits.matmul_transpose(&self.w2);
        for r in 0..dhidden.rows() {
            for c in 0..dhidden.cols() {
                if hidden.get(r, c) <= 0.0 {
                    dhidden.set(r, c, 0.0);
                }
            }
        }
        let dw1 = x.transpose_matmul(&dhidden);
        let db1 = dhidden.column_sums();
        Gradients { w1: dw1, b1: db1, w2: dw2, b2: db2 }
    }

    /// One SGD step on a mini-batch; returns the pre-update loss.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree, a label is out of range, or
    /// `learning_rate` is not positive.
    pub fn train_batch(&mut self, x: &Matrix, labels: &[usize], learning_rate: f64) -> f64 {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert_eq!(x.rows(), labels.len(), "one label per sample");
        let loss = self.loss(x, labels);
        let grads = self.backward(x, labels);
        self.w1.sub_scaled(&grads.w1, learning_rate);
        self.w2.sub_scaled(&grads.w2, learning_rate);
        for (b, g) in self.b1.iter_mut().zip(&grads.b1) {
            *b -= learning_rate * g;
        }
        for (b, g) in self.b2.iter_mut().zip(&grads.b2) {
            *b -= learning_rate * g;
        }
        loss
    }

    /// One SGD-with-momentum step (`v ← μ v + g`, `θ ← θ − η v`); returns
    /// the pre-update loss. Pass the same [`Momentum`] state every step.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree, a label is out of range,
    /// `learning_rate` is not positive, or the momentum state was
    /// initialized for a differently shaped network.
    pub fn train_batch_momentum(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        learning_rate: f64,
        state: &mut Momentum,
    ) -> f64 {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert_eq!(x.rows(), labels.len(), "one label per sample");
        let loss = self.loss(x, labels);
        let grads = self.backward(x, labels);
        let mu = state.coefficient;
        let velocity = state.velocity_for(self);
        // v <- mu * v + g for every parameter tensor.
        for (v, g) in velocity.w1.as_mut_slice().iter_mut().zip(grads.w1.as_slice()) {
            *v = mu * *v + g;
        }
        for (v, g) in velocity.w2.as_mut_slice().iter_mut().zip(grads.w2.as_slice()) {
            *v = mu * *v + g;
        }
        for (v, g) in velocity.b1.iter_mut().zip(&grads.b1) {
            *v = mu * *v + g;
        }
        for (v, g) in velocity.b2.iter_mut().zip(&grads.b2) {
            *v = mu * *v + g;
        }
        self.w1.sub_scaled(&velocity.w1, learning_rate);
        self.w2.sub_scaled(&velocity.w2, learning_rate);
        for (b, v) in self.b1.iter_mut().zip(&velocity.b1) {
            *b -= learning_rate * v;
        }
        for (b, v) in self.b2.iter_mut().zip(&velocity.b2) {
            *b -= learning_rate * v;
        }
        loss
    }
}

/// Momentum state for [`Mlp::train_batch_momentum`]: velocity buffers plus
/// the heavy-ball coefficient `μ`.
#[derive(Debug, Clone)]
pub struct Momentum {
    coefficient: f64,
    buffers: Option<Gradients>,
}

impl Momentum {
    /// Creates momentum state with coefficient `μ ∈ [0, 1)` (0.9 is the
    /// common choice). Velocity buffers are allocated lazily on first use.
    ///
    /// # Panics
    ///
    /// Panics if `coefficient` is outside `[0, 1)`.
    pub fn new(coefficient: f64) -> Self {
        assert!((0.0..1.0).contains(&coefficient), "momentum must be in [0, 1)");
        Self { coefficient, buffers: None }
    }

    /// The coefficient `μ`.
    pub fn coefficient(&self) -> f64 {
        self.coefficient
    }

    fn velocity_for(&mut self, mlp: &Mlp) -> &mut Gradients {
        let buffers = self.buffers.get_or_insert_with(|| Gradients {
            w1: Matrix::zeros(mlp.w1.rows(), mlp.w1.cols()),
            b1: vec![0.0; mlp.b1.len()],
            w2: Matrix::zeros(mlp.w2.rows(), mlp.w2.cols()),
            b2: vec![0.0; mlp.b2.len()],
        });
        assert_eq!(
            (buffers.w1.rows(), buffers.w1.cols(), buffers.w2.rows(), buffers.w2.cols()),
            (mlp.w1.rows(), mlp.w1.cols(), mlp.w2.rows(), mlp.w2.cols()),
            "momentum state was initialized for a differently shaped network"
        );
        buffers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_batch() -> (Matrix, Vec<usize>) {
        let x = Matrix::from_vec(
            4,
            3,
            vec![0.5, -0.2, 0.1, -0.4, 0.8, 0.3, 0.9, 0.1, -0.7, -0.1, -0.5, 0.6],
        );
        (x, vec![0, 1, 2, 1])
    }

    #[test]
    fn loss_decreases_with_training() {
        let (x, y) = tiny_batch();
        let mut mlp = Mlp::new(3, 8, 3, 42);
        let initial = mlp.loss(&x, &y);
        for _ in 0..200 {
            mlp.train_batch(&x, &y, 0.5);
        }
        let fitted = mlp.loss(&x, &y);
        assert!(fitted < initial * 0.2, "loss must shrink: {initial} -> {fitted}");
        assert_eq!(mlp.accuracy(&x, &y), 1.0, "tiny batch should be memorized");
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Perturb every parameter of a tiny network and compare the
        // analytic directional derivative with a central difference.
        let (x, y) = tiny_batch();
        let mlp = Mlp::new(3, 4, 3, 7);
        let grads = mlp.backward(&x, &y);
        let eps = 1e-6;

        let check = |getter: &dyn Fn(&Mlp) -> f64,
                     setter: &dyn Fn(&mut Mlp, f64),
                     analytic: f64,
                     what: &str| {
            let base = getter(&mlp);
            let mut plus = mlp.clone();
            setter(&mut plus, base + eps);
            let mut minus = mlp.clone();
            setter(&mut minus, base - eps);
            let numeric = (plus.loss(&x, &y) - minus.loss(&x, &y)) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 1e-6,
                "{what}: numeric {numeric} vs analytic {analytic}"
            );
        };

        for r in 0..3 {
            for c in 0..4 {
                check(
                    &|m: &Mlp| m.w1.get(r, c),
                    &|m: &mut Mlp, v| m.w1.set(r, c, v),
                    grads.w1.get(r, c),
                    &format!("w1[{r},{c}]"),
                );
            }
        }
        for r in 0..4 {
            for c in 0..3 {
                check(
                    &|m: &Mlp| m.w2.get(r, c),
                    &|m: &mut Mlp, v| m.w2.set(r, c, v),
                    grads.w2.get(r, c),
                    &format!("w2[{r},{c}]"),
                );
            }
        }
        for i in 0..4 {
            check(
                &|m: &Mlp| m.b1[i],
                &|m: &mut Mlp, v| m.b1[i] = v,
                grads.b1[i],
                &format!("b1[{i}]"),
            );
        }
        for i in 0..3 {
            check(
                &|m: &Mlp| m.b2[i],
                &|m: &mut Mlp, v| m.b2[i] = v,
                grads.b2[i],
                &format!("b2[{i}]"),
            );
        }
    }

    #[test]
    fn momentum_accelerates_convergence() {
        // Same data, same init, same lr: heavy-ball should reach a target
        // loss in no more steps than plain SGD on this smooth problem.
        let (x, y) = tiny_batch();
        let steps_to = |momentum: Option<f64>| -> usize {
            let mut mlp = Mlp::new(3, 8, 3, 11);
            let mut state = momentum.map(Momentum::new);
            for step in 0..2000 {
                let loss = match &mut state {
                    Some(m) => mlp.train_batch_momentum(&x, &y, 0.05, m),
                    None => mlp.train_batch(&x, &y, 0.05),
                };
                if loss < 0.05 {
                    return step;
                }
            }
            2000
        };
        let plain = steps_to(None);
        let heavy = steps_to(Some(0.9));
        assert!(heavy < plain, "momentum should converge faster: {heavy} vs {plain} steps");
    }

    #[test]
    fn zero_momentum_matches_plain_sgd() {
        let (x, y) = tiny_batch();
        let mut a = Mlp::new(3, 6, 3, 5);
        let mut b = a.clone();
        let mut state = Momentum::new(0.0);
        for _ in 0..20 {
            a.train_batch(&x, &y, 0.1);
            b.train_batch_momentum(&x, &y, 0.1, &mut state);
        }
        assert_eq!(a.w1, b.w1, "mu = 0 must reduce to plain SGD");
        assert_eq!(state.coefficient(), 0.0);
    }

    #[test]
    #[should_panic(expected = "differently shaped")]
    fn momentum_state_shape_is_checked() {
        let (x, y) = tiny_batch();
        let mut small = Mlp::new(3, 4, 3, 1);
        let mut big = Mlp::new(3, 16, 3, 1);
        let mut state = Momentum::new(0.9);
        small.train_batch_momentum(&x, &y, 0.1, &mut state);
        big.train_batch_momentum(&x, &y, 0.1, &mut state);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -10.0, 0.0, 10.0]);
        let p = Mlp::softmax(&logits);
        for r in 0..2 {
            let sum: f64 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
        // Extreme logits stay finite.
        assert!(p.get(1, 2) > 0.99);
    }

    #[test]
    fn initialization_is_seeded() {
        let a = Mlp::new(5, 6, 3, 1);
        let b = Mlp::new(5, 6, 3, 1);
        assert_eq!(a.w1, b.w1);
        let c = Mlp::new(5, 6, 3, 2);
        assert_ne!(a.w1, c.w1);
    }

    #[test]
    fn dimension_accessors() {
        let mlp = Mlp::new(12, 7, 4, 0);
        assert_eq!(mlp.input_dim(), 12);
        assert_eq!(mlp.num_classes(), 4);
    }

    #[test]
    #[should_panic(expected = "one label per sample")]
    fn mismatched_labels_panic() {
        let mlp = Mlp::new(3, 4, 2, 0);
        let x = Matrix::zeros(2, 3);
        let _ = mlp.loss(&x, &[0]);
    }
}
