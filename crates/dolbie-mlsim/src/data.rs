//! Synthetic classification data.
//!
//! CIFAR-10 is not available offline, so the trainer learns a 10-class
//! Gaussian-mixture problem with a CIFAR-like task structure (multi-class,
//! overlapping classes, needs a few thousand SGD steps to reach high
//! training accuracy). The substitution is documented in DESIGN.md §4: the
//! figures of interest measure *wall-clock to reach an accuracy level*, and
//! the wall-clock side comes from the cluster model, not the dataset.

use crate::fluctuation::standard_normal;
use crate::nn::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fixed synthetic dataset: features plus integer labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// The full feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Splits the dataset into a training prefix holding `fraction` of the
    /// samples and a held-out suffix with the rest (samples were generated
    /// i.i.d., so a prefix split is unbiased).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1` and both sides end up non-empty.
    pub fn split(&self, fraction: f64) -> (Dataset, Dataset) {
        assert!(fraction > 0.0 && fraction < 1.0, "fraction must be in (0, 1)");
        let cut = ((self.len() as f64) * fraction).round() as usize;
        assert!(cut > 0 && cut < self.len(), "both splits must be non-empty");
        let dim = self.dim();
        let take = |from: usize, to: usize| -> Dataset {
            let mut features = Matrix::zeros(to - from, dim);
            for (row, idx) in (from..to).enumerate() {
                for c in 0..dim {
                    features.set(row, c, self.features.get(idx, c));
                }
            }
            Dataset { features, labels: self.labels[from..to].to_vec(), classes: self.classes }
        };
        (take(0, cut), take(cut, self.len()))
    }

    /// Extracts the cyclic mini-batch of `batch_size` samples starting at
    /// global sample offset `cursor` — deterministic batching so every
    /// balancer trains on the identical sample sequence.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or exceeds the dataset size.
    pub fn batch(&self, cursor: usize, batch_size: usize) -> (Matrix, Vec<usize>) {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(batch_size <= self.len(), "batch larger than the dataset");
        let n = self.len();
        let dim = self.dim();
        let mut x = Matrix::zeros(batch_size, dim);
        let mut y = Vec::with_capacity(batch_size);
        for k in 0..batch_size {
            let idx = (cursor + k) % n;
            for c in 0..dim {
                x.set(k, c, self.features.get(idx, c));
            }
            y.push(self.labels[idx]);
        }
        (x, y)
    }
}

/// Configuration of the Gaussian-mixture generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixtureConfig {
    /// Number of classes (10, CIFAR-like).
    pub classes: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Distance of class means from the origin (separation).
    pub mean_radius: f64,
    /// Within-class standard deviation (overlap).
    pub noise: f64,
}

impl MixtureConfig {
    /// A 10-class, 32-dimensional task with enough overlap that training
    /// accuracy climbs gradually over a few hundred SGD steps yet is
    /// learnable well past the 95% threshold used in Figs. 6–8.
    pub fn cifar_like() -> Self {
        Self { classes: 10, dim: 32, mean_radius: 4.0, noise: 1.0 }
    }
}

/// Generates a dataset of `size` samples with balanced class labels.
///
/// # Panics
///
/// Panics if `size == 0` or the configuration is degenerate.
pub fn generate_mixture(config: MixtureConfig, size: usize, seed: u64) -> Dataset {
    assert!(size > 0, "dataset must be non-empty");
    assert!(config.classes > 1 && config.dim > 0, "degenerate mixture configuration");
    assert!(config.noise >= 0.0 && config.mean_radius > 0.0, "degenerate mixture scales");
    let mut rng = StdRng::seed_from_u64(seed);
    // Class means: random directions scaled to the configured radius.
    let means: Vec<Vec<f64>> = (0..config.classes)
        .map(|_| {
            let raw: Vec<f64> = (0..config.dim).map(|_| standard_normal(&mut rng)).collect();
            let norm = raw.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-9);
            raw.into_iter().map(|v| v / norm * config.mean_radius).collect()
        })
        .collect();
    let mut features = Matrix::zeros(size, config.dim);
    let mut labels = Vec::with_capacity(size);
    for i in 0..size {
        let class = rng.gen_range(0..config.classes);
        for (c, &mean) in means[class].iter().enumerate() {
            features.set(i, c, mean + config.noise * standard_normal(&mut rng));
        }
        labels.push(class);
    }
    Dataset { features, labels, classes: config.classes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::Mlp;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_mixture(MixtureConfig::cifar_like(), 100, 5);
        let b = generate_mixture(MixtureConfig::cifar_like(), 100, 5);
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.features().as_slice(), b.features().as_slice());
        let c = generate_mixture(MixtureConfig::cifar_like(), 100, 6);
        assert_ne!(a.features().as_slice(), c.features().as_slice());
    }

    #[test]
    fn shapes_and_accessors() {
        let d = generate_mixture(MixtureConfig::cifar_like(), 64, 1);
        assert_eq!(d.len(), 64);
        assert!(!d.is_empty());
        assert_eq!(d.dim(), 32);
        assert_eq!(d.num_classes(), 10);
        assert!(d.labels().iter().all(|&y| y < 10));
    }

    #[test]
    fn batches_cycle_deterministically() {
        let d = generate_mixture(MixtureConfig::cifar_like(), 10, 2);
        let (x1, y1) = d.batch(8, 4); // wraps around
        assert_eq!(x1.rows(), 4);
        assert_eq!(y1.len(), 4);
        assert_eq!(y1[2], d.labels()[0], "wrap-around to the start");
        let (x2, _) = d.batch(8, 4);
        assert_eq!(x1.as_slice(), x2.as_slice(), "same cursor, same batch");
    }

    #[test]
    fn mixture_is_learnable_to_high_accuracy() {
        // The substance behind Figs. 6-8: the task must be genuinely
        // learnable to ~95% training accuracy with a small MLP.
        let d = generate_mixture(MixtureConfig::cifar_like(), 2048, 7);
        let mut mlp = Mlp::new(d.dim(), 48, d.num_classes(), 3);
        let mut cursor = 0;
        for _ in 0..400 {
            let (x, y) = d.batch(cursor, 256);
            cursor += 256;
            mlp.train_batch(&x, &y, 0.25);
        }
        let acc = mlp.accuracy(d.features(), d.labels());
        assert!(acc > 0.9, "mixture should be learnable, accuracy = {acc}");
    }

    #[test]
    fn split_partitions_without_overlap() {
        let d = generate_mixture(MixtureConfig::cifar_like(), 100, 3);
        let (train, test) = d.split(0.8);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        assert_eq!(train.dim(), d.dim());
        assert_eq!(test.num_classes(), d.num_classes());
        // The split preserves the original sample order.
        assert_eq!(train.labels()[0], d.labels()[0]);
        assert_eq!(test.labels()[0], d.labels()[80]);
        assert_eq!(test.features().row(0), d.features().row(80));
    }

    #[test]
    fn generalization_gap_is_modest_on_the_mixture() {
        let d = generate_mixture(MixtureConfig::cifar_like(), 3000, 17);
        let (train, test) = d.split(0.7);
        let mut mlp = Mlp::new(d.dim(), 48, d.num_classes(), 9);
        let mut cursor = 0;
        for _ in 0..300 {
            let (x, y) = train.batch(cursor, 128);
            cursor += 128;
            mlp.train_batch(&x, &y, 0.1);
        }
        let train_acc = mlp.accuracy(train.features(), train.labels());
        let test_acc = mlp.accuracy(test.features(), test.labels());
        assert!(train_acc > 0.85, "train accuracy {train_acc}");
        assert!(
            test_acc > train_acc - 0.1,
            "test accuracy should track train on this i.i.d. task: {test_acc} vs {train_acc}"
        );
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn degenerate_split_fraction_panics() {
        let d = generate_mixture(MixtureConfig::cifar_like(), 10, 0);
        let _ = d.split(1.0);
    }

    #[test]
    fn untrained_accuracy_is_chance_level() {
        let d = generate_mixture(MixtureConfig::cifar_like(), 1000, 9);
        let mlp = Mlp::new(d.dim(), 32, d.num_classes(), 1);
        let acc = mlp.accuracy(d.features(), d.labels());
        assert!(acc < 0.35, "untrained accuracy should be near chance, got {acc}");
    }

    #[test]
    #[should_panic(expected = "batch larger")]
    fn oversized_batch_panics() {
        let d = generate_mixture(MixtureConfig::cifar_like(), 10, 0);
        let _ = d.batch(0, 11);
    }
}
