//! Cost profiles of the three ML models trained in §VI.
//!
//! LeNet5, ResNet18 and VGG16 enter the load balancing problem through two
//! numbers: how fast each processor chews through their samples (the
//! processing term `f^P`, via [`Processor::base_throughput`]) and how many
//! bytes of gradients/parameters must cross the network each round (the
//! communication term `f^C = d / φ`). Parameter counts are the standard
//! published values.
//!
//! [`Processor::base_throughput`]: crate::hardware::Processor::base_throughput

use std::fmt;

/// One of the three models of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MlModel {
    /// LeNet-5 (LeCun et al., 1998) — 61,706 parameters.
    LeNet5,
    /// ResNet-18 (He et al., 2016) — 11,689,512 parameters.
    ResNet18,
    /// VGG-16 (Simonyan & Zisserman, 2015) — 138,357,544 parameters.
    Vgg16,
}

impl MlModel {
    /// All three models in increasing size order.
    pub const ALL: [MlModel; 3] = [MlModel::LeNet5, MlModel::ResNet18, MlModel::Vgg16];

    /// Number of trainable parameters.
    pub fn param_count(&self) -> u64 {
        match self {
            MlModel::LeNet5 => 61_706,
            MlModel::ResNet18 => 11_689_512,
            MlModel::Vgg16 => 138_357_544,
        }
    }

    /// Size of one full gradient/parameter transfer in bytes (fp32).
    pub fn transfer_bytes(&self) -> f64 {
        self.param_count() as f64 * 4.0
    }

    /// Approximate forward+backward compute per sample, in MFLOPs — used
    /// only for documentation/sanity checks (throughput is taken from the
    /// calibrated table, not derived from FLOPs).
    pub fn mflops_per_sample(&self) -> f64 {
        match self {
            MlModel::LeNet5 => 1.3,
            MlModel::ResNet18 => 1_700.0,
            MlModel::Vgg16 => 10_000.0,
        }
    }
}

impl fmt::Display for MlModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MlModel::LeNet5 => "LeNet5",
            MlModel::ResNet18 => "ResNet18",
            MlModel::Vgg16 => "VGG16",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_parameter_counts() {
        assert_eq!(MlModel::LeNet5.param_count(), 61_706);
        assert_eq!(MlModel::ResNet18.param_count(), 11_689_512);
        assert_eq!(MlModel::Vgg16.param_count(), 138_357_544);
    }

    #[test]
    fn sizes_increase() {
        let mut last = 0;
        for m in MlModel::ALL {
            assert!(m.param_count() > last);
            last = m.param_count();
        }
    }

    #[test]
    fn transfer_bytes_are_fp32() {
        assert_eq!(MlModel::LeNet5.transfer_bytes(), 61_706.0 * 4.0);
    }

    #[test]
    fn compute_cost_increases() {
        assert!(MlModel::LeNet5.mflops_per_sample() < MlModel::ResNet18.mflops_per_sample());
        assert!(MlModel::ResNet18.mflops_per_sample() < MlModel::Vgg16.mflops_per_sample());
    }

    #[test]
    fn display_names() {
        assert_eq!(MlModel::Vgg16.to_string(), "VGG16");
        assert_eq!(MlModel::LeNet5.to_string(), "LeNet5");
    }
}
