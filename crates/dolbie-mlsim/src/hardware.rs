//! The heterogeneous processor pool of §VI-B.
//!
//! The paper's testbed assigns each of 30 workers one of five processors
//! uniformly at random: NVIDIA Tesla V100, Tesla P100, T4, Intel Xeon Gold
//! 6238 (Cascade Lake), and Intel E5-2683 v4 (Broadwell). We do not have
//! that hardware, so this module substitutes a calibrated throughput table
//! (training samples/second per processor × model). The *absolute* numbers
//! are representative, not measured; what the algorithms actually consume
//! is the heterogeneity spread (≈13× for LeNet5 growing to ≈50× for VGG16)
//! and the temporal dynamics layered on top by
//! [`Ar1Fluctuation`](crate::fluctuation::Ar1Fluctuation). See DESIGN.md §4
//! for why this substitution preserves the evaluated behaviour.

use crate::model_profile::MlModel;
use std::fmt;

/// One of the five processor types of the paper's testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Processor {
    /// NVIDIA Tesla V100 (the fastest).
    TeslaV100,
    /// NVIDIA Tesla P100.
    TeslaP100,
    /// NVIDIA T4.
    T4,
    /// Intel Xeon Gold 6238 (Cascade Lake) @ 2.10 GHz.
    XeonGold6238,
    /// Intel E5-2683 v4 (Broadwell) @ 2.1 GHz (the straggler class).
    E5_2683V4,
}

impl Processor {
    /// All five processor types, in the paper's listing order.
    pub const ALL: [Processor; 5] = [
        Processor::TeslaV100,
        Processor::TeslaP100,
        Processor::T4,
        Processor::XeonGold6238,
        Processor::E5_2683V4,
    ];

    /// Nominal training throughput in samples/second for `model`.
    ///
    /// Calibrated so the V100:E5 spread grows with model size, which is the
    /// driver of the paper's observation that DOLBIE's advantage grows from
    /// LeNet5 to VGG16.
    pub fn base_throughput(&self, model: MlModel) -> f64 {
        match (self, model) {
            (Processor::TeslaV100, MlModel::LeNet5) => 20_000.0,
            (Processor::TeslaP100, MlModel::LeNet5) => 15_000.0,
            (Processor::T4, MlModel::LeNet5) => 10_000.0,
            (Processor::XeonGold6238, MlModel::LeNet5) => 3_000.0,
            (Processor::E5_2683V4, MlModel::LeNet5) => 1_500.0,
            (Processor::TeslaV100, MlModel::ResNet18) => 1_600.0,
            (Processor::TeslaP100, MlModel::ResNet18) => 1_100.0,
            (Processor::T4, MlModel::ResNet18) => 600.0,
            (Processor::XeonGold6238, MlModel::ResNet18) => 110.0,
            (Processor::E5_2683V4, MlModel::ResNet18) => 55.0,
            (Processor::TeslaV100, MlModel::Vgg16) => 600.0,
            (Processor::TeslaP100, MlModel::Vgg16) => 400.0,
            (Processor::T4, MlModel::Vgg16) => 200.0,
            (Processor::XeonGold6238, MlModel::Vgg16) => 25.0,
            (Processor::E5_2683V4, MlModel::Vgg16) => 12.0,
        }
    }

    /// Whether this is a GPU (used for grouping in the Fig. 9–10 plots:
    /// "most powerful GPUs in green, Cascade Lake in orange and the
    /// straggler Broadwell in red").
    pub fn is_gpu(&self) -> bool {
        matches!(self, Processor::TeslaV100 | Processor::TeslaP100 | Processor::T4)
    }
}

impl fmt::Display for Processor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Processor::TeslaV100 => "Tesla V100",
            Processor::TeslaP100 => "Tesla P100",
            Processor::T4 => "T4",
            Processor::XeonGold6238 => "Xeon Gold 6238",
            Processor::E5_2683V4 => "E5-2683 v4",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_ordering_is_preserved_per_model() {
        for model in MlModel::ALL {
            let speeds: Vec<f64> =
                Processor::ALL.iter().map(|p| p.base_throughput(model)).collect();
            for w in speeds.windows(2) {
                assert!(w[0] > w[1], "processors must be listed fastest-first for {model:?}");
            }
        }
    }

    #[test]
    fn heterogeneity_spread_grows_with_model_size() {
        let spread = |m: MlModel| {
            Processor::TeslaV100.base_throughput(m) / Processor::E5_2683V4.base_throughput(m)
        };
        let lenet = spread(MlModel::LeNet5);
        let resnet = spread(MlModel::ResNet18);
        let vgg = spread(MlModel::Vgg16);
        assert!(lenet < resnet && resnet < vgg, "{lenet} < {resnet} < {vgg} expected");
    }

    #[test]
    fn gpu_classification() {
        assert!(Processor::TeslaV100.is_gpu());
        assert!(Processor::T4.is_gpu());
        assert!(!Processor::XeonGold6238.is_gpu());
        assert!(!Processor::E5_2683V4.is_gpu());
    }

    #[test]
    fn display_names() {
        assert_eq!(Processor::TeslaV100.to_string(), "Tesla V100");
        assert_eq!(Processor::E5_2683V4.to_string(), "E5-2683 v4");
    }
}
