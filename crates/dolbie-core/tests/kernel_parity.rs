//! Exhaustive bitwise-parity matrix for the fused/SIMD round kernel.
//!
//! The tentpole determinism claim of the kernel
//! ([`dolbie_core::kernel`]): for every cost stream, chunk size, thread
//! count, kernel variant and membership mask, the fused engine's
//! trajectory — per-round shares, straggler ids, the α schedule, the
//! update counters — is **bitwise identical** to the sequential split
//! engine ([`Dolbie`]). The reference trajectories here are produced by
//! the plain `Dolbie` + `Observation` path, so any fusion, deferral,
//! blocking or SIMD bug that moves a single bit fails the matrix.

use dolbie_core::cost::{DynCost, LatencyCost, LinearCost};
use dolbie_core::kernel::{FusedDolbie, KernelVariant};
use dolbie_core::parallel::set_threads;
use dolbie_core::{pairwise_neumaier_sum, Dolbie, LoadBalancer, Observation};

fn splitmix(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z = z ^ (z >> 31);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Heterogeneous-latency fleet: speeds from a seeded hash.
fn latency_fleet(n: usize, seed: u64) -> Vec<DynCost> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            let speed = 64.0 + 448.0 * splitmix(&mut state);
            Box::new(LatencyCost::new(256.0, speed, 0.05)) as DynCost
        })
        .collect()
}

/// Tie-heavy fleet: only 3 distinct slopes across n workers, so the
/// straggler argmax faces massive ties every round and must resolve them
/// to the lowest index — the case a stride-lane SIMD argmax would break.
fn tie_heavy_fleet(n: usize) -> Vec<DynCost> {
    (0..n)
        .map(|i| {
            let slope = [3.0, 3.0, 1.0][i % 3];
            Box::new(LinearCost::new(slope, 0.1)) as DynCost
        })
        .collect()
}

struct Trajectory {
    share_bits: Vec<Vec<u64>>,
    stragglers: Vec<usize>,
    global_cost_bits: Vec<u64>,
    alpha_bits: Vec<u64>,
}

fn run_split_reference(costs: &[DynCost], rounds: usize) -> Trajectory {
    let mut d = Dolbie::new(costs.len());
    let mut t = Trajectory {
        share_bits: Vec::new(),
        stragglers: Vec::new(),
        global_cost_bits: Vec::new(),
        alpha_bits: Vec::new(),
    };
    for round in 0..rounds {
        let played = d.allocation().clone();
        let obs = Observation::from_costs(round, &played, costs);
        t.stragglers.push(obs.straggler());
        t.global_cost_bits.push(obs.global_cost().to_bits());
        d.observe(&obs);
        t.share_bits.push(d.allocation().iter().map(|v| v.to_bits()).collect());
    }
    t.alpha_bits = d.alphas_used().iter().map(|a| a.to_bits()).collect();
    t
}

fn run_fused(
    costs: &[DynCost],
    rounds: usize,
    variant: KernelVariant,
    chunk: Option<usize>,
) -> Trajectory {
    let mut d = FusedDolbie::from_costs(costs).expect("fleet has a slab layout");
    d = d.with_variant(variant);
    if let Some(c) = chunk {
        d = d.with_chunk_size(c);
    }
    let mut t = Trajectory {
        share_bits: Vec::new(),
        stragglers: Vec::new(),
        global_cost_bits: Vec::new(),
        alpha_bits: Vec::new(),
    };
    for _ in 0..rounds {
        let round = d.step();
        t.stragglers.push(round.straggler);
        t.global_cost_bits.push(round.global_cost.to_bits());
        // Reading the allocation every round forces the deferred tail to
        // materialize mid-stream — the hardest schedule for the kernel.
        t.share_bits.push(d.allocation().iter().map(|v| v.to_bits()).collect());
    }
    t.alpha_bits = d.alphas_used().iter().map(|a| a.to_bits()).collect();
    t
}

/// The full matrix: {latency, tie-heavy} × {Fused, Simd} ×
/// chunk {None, 1, 7, 64, N} × threads {1, 4}, n prime so every chunk
/// size leaves a ragged tail (and the SIMD lanes a scalar remainder).
#[test]
fn fused_kernel_matches_split_engine_across_the_matrix() {
    let n = 97;
    let rounds = 60;
    for costs in [latency_fleet(n, 11), tie_heavy_fleet(n)] {
        let reference = run_split_reference(&costs, rounds);
        for variant in [KernelVariant::Fused, KernelVariant::Simd] {
            for chunk in [None, Some(1usize), Some(7), Some(64), Some(n)] {
                for threads in [1usize, 4] {
                    set_threads(threads);
                    let got = run_fused(&costs, rounds, variant, chunk);
                    set_threads(0);
                    let tag = format!("{variant:?}, chunk {chunk:?}, threads {threads}");
                    assert_eq!(got.stragglers, reference.stragglers, "stragglers ({tag})");
                    assert_eq!(
                        got.global_cost_bits, reference.global_cost_bits,
                        "global costs ({tag})"
                    );
                    assert_eq!(got.alpha_bits, reference.alpha_bits, "alpha schedule ({tag})");
                    assert_eq!(got.share_bits, reference.share_bits, "shares ({tag})");
                }
            }
        }
    }
}

/// Deferred application must be invisible at episode scale too: run the
/// kernel without mid-stream allocation reads (so the deferral actually
/// spans rounds) across a horizon crossing two Σx refresh intervals, and
/// compare the end state and episode aggregates.
#[test]
fn fused_episode_aggregates_match_split_engine() {
    let n = 97;
    let rounds = 530; // Past 2 × TOTAL_REFRESH_INTERVAL.
    let costs = latency_fleet(n, 3);
    let mut split = Dolbie::new(n);
    let summary =
        dolbie_core::runner::run_episode_with_static_costs(&mut split, &costs, rounds, None);
    for variant in [KernelVariant::Fused, KernelVariant::Simd] {
        for chunk in [None, Some(64)] {
            let mut fused = FusedDolbie::from_costs(&costs).unwrap().with_variant(variant);
            if let Some(c) = chunk {
                fused = fused.with_chunk_size(c);
            }
            let got = fused.run(rounds);
            let tag = format!("{variant:?}, chunk {chunk:?}");
            assert_eq!(got.total_cost.to_bits(), summary.total_cost.to_bits(), "{tag}");
            assert_eq!(
                got.final_global_cost.to_bits(),
                summary.final_global_cost.to_bits(),
                "{tag}"
            );
            assert_eq!(fused.stats(), split.stats(), "{tag}");
            for i in 0..n {
                assert_eq!(
                    fused.allocation().share(i).to_bits(),
                    split.allocation().share(i).to_bits(),
                    "worker {i} ({tag})"
                );
            }
        }
    }
}

/// Membership epochs: a leave, a second leave, and a rejoin mid-episode.
/// The reference drives the split engine through `from_costs_masked`; the
/// kernel crosses the same boundaries via `apply_membership`, which must
/// materialize its deferred state first. The fused loop runs in two
/// modes: with per-round allocation reads (per-round share bits
/// compared), and without (so each epoch boundary genuinely arrives with
/// the previous round's tail still deferred, making the
/// materialize-before-renormalize ordering load-bearing).
#[test]
fn fused_kernel_matches_split_engine_through_membership_epochs() {
    let n = 41;
    let rounds = 90;
    let costs = latency_fleet(n, 29);
    let boundary = |t: usize| -> Option<Vec<bool>> {
        match t {
            20 => Some((0..n).map(|i| i != 3).collect()),
            35 => Some((0..n).map(|i| i != 3 && i != 0).collect()),
            60 => Some((0..n).map(|i| i != 0).collect()),
            _ => None,
        }
    };

    let mut members = vec![true; n];
    let mut split = Dolbie::new(n);
    let mut reference = Trajectory {
        share_bits: Vec::new(),
        stragglers: Vec::new(),
        global_cost_bits: Vec::new(),
        alpha_bits: Vec::new(),
    };
    for t in 0..rounds {
        if let Some(m) = boundary(t) {
            members = m;
            split.apply_membership(&members);
        }
        let played = split.allocation().clone();
        let obs = Observation::from_costs_masked(t, &played, &costs, &members, Vec::new());
        reference.stragglers.push(obs.straggler());
        reference.global_cost_bits.push(obs.global_cost().to_bits());
        split.observe(&obs);
        reference.share_bits.push(split.allocation().iter().map(|v| v.to_bits()).collect());
    }
    reference.alpha_bits = split.alphas_used().iter().map(|a| a.to_bits()).collect();

    for variant in [KernelVariant::Fused, KernelVariant::Simd] {
        for chunk in [None, Some(7usize)] {
            for threads in [1usize, 4] {
                for read_each_round in [true, false] {
                    set_threads(threads);
                    let mut fused = FusedDolbie::from_costs(&costs).unwrap().with_variant(variant);
                    if let Some(c) = chunk {
                        fused = fused.with_chunk_size(c);
                    }
                    let mut got = Trajectory {
                        share_bits: Vec::new(),
                        stragglers: Vec::new(),
                        global_cost_bits: Vec::new(),
                        alpha_bits: Vec::new(),
                    };
                    for t in 0..rounds {
                        if let Some(m) = boundary(t) {
                            fused.apply_membership(&m);
                        }
                        let round = fused.step();
                        got.stragglers.push(round.straggler);
                        got.global_cost_bits.push(round.global_cost.to_bits());
                        if read_each_round {
                            got.share_bits
                                .push(fused.allocation().iter().map(|v| v.to_bits()).collect());
                        }
                    }
                    got.alpha_bits = fused.alphas_used().iter().map(|a| a.to_bits()).collect();
                    let final_bits: Vec<u64> =
                        fused.allocation().iter().map(|v| v.to_bits()).collect();
                    set_threads(0);
                    let tag = format!(
                        "{variant:?}, chunk {chunk:?}, threads {threads}, reads {read_each_round}"
                    );
                    assert_eq!(got.stragglers, reference.stragglers, "stragglers ({tag})");
                    assert_eq!(got.global_cost_bits, reference.global_cost_bits, "costs ({tag})");
                    assert_eq!(got.alpha_bits, reference.alpha_bits, "alpha schedule ({tag})");
                    if read_each_round {
                        assert_eq!(got.share_bits, reference.share_bits, "shares ({tag})");
                    } else {
                        assert_eq!(
                            &final_bits,
                            reference.share_bits.last().unwrap(),
                            "final shares ({tag})"
                        );
                    }
                }
            }
        }
    }

    let sum = pairwise_neumaier_sum(split.allocation().as_slice());
    assert!((sum - 1.0).abs() < 1e-12, "|Σx − 1| = {:e}", (sum - 1.0).abs());
}
