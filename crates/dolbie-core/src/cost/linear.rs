//! Affine cost `f(x) = slope * x + intercept`.

use super::CostFunction;

/// Affine local cost `f(x) = slope * x + intercept` with exact inverse.
///
/// This is the simplest member of the family and the regime in which the
/// repeated-game approach of \[23\] in the paper applies; it also underlies
/// [`LatencyCost`](super::LatencyCost).
///
/// # Examples
///
/// ```
/// use dolbie_core::cost::{CostFunction, LinearCost};
///
/// let f = LinearCost::new(4.0, 1.0);
/// assert_eq!(f.eval(0.25), 2.0);
/// assert_eq!(f.max_share_within(3.0), Some(0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearCost {
    slope: f64,
    intercept: f64,
}

impl LinearCost {
    /// Creates `f(x) = slope * x + intercept`.
    ///
    /// # Panics
    ///
    /// Panics if `slope` is negative (the cost must be non-decreasing) or if
    /// either parameter is non-finite.
    pub fn new(slope: f64, intercept: f64) -> Self {
        assert!(slope.is_finite() && intercept.is_finite(), "parameters must be finite");
        assert!(slope >= 0.0, "cost functions must be non-decreasing, slope = {slope}");
        Self { slope, intercept }
    }

    /// The slope parameter.
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// The intercept parameter (`f(0)`).
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

impl CostFunction for LinearCost {
    fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    fn max_share_within(&self, level: f64) -> Option<f64> {
        if self.intercept > level {
            return None;
        }
        if self.slope == 0.0 {
            return Some(1.0);
        }
        Some(((level - self.intercept) / self.slope).min(1.0))
    }

    fn derivative(&self, _x: f64) -> f64 {
        self.slope
    }

    fn lipschitz_bound(&self) -> f64 {
        self.slope
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_inverse_round_trip() {
        let f = LinearCost::new(3.0, 2.0);
        for x in [0.0, 0.3, 0.7, 1.0] {
            let level = f.eval(x);
            let back = f.max_share_within(level).unwrap();
            assert!((back - x).abs() < 1e-12, "x={x} back={back}");
        }
    }

    #[test]
    fn inverse_truncates_to_one() {
        let f = LinearCost::new(1.0, 0.0);
        assert_eq!(f.max_share_within(100.0), Some(1.0));
    }

    #[test]
    fn inverse_none_below_intercept() {
        let f = LinearCost::new(1.0, 5.0);
        assert_eq!(f.max_share_within(4.999), None);
        assert_eq!(f.max_share_within(5.0), Some(0.0));
    }

    #[test]
    fn zero_slope_plateau_inverse_is_one() {
        // A constant cost (purely communication-bound worker): any share is
        // acceptable at or above the constant.
        let f = LinearCost::new(0.0, 2.0);
        assert_eq!(f.max_share_within(2.0), Some(1.0));
        assert_eq!(f.max_share_within(1.0), None);
        assert_eq!(f.lipschitz_bound(), 0.0);
    }

    #[test]
    fn accessors() {
        let f = LinearCost::new(3.0, 2.0);
        assert_eq!(f.slope(), 3.0);
        assert_eq!(f.intercept(), 2.0);
        assert_eq!(f.derivative(0.5), 3.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn negative_slope_is_rejected() {
        let _ = LinearCost::new(-1.0, 0.0);
    }
}
