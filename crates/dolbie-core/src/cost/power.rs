//! Polynomial cost `f(x) = coeff * x^exponent + offset`.

use super::CostFunction;

/// Power-law local cost `f(x) = coeff * x^p + offset` with `p > 0`.
///
/// Super-linear (`p > 1`) costs model congestion effects — e.g. memory
/// pressure growing with batch size — and are exactly the non-linear regime
/// in which the paper argues the proportional adjustment of ABS "is not
/// robust" (§II-B). Sub-linear (`p < 1`) costs model economies of scale.
///
/// # Examples
///
/// ```
/// use dolbie_core::cost::{CostFunction, PowerCost};
///
/// let f = PowerCost::new(4.0, 2.0, 1.0); // 4x² + 1
/// assert_eq!(f.eval(0.5), 2.0);
/// assert_eq!(f.max_share_within(2.0), Some(0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerCost {
    coeff: f64,
    exponent: f64,
    offset: f64,
}

impl PowerCost {
    /// Creates `f(x) = coeff * x^exponent + offset`.
    ///
    /// # Panics
    ///
    /// Panics if `coeff < 0`, `exponent <= 0`, or any parameter is
    /// non-finite.
    pub fn new(coeff: f64, exponent: f64, offset: f64) -> Self {
        assert!(
            coeff.is_finite() && exponent.is_finite() && offset.is_finite(),
            "parameters must be finite"
        );
        assert!(coeff >= 0.0, "coefficient must be non-negative");
        assert!(exponent > 0.0, "exponent must be positive for monotonicity");
        Self { coeff, exponent, offset }
    }

    /// The exponent `p`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

impl CostFunction for PowerCost {
    fn eval(&self, x: f64) -> f64 {
        self.coeff * x.powf(self.exponent) + self.offset
    }

    fn max_share_within(&self, level: f64) -> Option<f64> {
        if self.offset > level {
            return None;
        }
        if self.coeff == 0.0 {
            return Some(1.0);
        }
        Some(((level - self.offset) / self.coeff).powf(1.0 / self.exponent).min(1.0))
    }

    fn derivative(&self, x: f64) -> f64 {
        if self.exponent == 1.0 {
            return self.coeff;
        }
        self.coeff * self.exponent * x.powf(self.exponent - 1.0)
    }

    fn lipschitz_bound(&self) -> f64 {
        // On [0,1]: the derivative is maximized at 1 for p >= 1. For p < 1
        // the derivative blows up at 0 — the cost is not Lipschitz there, so
        // return the sampled bound away from zero as a practical estimate.
        if self.exponent >= 1.0 {
            self.coeff * self.exponent
        } else {
            self.derivative(1.0 / 32.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_round_trip_quadratic() {
        let f = PowerCost::new(3.0, 2.0, 0.5);
        for x in [0.0, 0.25, 0.6, 1.0] {
            let level = f.eval(x);
            let back = f.max_share_within(level).unwrap();
            assert!((back - x).abs() < 1e-10, "x={x} back={back}");
        }
    }

    #[test]
    fn inverse_round_trip_sublinear() {
        let f = PowerCost::new(2.0, 0.5, 0.0);
        let level = f.eval(0.49);
        let back = f.max_share_within(level).unwrap();
        assert!((back - 0.49).abs() < 1e-10);
    }

    #[test]
    fn inverse_truncation_and_none() {
        let f = PowerCost::new(1.0, 3.0, 2.0);
        assert_eq!(f.max_share_within(100.0), Some(1.0));
        assert_eq!(f.max_share_within(1.9), None);
    }

    #[test]
    fn zero_coeff_is_constant() {
        let f = PowerCost::new(0.0, 2.0, 1.0);
        assert_eq!(f.eval(0.8), 1.0);
        assert_eq!(f.max_share_within(1.0), Some(1.0));
    }

    #[test]
    fn derivative_and_lipschitz() {
        let f = PowerCost::new(4.0, 2.0, 0.0);
        assert!((f.derivative(0.5) - 4.0).abs() < 1e-12);
        assert!((f.lipschitz_bound() - 8.0).abs() < 1e-12);
        let linearish = PowerCost::new(4.0, 1.0, 0.0);
        assert_eq!(linearish.derivative(0.0), 4.0);
    }

    #[test]
    fn sublinear_lipschitz_is_finite() {
        let f = PowerCost::new(1.0, 0.5, 0.0);
        assert!(f.lipschitz_bound().is_finite());
        assert!(f.lipschitz_bound() > 0.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn zero_exponent_is_rejected() {
        let _ = PowerCost::new(1.0, 0.0, 0.0);
    }
}
