//! The distributed-learning latency model of §III-A.

use super::CostFunction;

/// Per-round training latency of a worker in the batch-size-tuning example:
///
/// `f(b) = b * B / γ + f^C`
///
/// where `b` is the batch *fraction* assigned to the worker, `B` the global
/// batch size, `γ` the worker's current processing speed (samples/second)
/// and `f^C = d / φ` the communication time (model size over data rate).
/// This matches `f_{i,t}(b_{i,t}) = f^P_{i,t}(b_{i,t}) + f^C_{i,t}` in the
/// paper, and its closed-form inverse is exactly the expression used in
/// §VI-A: `b' = min(1, (f − f^C) γ / B)`.
///
/// # Examples
///
/// ```
/// use dolbie_core::cost::{CostFunction, LatencyCost};
///
/// // 256 samples total, 512 samples/s, 0.1 s communication time.
/// let f = LatencyCost::new(256.0, 512.0, 0.1);
/// assert!((f.eval(0.5) - 0.35).abs() < 1e-12);
/// assert_eq!(f.max_share_within(0.6), Some(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyCost {
    batch_size: f64,
    speed: f64,
    comm_time: f64,
}

impl LatencyCost {
    /// Creates the latency cost for a worker processing `batch_size * x`
    /// samples at `speed` samples/second with fixed `comm_time` seconds of
    /// communication.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size < 0`, `speed <= 0`, `comm_time < 0`, or any
    /// parameter is non-finite.
    pub fn new(batch_size: f64, speed: f64, comm_time: f64) -> Self {
        assert!(
            batch_size.is_finite() && speed.is_finite() && comm_time.is_finite(),
            "parameters must be finite"
        );
        assert!(batch_size >= 0.0, "batch size must be non-negative");
        assert!(speed > 0.0, "processing speed must be positive");
        assert!(comm_time >= 0.0, "communication time must be non-negative");
        Self { batch_size, speed, comm_time }
    }

    /// The global batch size `B`.
    pub fn batch_size(&self) -> f64 {
        self.batch_size
    }

    /// The processing speed `γ` in samples/second.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// The communication time `f^C` in seconds.
    pub fn comm_time(&self) -> f64 {
        self.comm_time
    }

    /// The batch-processing component `f^P(x) = x B / γ` alone.
    pub fn processing_time(&self, x: f64) -> f64 {
        x * self.batch_size / self.speed
    }
}

impl CostFunction for LatencyCost {
    fn eval(&self, x: f64) -> f64 {
        self.processing_time(x) + self.comm_time
    }

    fn max_share_within(&self, level: f64) -> Option<f64> {
        if self.comm_time > level {
            return None;
        }
        if self.batch_size == 0.0 {
            return Some(1.0);
        }
        // b' = min(1, (f − f^C) γ / B), the closed form of §VI-A.
        Some(((level - self.comm_time) * self.speed / self.batch_size).min(1.0))
    }

    fn derivative(&self, _x: f64) -> f64 {
        self.batch_size / self.speed
    }

    fn lipschitz_bound(&self) -> f64 {
        self.batch_size / self.speed
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_decomposition() {
        let f = LatencyCost::new(256.0, 128.0, 0.25);
        // Full batch: 2 s of compute + 0.25 s of comm.
        assert!((f.eval(1.0) - 2.25).abs() < 1e-12);
        assert!((f.processing_time(1.0) - 2.0).abs() < 1e-12);
        assert_eq!(f.comm_time(), 0.25);
    }

    #[test]
    fn closed_form_inverse_round_trip() {
        let f = LatencyCost::new(256.0, 100.0, 0.5);
        for x in [0.0, 0.2, 0.9, 1.0] {
            let level = f.eval(x);
            let back = f.max_share_within(level).unwrap();
            assert!((back - x).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_none_when_comm_dominates() {
        let f = LatencyCost::new(256.0, 100.0, 0.5);
        assert_eq!(f.max_share_within(0.4), None);
        assert_eq!(f.max_share_within(0.5), Some(0.0));
    }

    #[test]
    fn zero_batch_is_pure_communication() {
        let f = LatencyCost::new(0.0, 100.0, 0.3);
        assert_eq!(f.eval(0.7), 0.3);
        assert_eq!(f.max_share_within(0.3), Some(1.0));
        assert_eq!(f.lipschitz_bound(), 0.0);
    }

    #[test]
    fn derivative_is_b_over_gamma() {
        let f = LatencyCost::new(256.0, 64.0, 0.0);
        assert_eq!(f.derivative(0.3), 4.0);
        assert_eq!(f.lipschitz_bound(), 4.0);
    }

    #[test]
    fn accessors() {
        let f = LatencyCost::new(256.0, 64.0, 0.1);
        assert_eq!(f.batch_size(), 256.0);
        assert_eq!(f.speed(), 64.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_is_rejected() {
        let _ = LatencyCost::new(256.0, 0.0, 0.1);
    }
}
