//! Exponential cost `f(x) = scale * (e^{rate·x} − 1) + offset`.

use super::CostFunction;

/// Exponentially growing local cost — the harshest non-linear shape in the
/// library, modelling workers that degrade sharply past a soft capacity
/// (thermal throttling, swap pressure).
///
/// `f(x) = scale * (exp(rate * x) − 1) + offset`, so `f(0) = offset`.
///
/// # Examples
///
/// ```
/// use dolbie_core::cost::{CostFunction, ExponentialCost};
///
/// let f = ExponentialCost::new(1.0, 1.0, 0.0);
/// assert!((f.eval(1.0) - (1f64.exp() - 1.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialCost {
    scale: f64,
    rate: f64,
    offset: f64,
}

impl ExponentialCost {
    /// Creates `f(x) = scale * (exp(rate * x) − 1) + offset`.
    ///
    /// # Panics
    ///
    /// Panics if `scale < 0`, `rate < 0`, or any parameter is non-finite.
    pub fn new(scale: f64, rate: f64, offset: f64) -> Self {
        assert!(
            scale.is_finite() && rate.is_finite() && offset.is_finite(),
            "parameters must be finite"
        );
        assert!(scale >= 0.0, "scale must be non-negative");
        assert!(rate >= 0.0, "rate must be non-negative for monotonicity");
        Self { scale, rate, offset }
    }
}

impl CostFunction for ExponentialCost {
    fn eval(&self, x: f64) -> f64 {
        self.scale * ((self.rate * x).exp() - 1.0) + self.offset
    }

    fn max_share_within(&self, level: f64) -> Option<f64> {
        if self.offset > level {
            return None;
        }
        if self.scale == 0.0 || self.rate == 0.0 {
            return Some(1.0);
        }
        let arg = (level - self.offset) / self.scale + 1.0;
        Some((arg.ln() / self.rate).min(1.0))
    }

    fn derivative(&self, x: f64) -> f64 {
        self.scale * self.rate * (self.rate * x).exp()
    }

    fn lipschitz_bound(&self) -> f64 {
        self.derivative(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_round_trip() {
        let f = ExponentialCost::new(0.5, 3.0, 0.2);
        for x in [0.0, 0.33, 0.8, 1.0] {
            let level = f.eval(x);
            let back = f.max_share_within(level).unwrap();
            assert!((back - x).abs() < 1e-10, "x={x} back={back}");
        }
    }

    #[test]
    fn inverse_none_and_truncation() {
        let f = ExponentialCost::new(1.0, 2.0, 1.0);
        assert_eq!(f.max_share_within(0.5), None);
        assert_eq!(f.max_share_within(1e9), Some(1.0));
    }

    #[test]
    fn degenerate_flat_function() {
        let f = ExponentialCost::new(0.0, 2.0, 0.7);
        assert_eq!(f.eval(0.5), 0.7);
        assert_eq!(f.max_share_within(0.7), Some(1.0));
        let g = ExponentialCost::new(1.0, 0.0, 0.7);
        assert_eq!(g.eval(0.9), 0.7);
        assert_eq!(g.max_share_within(0.7), Some(1.0));
    }

    #[test]
    fn lipschitz_is_derivative_at_one() {
        let f = ExponentialCost::new(2.0, 1.5, 0.0);
        assert!((f.lipschitz_bound() - 2.0 * 1.5 * 1.5f64.exp()).abs() < 1e-10);
        assert!(f.lipschitz_bound() >= f.derivative(0.0));
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn negative_rate_is_rejected() {
        let _ = ExponentialCost::new(1.0, -1.0, 0.0);
    }
}
