//! Combinators that build compound costs from simpler ones.

use super::CostFunction;
use crate::solver::{invert_monotone, BisectionConfig};

/// The sum of two cost functions, `f(x) = a(x) + b(x)`.
///
/// This mirrors the paper's decomposition of training latency into
/// processing plus communication components, but for arbitrary shapes —
/// e.g. an affine compute term plus a queueing transmission term.
///
/// # Examples
///
/// ```
/// use dolbie_core::cost::{CostFunction, LinearCost, SumCost};
///
/// let f = SumCost::new(LinearCost::new(1.0, 0.0), LinearCost::new(0.0, 0.5));
/// assert_eq!(f.eval(0.5), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SumCost<A, B> {
    a: A,
    b: B,
}

impl<A: CostFunction, B: CostFunction> SumCost<A, B> {
    /// Creates `f(x) = a(x) + b(x)`.
    pub fn new(a: A, b: B) -> Self {
        Self { a, b }
    }
}

impl<A: CostFunction, B: CostFunction> CostFunction for SumCost<A, B> {
    fn eval(&self, x: f64) -> f64 {
        self.a.eval(x) + self.b.eval(x)
    }

    fn max_share_within(&self, level: f64) -> Option<f64> {
        // The component inverses bracket the answer far tighter than the
        // default's full [0, 1] bisection: since both terms are
        // non-decreasing, a(x) <= level - b(0) is necessary (and likewise
        // for b), while splitting the slack evenly between the terms is
        // sufficient.
        let a0 = self.a.eval(0.0);
        let b0 = self.b.eval(0.0);
        if a0 + b0 > level {
            return None;
        }
        let hi = self.a.max_share_within(level - b0)?.min(self.b.max_share_within(level - a0)?);
        if self.eval(hi) <= level {
            return Some(hi);
        }
        let half_slack = (level - a0 - b0) / 2.0;
        let mut lo = self
            .a
            .max_share_within(a0 + half_slack)
            .unwrap_or(0.0)
            .min(self.b.max_share_within(b0 + half_slack).unwrap_or(0.0))
            .min(hi);
        if self.eval(lo).partial_cmp(&level).is_none_or(|o| o.is_gt()) {
            // Component inverses can overshoot by rounding; x = 0 is always
            // a valid lower endpoint here (f(0) = a0 + b0 <= level).
            lo = 0.0;
        }
        invert_monotone(|x| self.eval(x), level, lo, hi, BisectionConfig::new()).ok()
    }

    fn derivative(&self, x: f64) -> f64 {
        self.a.derivative(x) + self.b.derivative(x)
    }

    fn lipschitz_bound(&self) -> f64 {
        self.a.lipschitz_bound() + self.b.lipschitz_bound()
    }
}

/// A cost multiplied by a non-negative factor, `f(x) = factor * inner(x)`.
///
/// Useful for modelling a worker slowdown (factor > 1) or speedup applied
/// uniformly to an existing cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledCost<C> {
    inner: C,
    factor: f64,
}

impl<C: CostFunction> ScaledCost<C> {
    /// Creates `f(x) = factor * inner(x)`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn new(inner: C, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be finite and non-negative");
        Self { inner, factor }
    }
}

impl<C: CostFunction> CostFunction for ScaledCost<C> {
    fn eval(&self, x: f64) -> f64 {
        self.factor * self.inner.eval(x)
    }

    fn max_share_within(&self, level: f64) -> Option<f64> {
        if self.factor == 0.0 {
            return if level >= 0.0 { Some(1.0) } else { None };
        }
        self.inner.max_share_within(level / self.factor)
    }

    fn derivative(&self, x: f64) -> f64 {
        self.factor * self.inner.derivative(x)
    }

    fn lipschitz_bound(&self) -> f64 {
        self.factor * self.inner.lipschitz_bound()
    }
}

/// A cost shifted by a constant, `f(x) = inner(x) + shift`.
///
/// Models a load-independent overhead (e.g. a fixed synchronization
/// barrier) added to an existing cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftedCost<C> {
    inner: C,
    shift: f64,
}

impl<C: CostFunction> ShiftedCost<C> {
    /// Creates `f(x) = inner(x) + shift`.
    ///
    /// # Panics
    ///
    /// Panics if `shift` is non-finite.
    pub fn new(inner: C, shift: f64) -> Self {
        assert!(shift.is_finite(), "shift must be finite");
        Self { inner, shift }
    }
}

impl<C: CostFunction> CostFunction for ShiftedCost<C> {
    fn eval(&self, x: f64) -> f64 {
        self.inner.eval(x) + self.shift
    }

    fn max_share_within(&self, level: f64) -> Option<f64> {
        self.inner.max_share_within(level - self.shift)
    }

    fn derivative(&self, x: f64) -> f64 {
        self.inner.derivative(x)
    }

    fn lipschitz_bound(&self) -> f64 {
        self.inner.lipschitz_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{LinearCost, PowerCost};
    use super::*;

    #[test]
    fn sum_evaluates_and_differentiates() {
        let f = SumCost::new(LinearCost::new(2.0, 1.0), PowerCost::new(1.0, 2.0, 0.0));
        assert!((f.eval(0.5) - (2.0 * 0.5 + 1.0 + 0.25)).abs() < 1e-12);
        assert!((f.derivative(0.5) - 3.0).abs() < 1e-12);
        assert!((f.lipschitz_bound() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sum_inverse_via_default_bisection() {
        let f = SumCost::new(LinearCost::new(2.0, 0.0), PowerCost::new(1.0, 2.0, 0.0));
        // f(x) = 2x + x²; f(0.5) = 1.25.
        let x = f.max_share_within(1.25).unwrap();
        assert!((x - 0.5).abs() < 1e-8);
    }

    #[test]
    fn sum_inverse_round_trips_across_shapes() {
        use super::super::{CostFunction as _, ReciprocalCost};
        let sums: [SumCost<LinearCost, ReciprocalCost>; 3] = [
            SumCost::new(LinearCost::new(2.0, 0.0), ReciprocalCost::new(0.0, 1.0, 1.5)),
            SumCost::new(LinearCost::new(0.0, 0.3), ReciprocalCost::new(0.2, 0.5, 2.0)),
            SumCost::new(LinearCost::new(5.0, 1.0), ReciprocalCost::new(0.0, 0.0, 3.0)),
        ];
        for (k, f) in sums.iter().enumerate() {
            for x in [0.0, 0.1, 0.45, 0.8, 1.0] {
                let level = f.eval(x);
                let back = f.max_share_within(level).unwrap();
                assert!((back - x).abs() < 1e-8, "sum {k}: x={x} back={back}");
            }
        }
    }

    #[test]
    fn sum_inverse_matches_full_bracket_bisection() {
        use crate::solver::{invert_monotone, BisectionConfig};
        let f = SumCost::new(LinearCost::new(1.5, 0.2), PowerCost::new(2.0, 3.0, 0.1));
        for level in [0.31, 0.5, 1.0, 2.7, 10.0] {
            let narrowed = f.max_share_within(level).unwrap();
            let full =
                invert_monotone(|x| f.eval(x), level, 0.0, 1.0, BisectionConfig::new()).unwrap();
            assert!(
                (narrowed - full).abs() <= 1e-9,
                "level {level}: narrowed {narrowed} vs full {full}"
            );
        }
    }

    #[test]
    fn sum_inverse_edge_levels() {
        let f = SumCost::new(LinearCost::new(2.0, 0.5), LinearCost::new(1.0, 0.25));
        // Below f(0) = 0.75 there is no acceptable share.
        assert_eq!(f.max_share_within(0.7), None);
        // Exactly f(0): only the empty share qualifies.
        assert!(f.max_share_within(0.75).unwrap().abs() < 1e-9);
        // Above f(1) = 3.75: truncated to the full share.
        assert_eq!(f.max_share_within(100.0), Some(1.0));
    }

    #[test]
    fn scaled_inverse_delegates_exactly() {
        let f = ScaledCost::new(LinearCost::new(2.0, 1.0), 3.0);
        // f(x) = 3(2x + 1); f(0.5) = 6.
        assert_eq!(f.eval(0.5), 6.0);
        assert_eq!(f.max_share_within(6.0), Some(0.5));
        assert_eq!(f.derivative(0.1), 6.0);
        assert_eq!(f.lipschitz_bound(), 6.0);
    }

    #[test]
    fn zero_scale_is_free() {
        let f = ScaledCost::new(LinearCost::new(2.0, 1.0), 0.0);
        assert_eq!(f.eval(0.9), 0.0);
        assert_eq!(f.max_share_within(0.0), Some(1.0));
        assert_eq!(f.max_share_within(-1.0), None);
    }

    #[test]
    fn shifted_inverse_delegates_exactly() {
        let f = ShiftedCost::new(LinearCost::new(2.0, 0.0), 0.5);
        assert_eq!(f.eval(0.25), 1.0);
        assert_eq!(f.max_share_within(1.0), Some(0.25));
        assert_eq!(f.max_share_within(0.4), None);
        assert_eq!(f.derivative(0.3), 2.0);
        assert_eq!(f.lipschitz_bound(), 2.0);
    }

    #[test]
    fn combinators_nest() {
        let f = ShiftedCost::new(ScaledCost::new(LinearCost::new(1.0, 0.0), 2.0), 1.0);
        // f(x) = 2x + 1.
        assert_eq!(f.eval(0.5), 2.0);
        assert_eq!(f.max_share_within(2.0), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn negative_factor_is_rejected() {
        let _ = ScaledCost::new(LinearCost::new(1.0, 0.0), -1.0);
    }
}
