//! Combinators that build compound costs from simpler ones.

use super::CostFunction;

/// The sum of two cost functions, `f(x) = a(x) + b(x)`.
///
/// This mirrors the paper's decomposition of training latency into
/// processing plus communication components, but for arbitrary shapes —
/// e.g. an affine compute term plus a queueing transmission term.
///
/// # Examples
///
/// ```
/// use dolbie_core::cost::{CostFunction, LinearCost, SumCost};
///
/// let f = SumCost::new(LinearCost::new(1.0, 0.0), LinearCost::new(0.0, 0.5));
/// assert_eq!(f.eval(0.5), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SumCost<A, B> {
    a: A,
    b: B,
}

impl<A: CostFunction, B: CostFunction> SumCost<A, B> {
    /// Creates `f(x) = a(x) + b(x)`.
    pub fn new(a: A, b: B) -> Self {
        Self { a, b }
    }
}

impl<A: CostFunction, B: CostFunction> CostFunction for SumCost<A, B> {
    fn eval(&self, x: f64) -> f64 {
        self.a.eval(x) + self.b.eval(x)
    }

    fn derivative(&self, x: f64) -> f64 {
        self.a.derivative(x) + self.b.derivative(x)
    }

    fn lipschitz_bound(&self) -> f64 {
        self.a.lipschitz_bound() + self.b.lipschitz_bound()
    }
}

/// A cost multiplied by a non-negative factor, `f(x) = factor * inner(x)`.
///
/// Useful for modelling a worker slowdown (factor > 1) or speedup applied
/// uniformly to an existing cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledCost<C> {
    inner: C,
    factor: f64,
}

impl<C: CostFunction> ScaledCost<C> {
    /// Creates `f(x) = factor * inner(x)`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn new(inner: C, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be finite and non-negative");
        Self { inner, factor }
    }
}

impl<C: CostFunction> CostFunction for ScaledCost<C> {
    fn eval(&self, x: f64) -> f64 {
        self.factor * self.inner.eval(x)
    }

    fn max_share_within(&self, level: f64) -> Option<f64> {
        if self.factor == 0.0 {
            return if level >= 0.0 { Some(1.0) } else { None };
        }
        self.inner.max_share_within(level / self.factor)
    }

    fn derivative(&self, x: f64) -> f64 {
        self.factor * self.inner.derivative(x)
    }

    fn lipschitz_bound(&self) -> f64 {
        self.factor * self.inner.lipschitz_bound()
    }
}

/// A cost shifted by a constant, `f(x) = inner(x) + shift`.
///
/// Models a load-independent overhead (e.g. a fixed synchronization
/// barrier) added to an existing cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftedCost<C> {
    inner: C,
    shift: f64,
}

impl<C: CostFunction> ShiftedCost<C> {
    /// Creates `f(x) = inner(x) + shift`.
    ///
    /// # Panics
    ///
    /// Panics if `shift` is non-finite.
    pub fn new(inner: C, shift: f64) -> Self {
        assert!(shift.is_finite(), "shift must be finite");
        Self { inner, shift }
    }
}

impl<C: CostFunction> CostFunction for ShiftedCost<C> {
    fn eval(&self, x: f64) -> f64 {
        self.inner.eval(x) + self.shift
    }

    fn max_share_within(&self, level: f64) -> Option<f64> {
        self.inner.max_share_within(level - self.shift)
    }

    fn derivative(&self, x: f64) -> f64 {
        self.inner.derivative(x)
    }

    fn lipschitz_bound(&self) -> f64 {
        self.inner.lipschitz_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{LinearCost, PowerCost};
    use super::*;

    #[test]
    fn sum_evaluates_and_differentiates() {
        let f = SumCost::new(LinearCost::new(2.0, 1.0), PowerCost::new(1.0, 2.0, 0.0));
        assert!((f.eval(0.5) - (2.0 * 0.5 + 1.0 + 0.25)).abs() < 1e-12);
        assert!((f.derivative(0.5) - 3.0).abs() < 1e-12);
        assert!((f.lipschitz_bound() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sum_inverse_via_default_bisection() {
        let f = SumCost::new(LinearCost::new(2.0, 0.0), PowerCost::new(1.0, 2.0, 0.0));
        // f(x) = 2x + x²; f(0.5) = 1.25.
        let x = f.max_share_within(1.25).unwrap();
        assert!((x - 0.5).abs() < 1e-8);
    }

    #[test]
    fn scaled_inverse_delegates_exactly() {
        let f = ScaledCost::new(LinearCost::new(2.0, 1.0), 3.0);
        // f(x) = 3(2x + 1); f(0.5) = 6.
        assert_eq!(f.eval(0.5), 6.0);
        assert_eq!(f.max_share_within(6.0), Some(0.5));
        assert_eq!(f.derivative(0.1), 6.0);
        assert_eq!(f.lipschitz_bound(), 6.0);
    }

    #[test]
    fn zero_scale_is_free() {
        let f = ScaledCost::new(LinearCost::new(2.0, 1.0), 0.0);
        assert_eq!(f.eval(0.9), 0.0);
        assert_eq!(f.max_share_within(0.0), Some(1.0));
        assert_eq!(f.max_share_within(-1.0), None);
    }

    #[test]
    fn shifted_inverse_delegates_exactly() {
        let f = ShiftedCost::new(LinearCost::new(2.0, 0.0), 0.5);
        assert_eq!(f.eval(0.25), 1.0);
        assert_eq!(f.max_share_within(1.0), Some(0.25));
        assert_eq!(f.max_share_within(0.4), None);
        assert_eq!(f.derivative(0.3), 2.0);
        assert_eq!(f.lipschitz_bound(), 2.0);
    }

    #[test]
    fn combinators_nest() {
        let f = ShiftedCost::new(ScaledCost::new(LinearCost::new(1.0, 0.0), 2.0), 1.0);
        // f(x) = 2x + 1.
        assert_eq!(f.eval(0.5), 2.0);
        assert_eq!(f.max_share_within(2.0), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn negative_factor_is_rejected() {
        let _ = ScaledCost::new(LinearCost::new(1.0, 0.0), -1.0);
    }
}
