//! Cost functions fitted from measurements.
//!
//! Real deployments rarely know `f_{i,t}` in closed form: a worker
//! observes (share, latency) pairs and must *reconstruct* an increasing
//! cost function to evaluate the eq. (4) inverse. [`EmpiricalCost`] does
//! exactly that: it fits the best non-decreasing step/linear function to
//! the samples via isotonic regression (pool-adjacent-violators) and
//! interpolates linearly between the fitted knots.

use super::{CostFunction, PiecewiseLinearCost};

/// A non-decreasing cost fitted to noisy `(share, cost)` measurements by
/// isotonic regression (PAV) followed by linear interpolation.
///
/// # Examples
///
/// ```
/// use dolbie_core::cost::{CostFunction, EmpiricalCost};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Noisy measurements of f(x) = 2x.
/// let samples = vec![(0.0, 0.05), (0.25, 0.45), (0.5, 1.1), (0.75, 1.45), (1.0, 2.0)];
/// let f = EmpiricalCost::fit(samples)?;
/// assert!((f.eval(0.5) - 1.0).abs() < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCost {
    fitted: PiecewiseLinearCost,
}

/// Error fitting an [`EmpiricalCost`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two samples were provided.
    TooFewSamples,
    /// A sample contained a non-finite coordinate.
    NonFinite,
    /// All samples share the same abscissa, so no function of the share
    /// can be identified.
    DegenerateAbscissae,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewSamples => write!(f, "need at least two samples to fit"),
            FitError::NonFinite => write!(f, "samples must be finite"),
            FitError::DegenerateAbscissae => {
                write!(f, "samples must cover at least two distinct shares")
            }
        }
    }
}

impl std::error::Error for FitError {}

impl EmpiricalCost {
    /// Fits the isotonic (least-squares non-decreasing) function to the
    /// samples.
    ///
    /// Duplicate abscissae are averaged first; the pool-adjacent-violators
    /// pass then enforces monotonicity.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] if fewer than two samples are given, any
    /// coordinate is non-finite, or all samples share one abscissa.
    pub fn fit(mut samples: Vec<(f64, f64)>) -> Result<Self, FitError> {
        if samples.len() < 2 {
            return Err(FitError::TooFewSamples);
        }
        if samples.iter().any(|&(x, y)| !x.is_finite() || !y.is_finite()) {
            return Err(FitError::NonFinite);
        }
        samples.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values compare"));

        // Collapse duplicate abscissae by averaging their ordinates.
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        for (x, y) in samples {
            if let Some(&last) = xs.last() {
                if (x - last).abs() < 1e-12 {
                    let k = ys.len() - 1;
                    let w = weights[k];
                    ys[k] = (ys[k] * w + y) / (w + 1.0);
                    weights[k] = w + 1.0;
                    continue;
                }
            }
            xs.push(x);
            ys.push(y);
            weights.push(1.0);
        }
        if xs.len() < 2 {
            return Err(FitError::DegenerateAbscissae);
        }

        // Pool-adjacent-violators: merge blocks until weighted means are
        // non-decreasing.
        struct Block {
            mean: f64,
            weight: f64,
            last_index: usize,
        }
        let mut blocks: Vec<Block> = Vec::with_capacity(ys.len());
        for (i, (&y, &w)) in ys.iter().zip(&weights).enumerate() {
            blocks.push(Block { mean: y, weight: w, last_index: i });
            while blocks.len() >= 2 {
                let n = blocks.len();
                if blocks[n - 2].mean <= blocks[n - 1].mean {
                    break;
                }
                let top = blocks.pop().expect("n >= 2");
                let prev = blocks.last_mut().expect("n >= 2");
                let total = prev.weight + top.weight;
                prev.mean = (prev.mean * prev.weight + top.mean * top.weight) / total;
                prev.weight = total;
                prev.last_index = top.last_index;
            }
        }

        // Expand the block means back into fitted knots; nudge exactly-flat
        // x-runs apart is unnecessary since duplicates were merged.
        let mut fitted_y = vec![0.0; xs.len()];
        let mut start = 0;
        for b in &blocks {
            for item in fitted_y.iter_mut().take(b.last_index + 1).skip(start) {
                *item = b.mean;
            }
            start = b.last_index + 1;
        }
        let knots: Vec<(f64, f64)> = xs.into_iter().zip(fitted_y).collect();
        let fitted = PiecewiseLinearCost::new(knots)
            .expect("PAV output is sorted and non-decreasing by construction");
        Ok(Self { fitted })
    }

    /// The fitted knot points `(share, fitted cost)`.
    pub fn knots(&self) -> &[(f64, f64)] {
        self.fitted.knots()
    }
}

impl CostFunction for EmpiricalCost {
    fn eval(&self, x: f64) -> f64 {
        self.fitted.eval(x)
    }

    fn max_share_within(&self, level: f64) -> Option<f64> {
        self.fitted.max_share_within(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_monotone_data_exactly() {
        let f = EmpiricalCost::fit(vec![(0.0, 1.0), (0.5, 2.0), (1.0, 4.0)]).unwrap();
        assert_eq!(f.eval(0.0), 1.0);
        assert_eq!(f.eval(0.5), 2.0);
        assert!((f.eval(0.75) - 3.0).abs() < 1e-12);
        assert_eq!(f.knots().len(), 3);
    }

    #[test]
    fn pools_violators_to_weighted_means() {
        // Classic PAV case: 1, 3, 2 -> 1, 2.5, 2.5.
        let f = EmpiricalCost::fit(vec![(0.0, 1.0), (0.5, 3.0), (1.0, 2.0)]).unwrap();
        assert_eq!(f.eval(0.0), 1.0);
        assert!((f.eval(0.5) - 2.5).abs() < 1e-12);
        assert!((f.eval(1.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn averages_duplicate_abscissae() {
        let f = EmpiricalCost::fit(vec![(0.5, 1.0), (0.5, 3.0), (1.0, 4.0), (0.0, 0.0)]).unwrap();
        assert!((f.eval(0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fit_is_usable_by_dolbie_inverse() {
        // Noisy samples of the latency model; the inverse should be close
        // to the truth.
        let truth = |x: f64| 2.0 * x + 0.1;
        let noise = [0.03, -0.02, 0.01, -0.04, 0.02, 0.0];
        let samples: Vec<(f64, f64)> = (0..6)
            .map(|k| {
                let x = k as f64 / 5.0;
                (x, truth(x) + noise[k])
            })
            .collect();
        let f = EmpiricalCost::fit(samples).unwrap();
        let x = f.max_share_within(1.1).unwrap();
        // Truth: max{x : 2x + 0.1 <= 1.1} = 0.5.
        assert!((x - 0.5).abs() < 0.06, "x = {x}");
    }

    #[test]
    fn fit_errors() {
        assert_eq!(EmpiricalCost::fit(vec![(0.0, 1.0)]).unwrap_err(), FitError::TooFewSamples);
        assert_eq!(
            EmpiricalCost::fit(vec![(0.0, f64::NAN), (1.0, 1.0)]).unwrap_err(),
            FitError::NonFinite
        );
        assert_eq!(
            EmpiricalCost::fit(vec![(0.5, 1.0), (0.5, 2.0)]).unwrap_err(),
            FitError::DegenerateAbscissae
        );
        assert!(!FitError::TooFewSamples.to_string().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The fit is always non-decreasing, whatever the data.
        #[test]
        fn fit_is_monotone(ys in proptest::collection::vec(-10.0f64..10.0, 2..20)) {
            let samples: Vec<(f64, f64)> = ys
                .iter()
                .enumerate()
                .map(|(i, &y)| (i as f64 / (ys.len() - 1) as f64, y))
                .collect();
            let f = EmpiricalCost::fit(samples).unwrap();
            let mut last = f.eval(0.0);
            for k in 1..=32 {
                let v = f.eval(k as f64 / 32.0);
                prop_assert!(v + 1e-9 >= last);
                last = v;
            }
        }

        /// Fitting already-monotone data is the identity at the knots.
        #[test]
        fn monotone_data_is_fixed_point(
            mut ys in proptest::collection::vec(0.0f64..10.0, 2..15)
        ) {
            ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let samples: Vec<(f64, f64)> = ys
                .iter()
                .enumerate()
                .map(|(i, &y)| (i as f64 / (ys.len() - 1) as f64, y))
                .collect();
            let f = EmpiricalCost::fit(samples.clone()).unwrap();
            for (x, y) in samples {
                prop_assert!((f.eval(x) - y).abs() < 1e-9);
            }
        }
    }
}
