//! Local cost functions `f_{i,t}`.
//!
//! In the paper's formulation (Section III-C), each worker `i` has a local
//! cost `f_{i,t}(x_{i,t})` that is *increasing* (not necessarily strictly)
//! in its workload share and that varies arbitrarily over time. The cost
//! functions of a round are revealed to the workers only **after** the
//! decision is played.
//!
//! [`CostFunction`] captures the algorithmic interface the paper relies on:
//!
//! - evaluation (`eval`),
//! - the monotone inverse used for the maximum acceptable workload
//!   `x'_{i,t}` of eq. (4) ([`CostFunction::max_share_within`]), with a
//!   default bisection implementation as suggested in §IV-A,
//! - a derivative (needed only by the OGD *baseline*; DOLBIE itself is
//!   gradient-free), with a numeric default.
//!
//! The submodules provide the concrete shapes used across the evaluation:
//! affine processing+communication latency (§III-A), polynomial and
//! exponential non-linear costs (the regime where proportional policies like
//! ABS break down, §II-B), piecewise-linear and plateaued costs (the
//! non-strictly-increasing case), and saturating/queueing costs for the edge
//! scenario.

mod combinators;
mod empirical;
mod exponential;
mod latency;
mod linear;
mod piecewise;
mod power;
mod reciprocal;

pub use combinators::{ScaledCost, ShiftedCost, SumCost};
pub use empirical::{EmpiricalCost, FitError};
pub use exponential::ExponentialCost;
pub use latency::LatencyCost;
pub use linear::LinearCost;
pub use piecewise::{PiecewiseError, PiecewiseLinearCost};
pub use power::PowerCost;
pub use reciprocal::ReciprocalCost;

use crate::solver::{invert_monotone, BisectionConfig};
use std::fmt;

/// A boxed, dynamically-typed cost function as revealed by an environment.
pub type DynCost = Box<dyn CostFunction>;

/// A worker's local cost as a function of its workload share.
///
/// # Contract
///
/// Implementations must be non-decreasing on `[0, 1]` and finite there.
/// `max_share_within` and `derivative` have correct defaults for any such
/// function; implementations with closed forms should override them for
/// speed and precision (the affine latency model of §VI-A does).
///
/// # Examples
///
/// ```
/// use dolbie_core::cost::{CostFunction, LinearCost};
///
/// let f = LinearCost::new(2.0, 1.0); // f(x) = 2x + 1
/// assert_eq!(f.eval(0.5), 2.0);
/// assert_eq!(f.max_share_within(2.0), Some(0.5));
/// assert_eq!(f.max_share_within(0.5), None); // even x = 0 costs 1
/// ```
pub trait CostFunction: fmt::Debug + Send + Sync {
    /// The cost incurred when this worker executes share `x` of the total
    /// workload. Must be non-decreasing and finite on `[0, 1]`.
    fn eval(&self, x: f64) -> f64;

    /// The maximum share this worker could take without its cost exceeding
    /// `level`, truncated to the total workload: the quantity
    /// `x' = min(1, max{x : f(x) <= level})` of eq. (4) in the paper.
    ///
    /// Returns `None` when even an empty share costs more than `level`
    /// (`f(0) > level`), which for the oracle means `level` is an
    /// infeasible global cost.
    fn max_share_within(&self, level: f64) -> Option<f64> {
        if self.eval(0.0) > level {
            return None;
        }
        // eval(0) <= level was just checked, so the only possible errors
        // (non-finite values) would violate the trait contract; surface
        // them as a truncation to the feasible side rather than panicking.
        invert_monotone(|x| self.eval(x), level, 0.0, 1.0, BisectionConfig::new()).ok()
    }

    /// Derivative of the cost at `x`, clamped to the `[0, 1]` domain.
    ///
    /// Only the OGD baseline needs this (to form a subgradient of the
    /// pointwise max); DOLBIE never calls it. The default is a symmetric
    /// finite difference shrunk at the domain boundary.
    fn derivative(&self, x: f64) -> f64 {
        let h = 1e-6;
        let lo = (x - h).max(0.0);
        let hi = (x + h).min(1.0);
        if hi <= lo {
            return 0.0;
        }
        (self.eval(hi) - self.eval(lo)) / (hi - lo)
    }

    /// An upper bound on the derivative over `[0, 1]` — an estimate of the
    /// Lipschitz constant `L` of Assumption 1, used when evaluating the
    /// Theorem 1 regret bound. The default samples the derivative on a
    /// uniform grid; exact implementations should override.
    fn lipschitz_bound(&self) -> f64 {
        let mut best: f64 = 0.0;
        for k in 0..=32 {
            let x = k as f64 / 32.0;
            best = best.max(self.derivative(x).abs());
        }
        best
    }

    /// Concrete-type escape hatch for the fused kernel
    /// ([`kernel::CostSlab::from_costs`](crate::kernel::CostSlab::from_costs)):
    /// families whose closed-form inverse the kernel can lay out as flat
    /// parameter slabs return `Some(self)` so callers may downcast; the
    /// default `None` keeps every other implementation on the generic
    /// trait-object path. Purely an optimization hook — it never changes
    /// semantics.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

impl<T: CostFunction + ?Sized> CostFunction for &T {
    fn eval(&self, x: f64) -> f64 {
        (**self).eval(x)
    }

    fn max_share_within(&self, level: f64) -> Option<f64> {
        (**self).max_share_within(level)
    }

    fn derivative(&self, x: f64) -> f64 {
        (**self).derivative(x)
    }

    fn lipschitz_bound(&self) -> f64 {
        (**self).lipschitz_bound()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }
}

impl<T: CostFunction + ?Sized> CostFunction for Box<T> {
    fn eval(&self, x: f64) -> f64 {
        (**self).eval(x)
    }

    fn max_share_within(&self, level: f64) -> Option<f64> {
        (**self).max_share_within(level)
    }

    fn derivative(&self, x: f64) -> f64 {
        (**self).derivative(x)
    }

    fn lipschitz_bound(&self) -> f64 {
        (**self).lipschitz_bound()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }
}

/// Largest Lipschitz bound across a round's cost functions: the constant
/// `L` of Assumption 1 for that round.
pub fn round_lipschitz(costs: &[DynCost]) -> f64 {
    costs.iter().map(|f| f.lipschitz_bound()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_inverse_matches_exact_for_linear() {
        // Use the default (bisection) path by wrapping in a type that does
        // not override `max_share_within`.
        #[derive(Debug)]
        struct Plain(LinearCost);
        impl CostFunction for Plain {
            fn eval(&self, x: f64) -> f64 {
                self.0.eval(x)
            }
        }
        let plain = Plain(LinearCost::new(3.0, 0.5));
        let exact = LinearCost::new(3.0, 0.5);
        for level in [0.5, 1.0, 2.0, 3.5, 10.0] {
            let a = plain.max_share_within(level).unwrap();
            let b = exact.max_share_within(level).unwrap();
            assert!((a - b).abs() < 1e-8, "level={level}: {a} vs {b}");
        }
        assert_eq!(plain.max_share_within(0.4), None);
    }

    #[test]
    fn default_derivative_is_accurate() {
        #[derive(Debug)]
        struct Quad;
        impl CostFunction for Quad {
            fn eval(&self, x: f64) -> f64 {
                x * x
            }
        }
        let f = Quad;
        assert!((f.derivative(0.5) - 1.0).abs() < 1e-4);
        // Boundary handling: one-sided difference at the edges.
        assert!(f.derivative(0.0) >= 0.0);
        assert!((f.derivative(1.0) - 2.0).abs() < 1e-4);
    }

    #[test]
    fn lipschitz_default_samples_grid() {
        #[derive(Debug)]
        struct Cube;
        impl CostFunction for Cube {
            fn eval(&self, x: f64) -> f64 {
                x * x * x
            }
        }
        let l = Cube.lipschitz_bound();
        assert!((l - 3.0).abs() < 1e-3, "l={l}");
    }

    #[test]
    fn references_and_boxes_are_cost_functions() {
        let f = LinearCost::new(1.0, 0.0);
        let r: &dyn CostFunction = &f;
        assert_eq!(r.eval(0.25), 0.25);
        let b: DynCost = Box::new(f);
        assert_eq!(b.eval(0.25), 0.25);
        assert_eq!(b.max_share_within(0.5), Some(0.5));
        assert!((CostFunction::derivative(&b, 0.3) - 1.0).abs() < 1e-6);
        assert!((b.lipschitz_bound() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn round_lipschitz_takes_max() {
        let costs: Vec<DynCost> =
            vec![Box::new(LinearCost::new(2.0, 0.0)), Box::new(LinearCost::new(5.0, 1.0))];
        assert!((round_lipschitz(&costs) - 5.0).abs() < 1e-9);
        assert_eq!(round_lipschitz(&[]), 0.0);
    }
}
