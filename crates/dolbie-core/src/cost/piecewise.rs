//! Piecewise-linear, possibly plateaued cost functions.

use super::CostFunction;

/// Non-decreasing piecewise-linear cost defined by knot points.
///
/// The paper only requires `f_{i,t}` to be increasing "but not necessarily
/// strictly increasing"; plateaus matter because the maximum acceptable
/// workload `x' = max{x : f(x) <= l}` must pick the *right edge* of a
/// plateau at level `l`. This type exercises that case throughout the test
/// suite.
///
/// The function is defined on `[0, 1]` by linear interpolation between
/// knots `(x_k, y_k)`; evaluation outside the knot range clamps to the
/// nearest knot value.
///
/// # Examples
///
/// ```
/// use dolbie_core::cost::{CostFunction, PiecewiseLinearCost};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Flat at 1.0 on [0.2, 0.6], then rising.
/// let f = PiecewiseLinearCost::new(vec![
///     (0.0, 0.0), (0.2, 1.0), (0.6, 1.0), (1.0, 3.0),
/// ])?;
/// assert_eq!(f.eval(0.4), 1.0);
/// assert!((f.max_share_within(1.0).unwrap() - 0.6).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinearCost {
    knots: Vec<(f64, f64)>,
}

/// Error constructing a [`PiecewiseLinearCost`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PiecewiseError {
    /// Fewer than two knots were supplied.
    TooFewKnots,
    /// Knot abscissae were not strictly increasing.
    UnsortedKnots,
    /// Knot ordinates decreased (the cost must be non-decreasing).
    DecreasingValues,
    /// A knot coordinate was non-finite.
    NonFinite,
}

impl std::fmt::Display for PiecewiseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PiecewiseError::TooFewKnots => write!(f, "need at least two knots"),
            PiecewiseError::UnsortedKnots => write!(f, "knot x-coordinates must strictly increase"),
            PiecewiseError::DecreasingValues => write!(f, "knot values must be non-decreasing"),
            PiecewiseError::NonFinite => write!(f, "knot coordinates must be finite"),
        }
    }
}

impl std::error::Error for PiecewiseError {}

impl PiecewiseLinearCost {
    /// Creates a piecewise-linear cost from knots `(x_k, y_k)`.
    ///
    /// # Errors
    ///
    /// Returns [`PiecewiseError`] if fewer than two knots are given, the
    /// abscissae are not strictly increasing, the ordinates decrease, or any
    /// coordinate is non-finite.
    pub fn new(knots: Vec<(f64, f64)>) -> Result<Self, PiecewiseError> {
        if knots.len() < 2 {
            return Err(PiecewiseError::TooFewKnots);
        }
        for window in knots.windows(2) {
            let (x0, y0) = window[0];
            let (x1, y1) = window[1];
            if !(x0.is_finite() && y0.is_finite() && x1.is_finite() && y1.is_finite()) {
                return Err(PiecewiseError::NonFinite);
            }
            if x1 <= x0 {
                return Err(PiecewiseError::UnsortedKnots);
            }
            if y1 < y0 {
                return Err(PiecewiseError::DecreasingValues);
            }
        }
        Ok(Self { knots })
    }

    /// The knot points.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }
}

impl CostFunction for PiecewiseLinearCost {
    fn eval(&self, x: f64) -> f64 {
        let first = self.knots[0];
        let last = self.knots[self.knots.len() - 1];
        if x <= first.0 {
            return first.1;
        }
        if x >= last.0 {
            return last.1;
        }
        for window in self.knots.windows(2) {
            let (x0, y0) = window[0];
            let (x1, y1) = window[1];
            if x <= x1 {
                let t = (x - x0) / (x1 - x0);
                return y0 + t * (y1 - y0);
            }
        }
        last.1
    }

    fn max_share_within(&self, level: f64) -> Option<f64> {
        if self.eval(0.0) > level {
            return None;
        }
        let last = self.knots[self.knots.len() - 1];
        if last.1 <= level {
            // Beyond the final knot the function is clamped to `last.1`,
            // which is within the level, so the whole workload fits.
            return Some(1.0);
        }
        // Walk segments; the answer lies in the last segment whose start is
        // within the level.
        let mut best = 0.0f64;
        for window in self.knots.windows(2) {
            let (x0, y0) = window[0];
            let (x1, y1) = window[1];
            if y0 > level {
                break;
            }
            if y1 <= level {
                best = x1;
                continue;
            }
            // Level crossed inside this segment (y0 <= level < y1); the
            // segment is strictly increasing here since y1 > y0.
            let t = (level - y0) / (y1 - y0);
            best = x0 + t * (x1 - x0);
            break;
        }
        Some(best.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_plateau_ramp() -> PiecewiseLinearCost {
        PiecewiseLinearCost::new(vec![(0.0, 0.0), (0.2, 1.0), (0.6, 1.0), (1.0, 3.0)]).unwrap()
    }

    #[test]
    fn eval_interpolates() {
        let f = ramp_plateau_ramp();
        assert!((f.eval(0.1) - 0.5).abs() < 1e-12);
        assert_eq!(f.eval(0.4), 1.0);
        assert!((f.eval(0.8) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn eval_clamps_outside_knots() {
        let f = PiecewiseLinearCost::new(vec![(0.1, 1.0), (0.9, 2.0)]).unwrap();
        assert_eq!(f.eval(0.0), 1.0);
        assert_eq!(f.eval(1.0), 2.0);
    }

    #[test]
    fn inverse_picks_plateau_right_edge() {
        let f = ramp_plateau_ramp();
        let x = f.max_share_within(1.0).unwrap();
        assert!((x - 0.6).abs() < 1e-12, "x={x}");
    }

    #[test]
    fn inverse_within_rising_segment() {
        let f = ramp_plateau_ramp();
        let x = f.max_share_within(2.0).unwrap();
        assert!((x - 0.8).abs() < 1e-12);
    }

    #[test]
    fn inverse_saturates_and_rejects() {
        let f = ramp_plateau_ramp();
        assert_eq!(f.max_share_within(5.0), Some(1.0));
        let g = PiecewiseLinearCost::new(vec![(0.0, 2.0), (1.0, 3.0)]).unwrap();
        assert_eq!(g.max_share_within(1.0), None);
    }

    #[test]
    fn inverse_agrees_with_default_bisection() {
        #[derive(Debug)]
        struct ViaDefault(PiecewiseLinearCost);
        impl CostFunction for ViaDefault {
            fn eval(&self, x: f64) -> f64 {
                self.0.eval(x)
            }
        }
        let exact = ramp_plateau_ramp();
        let bisected = ViaDefault(ramp_plateau_ramp());
        for level in [0.25, 0.5, 1.0, 1.5, 2.5, 3.0] {
            let a = exact.max_share_within(level).unwrap();
            let b = bisected.max_share_within(level).unwrap();
            assert!((a - b).abs() < 1e-8, "level={level}: exact {a} vs bisect {b}");
        }
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            PiecewiseLinearCost::new(vec![(0.0, 0.0)]).unwrap_err(),
            PiecewiseError::TooFewKnots
        );
        assert_eq!(
            PiecewiseLinearCost::new(vec![(0.5, 0.0), (0.5, 1.0)]).unwrap_err(),
            PiecewiseError::UnsortedKnots
        );
        assert_eq!(
            PiecewiseLinearCost::new(vec![(0.0, 1.0), (1.0, 0.5)]).unwrap_err(),
            PiecewiseError::DecreasingValues
        );
        assert_eq!(
            PiecewiseLinearCost::new(vec![(0.0, f64::NAN), (1.0, 1.0)]).unwrap_err(),
            PiecewiseError::NonFinite
        );
        assert!(!PiecewiseError::TooFewKnots.to_string().is_empty());
    }

    #[test]
    fn knots_accessor() {
        let f = ramp_plateau_ramp();
        assert_eq!(f.knots().len(), 4);
    }
}
