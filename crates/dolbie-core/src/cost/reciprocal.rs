//! Saturating queueing-style cost `f(x) = base + scale * x / (capacity − x)`.

use super::CostFunction;

/// Queueing-delay-shaped cost that saturates as the share approaches the
/// worker's `capacity`: `f(x) = base + scale * x / (capacity − x)`.
///
/// With `capacity > 1` the function is finite, increasing and convex on
/// `[0, 1]`; it models an edge server whose response time explodes as its
/// assigned load nears its service capacity (paper Example 2, §III-B).
///
/// # Examples
///
/// ```
/// use dolbie_core::cost::{CostFunction, ReciprocalCost};
///
/// let f = ReciprocalCost::new(0.1, 1.0, 2.0);
/// assert!((f.eval(1.0) - 1.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReciprocalCost {
    base: f64,
    scale: f64,
    capacity: f64,
}

impl ReciprocalCost {
    /// Creates `f(x) = base + scale * x / (capacity − x)`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity <= 1` (the function must be finite on `[0, 1]`),
    /// `scale < 0`, `base < 0`, or any parameter is non-finite.
    pub fn new(base: f64, scale: f64, capacity: f64) -> Self {
        assert!(
            base.is_finite() && scale.is_finite() && capacity.is_finite(),
            "parameters must be finite"
        );
        assert!(capacity > 1.0, "capacity must exceed 1 so the cost is finite on [0, 1]");
        assert!(scale >= 0.0, "scale must be non-negative");
        assert!(base >= 0.0, "base must be non-negative");
        Self { base, scale, capacity }
    }

    /// The service capacity parameter.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }
}

impl CostFunction for ReciprocalCost {
    fn eval(&self, x: f64) -> f64 {
        self.base + self.scale * x / (self.capacity - x)
    }

    fn max_share_within(&self, level: f64) -> Option<f64> {
        if self.base > level {
            return None;
        }
        if self.scale == 0.0 {
            return Some(1.0);
        }
        // level = base + scale·x/(c−x)  ⇒  x = c·u/(scale+u), u = level−base.
        let u = level - self.base;
        Some((self.capacity * u / (self.scale + u)).min(1.0))
    }

    fn derivative(&self, x: f64) -> f64 {
        let d = self.capacity - x;
        self.scale * self.capacity / (d * d)
    }

    fn lipschitz_bound(&self) -> f64 {
        self.derivative(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_round_trip() {
        let f = ReciprocalCost::new(0.2, 0.8, 1.5);
        for x in [0.0, 0.4, 0.9, 1.0] {
            let level = f.eval(x);
            let back = f.max_share_within(level).unwrap();
            assert!((back - x).abs() < 1e-10, "x={x} back={back}");
        }
    }

    #[test]
    fn inverse_edges() {
        let f = ReciprocalCost::new(0.5, 1.0, 2.0);
        assert_eq!(f.max_share_within(0.4), None);
        assert_eq!(f.max_share_within(1e9), Some(1.0));
        assert_eq!(f.max_share_within(0.5), Some(0.0));
    }

    #[test]
    fn zero_scale_is_constant() {
        let f = ReciprocalCost::new(0.3, 0.0, 2.0);
        assert_eq!(f.eval(0.99), 0.3);
        assert_eq!(f.max_share_within(0.3), Some(1.0));
    }

    #[test]
    fn derivative_grows_toward_capacity() {
        let f = ReciprocalCost::new(0.0, 1.0, 1.2);
        assert!(f.derivative(0.9) > f.derivative(0.1));
        assert_eq!(f.lipschitz_bound(), f.derivative(1.0));
    }

    #[test]
    fn convexity_spot_check() {
        let f = ReciprocalCost::new(0.0, 1.0, 2.0);
        let mid = f.eval(0.5);
        let chord = (f.eval(0.0) + f.eval(1.0)) / 2.0;
        assert!(mid < chord, "queueing cost should be convex");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn capacity_at_most_one_is_rejected() {
        let _ = ReciprocalCost::new(0.0, 1.0, 1.0);
    }
}
