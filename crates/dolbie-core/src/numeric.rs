//! Compensated summation with a *fixed* reduction structure.
//!
//! The eq. (6) remainder and the Σx = 1 pin both reduce N-element arrays
//! to one scalar. At N = 10^6 a naive left-to-right `f64` sum loses
//! enough precision for shares to drift, and — worse for determinism — a
//! sum whose association order depends on how work was chunked would make
//! the parallel engine's bits depend on `--threads`. Both problems are
//! solved at once by giving every reduction the *same* shape:
//!
//! 1. Neumaier (improved Kahan) compensation inside fixed blocks of
//!    [`SUM_BLOCK`] consecutive elements, and
//! 2. a fixed-order pairwise tree over the per-block partials.
//!
//! The shape depends only on the array length, never on chunk size or
//! thread count, so [`pairwise_neumaier_sum`] and
//! [`pairwise_neumaier_sum_parallel`] are bitwise-equal by construction:
//! the parallel variant merely computes the (independent) block partials
//! on the work-stealing harness and then runs the identical combine.

use crate::parallel::{parallel_map, threads};

/// Elements per compensated block. Block partials are combined by an
/// exact-shape pairwise tree, so this only trades per-block accuracy
/// against tree depth; 128 keeps both error terms far below the 1e-12
/// budget at N = 10^6.
pub const SUM_BLOCK: usize = 128;

/// A running Neumaier-compensated sum.
///
/// Tracks the low-order bits lost by each `+` in a compensation term, so
/// adding 10^6 shares of magnitude 10^-6 keeps |Σx − 1| at the 1e-16
/// level instead of the 1e-11 level. `value()` folds the compensation
/// back in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// An empty (zero) sum.
    pub fn new() -> Self {
        Self { sum: 0.0, compensation: 0.0 }
    }

    /// A sum seeded with `value` and no accumulated error.
    pub fn from_value(value: f64) -> Self {
        Self { sum: value, compensation: 0.0 }
    }

    /// Adds `value`, capturing the rounding error of the addition in the
    /// compensation term (Neumaier's branch handles the case where the
    /// incoming value is larger than the running sum).
    #[inline]
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl Default for NeumaierSum {
    fn default() -> Self {
        Self::new()
    }
}

/// Neumaier-compensates one block of consecutive elements. `pub(crate)`
/// so the fused kernel can produce per-[`SUM_BLOCK`] partials inline with
/// its gain sweep and still land on the exact reduction shape of
/// [`pairwise_neumaier_sum`].
#[inline]
pub(crate) fn block_partial(block: &[f64]) -> f64 {
    let mut acc = NeumaierSum::new();
    for &v in block {
        acc.add(v);
    }
    acc.value()
}

/// Combines per-block partials with a fixed-order pairwise tree:
/// neighbours at stride 1, then 2, then 4, … The association order is a
/// pure function of `partials.len()`, so every caller that produces the
/// same partials gets the same bits. Operates in place (callers may reuse
/// a scratch buffer across rounds); the slice contents are clobbered.
pub(crate) fn combine_partials(partials: &mut [f64]) -> f64 {
    if partials.is_empty() {
        return 0.0;
    }
    let mut len = partials.len();
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            partials[i] = partials[2 * i] + partials[2 * i + 1];
        }
        if len % 2 == 1 {
            partials[half] = partials[len - 1];
            len = half + 1;
        } else {
            len = half;
        }
    }
    partials[0]
}

/// Sums `values` with Neumaier compensation inside fixed [`SUM_BLOCK`]
/// blocks and a fixed-order pairwise tree across blocks.
///
/// The reduction shape depends only on `values.len()`; this is the one
/// order-sensitive primitive both episode engines share, so their sums
/// agree bitwise.
pub fn pairwise_neumaier_sum(values: &[f64]) -> f64 {
    let mut partials: Vec<f64> = values.chunks(SUM_BLOCK).map(block_partial).collect();
    combine_partials(&mut partials)
}

/// [`pairwise_neumaier_sum`] with the block partials computed on the
/// work-stealing harness. Block partials are independent and the combine
/// is identical, so the result is bitwise-equal to the sequential sum at
/// any thread count.
pub fn pairwise_neumaier_sum_parallel(values: &[f64]) -> f64 {
    let blocks = values.len().div_ceil(SUM_BLOCK);
    // Below ~1 block per worker the spawn overhead dwarfs the work.
    if threads() <= 1 || blocks < 8 {
        return pairwise_neumaier_sum(values);
    }
    let mut partials = parallel_map(blocks, |b| {
        block_partial(&values[b * SUM_BLOCK..values.len().min((b + 1) * SUM_BLOCK)])
    });
    combine_partials(&mut partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::set_threads;

    fn splitmix(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn neumaier_recovers_catastrophic_cancellation() {
        // Naive: 1.0 + 1e100 - 1e100 - 1.0 == 0 loses the 1.0 entirely.
        let mut acc = NeumaierSum::new();
        for v in [1.0, 1e100, -1e100, -1.0] {
            acc.add(v);
        }
        assert_eq!(acc.value(), 0.0);
        let mut acc = NeumaierSum::new();
        for v in [1.0, 1e100, 1.0, -1e100] {
            acc.add(v);
        }
        assert_eq!(acc.value(), 2.0);
    }

    #[test]
    fn compensated_sum_beats_naive_at_scale() {
        let n = 1_000_000usize;
        let values = vec![1.0 / n as f64; n];
        let compensated = pairwise_neumaier_sum(&values);
        assert!(
            (compensated - 1.0).abs() < 1e-14,
            "compensated error {:e}",
            (compensated - 1.0).abs()
        );
    }

    #[test]
    fn sum_is_independent_of_length_edge_cases() {
        assert_eq!(pairwise_neumaier_sum(&[]), 0.0);
        assert_eq!(pairwise_neumaier_sum(&[42.0]), 42.0);
        for n in [1, 2, 3, SUM_BLOCK - 1, SUM_BLOCK, SUM_BLOCK + 1, 5 * SUM_BLOCK + 3] {
            let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let expected = (n * (n - 1) / 2) as f64;
            assert_eq!(pairwise_neumaier_sum(&values), expected, "n = {n}");
        }
    }

    #[test]
    fn parallel_sum_is_bitwise_equal_to_sequential() {
        let mut state = 7u64;
        for n in [100, 1000, 12345, 100_000] {
            let values: Vec<f64> = (0..n).map(|_| splitmix(&mut state) - 0.5).collect();
            let sequential = pairwise_neumaier_sum(&values);
            for t in [1, 2, 4, 8] {
                set_threads(t);
                let parallel = pairwise_neumaier_sum_parallel(&values);
                set_threads(0);
                assert_eq!(sequential.to_bits(), parallel.to_bits(), "n = {n}, threads = {t}");
            }
        }
    }

    #[test]
    fn running_sum_tracks_block_sum_closely() {
        // The incremental engine maintains Σx with a running NeumaierSum;
        // check it stays within a few ulps of the fixed-shape reduction.
        let mut state = 99u64;
        let values: Vec<f64> = (0..50_000).map(|_| splitmix(&mut state) * 1e-4).collect();
        let mut running = NeumaierSum::new();
        for &v in &values {
            running.add(v);
        }
        let fixed = pairwise_neumaier_sum(&values);
        assert!((running.value() - fixed).abs() < 1e-12 * fixed.abs().max(1.0));
    }
}
