//! Compensated summation with a *fixed* reduction structure.
//!
//! The eq. (6) remainder and the Σx = 1 pin both reduce N-element arrays
//! to one scalar. At N = 10^6 a naive left-to-right `f64` sum loses
//! enough precision for shares to drift, and — worse for determinism — a
//! sum whose association order depends on how work was chunked would make
//! the parallel engine's bits depend on `--threads`. Both problems are
//! solved at once by giving every reduction the *same* shape:
//!
//! 1. Neumaier (improved Kahan) compensation inside fixed blocks of
//!    [`SUM_BLOCK`] consecutive elements, and
//! 2. a fixed-order pairwise tree over the per-block partials.
//!
//! The shape depends only on the array length, never on chunk size or
//! thread count, so [`pairwise_neumaier_sum`] and
//! [`pairwise_neumaier_sum_parallel`] are bitwise-equal by construction:
//! the parallel variant merely computes the (independent) block partials
//! on the work-stealing harness and then runs the identical combine.

use crate::parallel::{parallel_map, threads};

/// Elements per compensated block. Block partials are combined by an
/// exact-shape pairwise tree, so this only trades per-block accuracy
/// against tree depth; 128 keeps both error terms far below the 1e-12
/// budget at N = 10^6.
pub const SUM_BLOCK: usize = 128;

/// A running Neumaier-compensated sum.
///
/// Tracks the low-order bits lost by each `+` in a compensation term, so
/// adding 10^6 shares of magnitude 10^-6 keeps |Σx − 1| at the 1e-16
/// level instead of the 1e-11 level. `value()` folds the compensation
/// back in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// An empty (zero) sum.
    pub fn new() -> Self {
        Self { sum: 0.0, compensation: 0.0 }
    }

    /// A sum seeded with `value` and no accumulated error.
    pub fn from_value(value: f64) -> Self {
        Self { sum: value, compensation: 0.0 }
    }

    /// Adds `value`, capturing the rounding error of the addition in the
    /// compensation term (Neumaier's branch handles the case where the
    /// incoming value is larger than the running sum).
    #[inline]
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl Default for NeumaierSum {
    fn default() -> Self {
        Self::new()
    }
}

/// Neumaier-compensates one block of consecutive elements. `pub(crate)`
/// so the fused kernel can produce per-[`SUM_BLOCK`] partials inline with
/// its gain sweep and still land on the exact reduction shape of
/// [`pairwise_neumaier_sum`].
#[inline]
pub(crate) fn block_partial(block: &[f64]) -> f64 {
    let mut acc = NeumaierSum::new();
    for &v in block {
        acc.add(v);
    }
    acc.value()
}

/// Combines per-block partials with a fixed-order pairwise tree:
/// neighbours at stride 1, then 2, then 4, … The association order is a
/// pure function of `partials.len()`, so every caller that produces the
/// same partials gets the same bits. Operates in place (callers may reuse
/// a scratch buffer across rounds); the slice contents are clobbered.
pub(crate) fn combine_partials(partials: &mut [f64]) -> f64 {
    if partials.is_empty() {
        return 0.0;
    }
    let mut len = partials.len();
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            partials[i] = partials[2 * i] + partials[2 * i + 1];
        }
        if len % 2 == 1 {
            partials[half] = partials[len - 1];
            len = half + 1;
        } else {
            len = half;
        }
    }
    partials[0]
}

/// Sums `values` with Neumaier compensation inside fixed [`SUM_BLOCK`]
/// blocks and a fixed-order pairwise tree across blocks.
///
/// The reduction shape depends only on `values.len()`; this is the one
/// order-sensitive primitive both episode engines share, so their sums
/// agree bitwise.
pub fn pairwise_neumaier_sum(values: &[f64]) -> f64 {
    let mut partials: Vec<f64> = values.chunks(SUM_BLOCK).map(block_partial).collect();
    combine_partials(&mut partials)
}

/// A resumable [`pairwise_neumaier_sum`] that can be carried across
/// arbitrary contiguous split points with O(log N) state.
///
/// Feeding the cursor the elements of a slice in order and reading
/// [`value`](Self::value) produces the *bitwise* same result as
/// [`pairwise_neumaier_sum`] on the whole slice — no matter where the
/// stream was split, paused, serialized and resumed in between. This is
/// what lets a sharded control plane compute the eq. (6) remainder over a
/// gains array that lives in M disjoint shard processes: the root hands
/// the cursor state to shard 0, shard 0 folds its contiguous slice and
/// hands the state back, the root forwards it to shard 1, and so on —
/// O(M) small messages, zero loss of the fixed reduction shape.
///
/// # How it reproduces the fixed-shape sum
///
/// `combine_partials` over K block partials evaluates to
/// `T(b₁) + (T(b₂) + (… + T(bₖ)))` where `b₁ > b₂ > …` are the powers of
/// two in K's binary decomposition and each `T(b)` is the left-to-right
/// perfect pairwise tree over the next `b` contiguous blocks. A binary
/// counter of subtree partials — merge two stacked subtrees whenever they
/// reach equal size — builds exactly those trees, keeping at most
/// ⌈log₂ K⌉ `(size, value)` pairs alive. The trailing partial block (the
/// ragged tail of `values.chunks(SUM_BLOCK)`) is one more leaf, pushed
/// through the same counter at finalization. The equivalence is
/// property-tested below against `pairwise_neumaier_sum` for every length
/// and split pattern.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SumCursor {
    /// Completed pairwise subtrees as `(blocks, value)`, sizes strictly
    /// decreasing from the bottom of the stack — the binary counter.
    stack: Vec<(u64, f64)>,
    /// Neumaier state of the current in-progress [`SUM_BLOCK`] block.
    partial: NeumaierSum,
    /// Elements absorbed into `partial` so far (`< SUM_BLOCK`).
    partial_len: u32,
}

/// The serializable state of a [`SumCursor`] — plain words a wire
/// protocol can frame without this crate knowing about encodings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CursorState {
    /// The subtree stack, bottom first: `(blocks, value)` pairs.
    pub stack: Vec<(u64, f64)>,
    /// Raw running sum of the in-progress block.
    pub partial_sum: f64,
    /// Raw compensation term of the in-progress block.
    pub partial_compensation: f64,
    /// Elements absorbed into the in-progress block.
    pub partial_len: u32,
}

impl SumCursor {
    /// An empty cursor; [`value`](Self::value) of an empty cursor is `0.0`
    /// (matching `pairwise_neumaier_sum(&[])`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Restores a cursor from serialized state (the inverse of
    /// [`state`](Self::state)).
    pub fn from_state(state: &CursorState) -> Self {
        Self {
            stack: state.stack.clone(),
            partial: NeumaierSum {
                sum: state.partial_sum,
                compensation: state.partial_compensation,
            },
            partial_len: state.partial_len,
        }
    }

    /// Extracts the O(log N) serializable state.
    pub fn state(&self) -> CursorState {
        CursorState {
            stack: self.stack.clone(),
            partial_sum: self.partial.sum,
            partial_compensation: self.partial.compensation,
            partial_len: self.partial_len,
        }
    }

    /// Depth of the subtree stack (≤ ⌈log₂(blocks)⌉ + 1) — what a wire
    /// frame must budget for.
    pub fn stack_len(&self) -> usize {
        self.stack.len()
    }

    /// Absorbs one element.
    #[inline]
    pub fn push(&mut self, value: f64) {
        self.partial.add(value);
        self.partial_len += 1;
        if self.partial_len as usize == SUM_BLOCK {
            let leaf = self.partial.value();
            self.partial = NeumaierSum::new();
            self.partial_len = 0;
            push_subtree(&mut self.stack, 1, leaf);
        }
    }

    /// Absorbs a contiguous slice (elements in order).
    pub fn extend(&mut self, values: &[f64]) {
        for &v in values {
            self.push(v);
        }
    }

    /// The fixed-shape compensated total of everything pushed so far —
    /// bitwise equal to [`pairwise_neumaier_sum`] over the concatenated
    /// stream. Non-destructive: the cursor can keep absorbing afterwards.
    pub fn value(&self) -> f64 {
        let mut stack = self.stack.clone();
        if self.partial_len > 0 {
            // The ragged tail block is one more leaf of the combine tree.
            push_subtree(&mut stack, 1, self.partial.value());
        }
        // Fold the strictly-decreasing subtree sizes smallest-first,
        // right-associated: T(b₁) + (T(b₂) + (… + T(bₖ))). The operand
        // order spells out that association (bitwise-equal either way).
        let mut it = stack.into_iter().rev();
        let Some((_, mut acc)) = it.next() else {
            return 0.0;
        };
        for (_, value) in it {
            #[allow(clippy::assign_op_pattern)]
            {
                acc = value + acc;
            }
        }
        acc
    }
}

/// Pushes a completed subtree of `size` blocks onto the binary counter,
/// merging equal-size neighbours (older subtree on the left, preserving
/// the left-to-right pairwise order of [`combine_partials`]).
#[inline]
fn push_subtree(stack: &mut Vec<(u64, f64)>, mut size: u64, mut value: f64) {
    while let Some(&(top_size, top_value)) = stack.last() {
        if top_size != size {
            break;
        }
        stack.pop();
        // Older subtree on the left, as in `combine_partials` (the
        // operand order is the documentation; bitwise-equal either way).
        #[allow(clippy::assign_op_pattern)]
        {
            value = top_value + value;
        }
        size *= 2;
    }
    stack.push((size, value));
}

/// [`pairwise_neumaier_sum`] with the block partials computed on the
/// work-stealing harness. Block partials are independent and the combine
/// is identical, so the result is bitwise-equal to the sequential sum at
/// any thread count.
pub fn pairwise_neumaier_sum_parallel(values: &[f64]) -> f64 {
    let blocks = values.len().div_ceil(SUM_BLOCK);
    // Below ~1 block per worker the spawn overhead dwarfs the work.
    if threads() <= 1 || blocks < 8 {
        return pairwise_neumaier_sum(values);
    }
    let mut partials = parallel_map(blocks, |b| {
        block_partial(&values[b * SUM_BLOCK..values.len().min((b + 1) * SUM_BLOCK)])
    });
    combine_partials(&mut partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::set_threads;

    fn splitmix(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn neumaier_recovers_catastrophic_cancellation() {
        // Naive: 1.0 + 1e100 - 1e100 - 1.0 == 0 loses the 1.0 entirely.
        let mut acc = NeumaierSum::new();
        for v in [1.0, 1e100, -1e100, -1.0] {
            acc.add(v);
        }
        assert_eq!(acc.value(), 0.0);
        let mut acc = NeumaierSum::new();
        for v in [1.0, 1e100, 1.0, -1e100] {
            acc.add(v);
        }
        assert_eq!(acc.value(), 2.0);
    }

    #[test]
    fn compensated_sum_beats_naive_at_scale() {
        let n = 1_000_000usize;
        let values = vec![1.0 / n as f64; n];
        let compensated = pairwise_neumaier_sum(&values);
        assert!(
            (compensated - 1.0).abs() < 1e-14,
            "compensated error {:e}",
            (compensated - 1.0).abs()
        );
    }

    #[test]
    fn sum_is_independent_of_length_edge_cases() {
        assert_eq!(pairwise_neumaier_sum(&[]), 0.0);
        assert_eq!(pairwise_neumaier_sum(&[42.0]), 42.0);
        for n in [1, 2, 3, SUM_BLOCK - 1, SUM_BLOCK, SUM_BLOCK + 1, 5 * SUM_BLOCK + 3] {
            let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let expected = (n * (n - 1) / 2) as f64;
            assert_eq!(pairwise_neumaier_sum(&values), expected, "n = {n}");
        }
    }

    #[test]
    fn parallel_sum_is_bitwise_equal_to_sequential() {
        let mut state = 7u64;
        for n in [100, 1000, 12345, 100_000] {
            let values: Vec<f64> = (0..n).map(|_| splitmix(&mut state) - 0.5).collect();
            let sequential = pairwise_neumaier_sum(&values);
            for t in [1, 2, 4, 8] {
                set_threads(t);
                let parallel = pairwise_neumaier_sum_parallel(&values);
                set_threads(0);
                assert_eq!(sequential.to_bits(), parallel.to_bits(), "n = {n}, threads = {t}");
            }
        }
    }

    /// The tentpole cursor claim: for every length across several block
    /// boundaries and every way of cutting the stream into contiguous
    /// pieces (including serializing the state at each cut), the cursor's
    /// value is bitwise the fixed-shape sum of the whole array.
    #[test]
    fn cursor_is_bitwise_equal_to_pairwise_sum_at_every_split() {
        let mut state = 3u64;
        for n in [0usize, 1, 2, 127, 128, 129, 255, 256, 257, 300, 1000, 1663, 4096] {
            let values: Vec<f64> = (0..n).map(|_| splitmix(&mut state) - 0.5).collect();
            let reference = pairwise_neumaier_sum(&values);
            // One shot.
            let mut cursor = SumCursor::new();
            cursor.extend(&values);
            assert_eq!(cursor.value().to_bits(), reference.to_bits(), "n = {n}, one shot");
            // Seeded random cut points, resuming from serialized state at
            // each cut — the shard-chain pattern.
            for trial in 0..8u64 {
                let mut cursor = SumCursor::new();
                let mut at = 0usize;
                let mut cut_state = trial.wrapping_mul(0x9e3779b97f4a7c15) ^ n as u64;
                while at < n {
                    let step = 1 + (splitmix(&mut cut_state) * 200.0) as usize;
                    let end = (at + step).min(n);
                    cursor.extend(&values[at..end]);
                    cursor = SumCursor::from_state(&cursor.state());
                    at = end;
                }
                assert_eq!(cursor.value().to_bits(), reference.to_bits(), "n = {n}, trial {trial}");
            }
        }
    }

    #[test]
    fn cursor_every_single_split_point_small_exhaustive() {
        let mut state = 17u64;
        let n = 3 * SUM_BLOCK + 5;
        let values: Vec<f64> = (0..n).map(|_| splitmix(&mut state) * 2.0 - 1.0).collect();
        let reference = pairwise_neumaier_sum(&values);
        for cut in 0..=n {
            let mut cursor = SumCursor::new();
            cursor.extend(&values[..cut]);
            cursor.extend(&values[cut..]);
            assert_eq!(cursor.value().to_bits(), reference.to_bits(), "cut = {cut}");
        }
    }

    #[test]
    fn cursor_state_is_logarithmic_and_value_is_non_destructive() {
        let values = vec![0.25f64; 200 * SUM_BLOCK];
        let mut cursor = SumCursor::new();
        cursor.extend(&values[..199 * SUM_BLOCK + 7]);
        assert!(
            cursor.stack_len() <= 9,
            "200 blocks must keep <= ceil(log2) + 1 subtrees, got {}",
            cursor.stack_len()
        );
        let once = cursor.value();
        cursor.extend(&values[199 * SUM_BLOCK + 7..]);
        assert_eq!(cursor.value().to_bits(), pairwise_neumaier_sum(&values).to_bits());
        assert!(once != cursor.value(), "value() must not finalize the cursor");
        assert_eq!(SumCursor::new().value(), 0.0, "empty cursor matches the empty sum");
    }

    #[test]
    fn running_sum_tracks_block_sum_closely() {
        // The incremental engine maintains Σx with a running NeumaierSum;
        // check it stays within a few ulps of the fixed-shape reduction.
        let mut state = 99u64;
        let values: Vec<f64> = (0..50_000).map(|_| splitmix(&mut state) * 1e-4).collect();
        let mut running = NeumaierSum::new();
        for &v in &values {
            running.add(v);
        }
        let fixed = pairwise_neumaier_sum(&values);
        assert!((running.value() - fixed).abs() < 1e-12 * fixed.abs().max(1.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Arbitrary lengths cut at arbitrary points — the cursor must
        /// reproduce the fixed-shape sum bit for bit through every chain.
        #[test]
        fn cursor_matches_pairwise_sum_under_arbitrary_chaining(
            values in proptest::collection::vec(-1.0e3f64..1.0e3, 0..2000),
            cuts in proptest::collection::vec(0usize..2000, 0..12),
        ) {
            let reference = pairwise_neumaier_sum(&values);
            let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (values.len() + 1)).collect();
            bounds.push(0);
            bounds.push(values.len());
            bounds.sort_unstable();
            let mut cursor = SumCursor::new();
            for pair in bounds.windows(2) {
                cursor.extend(&values[pair[0]..pair[1]]);
                // Round-trip the state as the wire would.
                cursor = SumCursor::from_state(&cursor.state());
            }
            prop_assert_eq!(cursor.value().to_bits(), reference.to_bits());
        }
    }
}
