//! # dolbie-core
//!
//! From-scratch reproduction of **DOLBIE** — *Distributed Online Load
//! Balancing with rIsk-averse assistancE* — from J. Wang and B. Liang,
//! "Distributed Online Min-Max Load Balancing with Risk-Averse Assistance",
//! IEEE ICDCS 2023.
//!
//! The problem: split a unit of workload across `N` heterogeneous workers
//! each round so as to minimize the accumulated **pointwise maximum** of
//! the workers' local costs,
//!
//! ```text
//! min_{x_1..x_T}  Σ_t max_i f_{i,t}(x_{i,t})
//! s.t.            Σ_i x_{i,t} = 1,   x_{i,t} >= 0,
//! ```
//!
//! where the increasing, arbitrarily time-varying cost functions `f_{i,t}`
//! are revealed only *after* each decision. DOLBIE solves it online without
//! gradients or projections: every non-straggling worker learns to offer a
//! *risk-averse* amount of assistance to the current straggler — a step
//! `α_t` toward the largest share it could have absorbed without becoming a
//! worse straggler itself.
//!
//! ## Quick start
//!
//! ```
//! use dolbie_core::{
//!     run_episode, Dolbie, EpisodeOptions,
//!     environment::StaticLinearEnvironment,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Three workers; worker 0 is 4x slower than worker 1.
//! let mut env = StaticLinearEnvironment::from_slopes(vec![4.0, 1.0, 2.0]);
//! let mut dolbie = Dolbie::new(3);
//! let trace = run_episode(&mut dolbie, &mut env, EpisodeOptions::new(100).with_optimum());
//! let regret = trace.regret().unwrap();
//! assert!(regret.dynamic_regret() >= 0.0);
//! println!("total cost {:.3}, regret {:.3}", trace.total_cost(), regret.dynamic_regret());
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! - [`allocation`] — the simplex decision variable (constraints (2)–(3)).
//! - [`cost`] — the cost-function library and the monotone-inverse
//!   interface behind eq. (4).
//! - [`solver`] — bisection search (the paper's suggested implementation of
//!   the inverse).
//! - [`observation`] — what a round reveals: local costs, global cost,
//!   straggler.
//! - [`balancer`] — the [`LoadBalancer`] trait shared with every baseline.
//! - [`dolbie`] — the DOLBIE update (Algorithms 1–2 decision logic),
//!   with optional per-worker capacity caps.
//! - [`engine`] — the shared structure-of-arrays round engine and the
//!   chunked large-N balancer [`ChunkedDolbie`].
//! - [`kernel`] — the fused, cache-blocked, SIMD round kernel
//!   ([`FusedDolbie`]) for cost families with closed-form inverses.
//! - [`membership`] — simplex-safe re-normalization for elastic worker
//!   membership (epoch boundaries: leaves, joins, rejoins).
//! - [`numeric`] — fixed-shape compensated (Neumaier/pairwise) summation
//!   and the streaming [`SumCursor`] that reproduces it across splits.
//! - [`parallel`] — the deterministic work-stealing fan-out harness.
//! - [`shard`] — the two-level (sharded) control plane: shard-local
//!   DOLBIE steps under a root coordinator over shard aggregates.
//! - [`bandit`] — a bandit-feedback extension (value-only observations).
//! - [`delayed`] — a delayed-feedback extension (observations apply `d`
//!   rounds late).
//! - [`step_size`] — the risk-averse step-size schedule of eq. (7).
//! - [`oracle`] — the per-round clairvoyant optimum (`OPT`).
//! - [`regret`] — dynamic regret, path length, and the Theorem 1 bound.
//! - [`environment`] — deterministic synthetic adversaries.
//! - [`runner`] — the episode driver used by tests and experiments.
//!
//! The message-passing realizations of the two architectures live in the
//! `dolbie-simnet` crate; the evaluation substrates (distributed ML, edge
//! offloading) live in `dolbie-mlsim` and `dolbie-edge`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(feature = "portable-simd", feature(portable_simd))]

pub mod allocation;
pub mod balancer;
pub mod bandit;
pub mod cost;
pub mod delayed;
pub mod dolbie;
pub mod engine;
pub mod environment;
pub mod error;
pub mod fingerprint;
pub mod kernel;
pub mod membership;
pub mod numeric;
pub mod observation;
pub mod oracle;
pub mod parallel;
pub mod regret;
pub mod runner;
pub mod shard;
pub mod solver;
pub mod step_size;

pub use allocation::Allocation;
pub use balancer::LoadBalancer;
pub use bandit::BanditDolbie;
pub use delayed::DelayedDolbie;
pub use dolbie::{Dolbie, DolbieConfig, InitialAlpha, ReportedRound};
pub use engine::ChunkedDolbie;
pub use environment::Environment;
pub use error::{AllocationError, OracleError, SolverError};
pub use kernel::{CostSlab, FusedDolbie, FusedRound, KernelVariant};
pub use membership::{membership_alpha_cap, renormalize_onto_members};
pub use numeric::{
    pairwise_neumaier_sum, pairwise_neumaier_sum_parallel, CursorState, NeumaierSum, SumCursor,
};
pub use observation::Observation;
pub use oracle::{
    instantaneous_minimizer, instantaneous_minimizer_cached, instantaneous_minimizer_capped,
    InstantOptimum, OracleCache,
};
pub use regret::{theorem1_bound, RegretTracker};
pub use runner::{
    run_episode, run_episode_streaming, run_episode_with_static_costs, run_replications,
    EpisodeOptions, EpisodeSummary, EpisodeTrace, RoundRecord,
};
pub use shard::{RootEngine, ShardLayout, ShardedDolbie, ShardedRound};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Allocation>();
        assert_send_sync::<crate::Dolbie>();
        assert_send_sync::<crate::RegretTracker>();
        assert_send_sync::<crate::InstantOptimum>();
        assert_send_sync::<crate::cost::DynCost>();
    }
}
