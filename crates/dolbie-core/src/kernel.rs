//! The fused, cache-blocked, SIMD round kernel.
//!
//! # Why a second round engine
//!
//! The split engine ([`ChunkedDolbie`](crate::ChunkedDolbie) +
//! [`Observation`](crate::Observation)) walks the round state in five or
//! six separate linear passes — copy the played allocation, evaluate the
//! costs through `Box<dyn CostFunction>` virtual calls, scan the
//! local-cost array for the straggler, invert each cost through another
//! virtual call (Pass A), reduce the gains, apply them (Pass B). At
//! N = 10^6 the round state no longer fits in cache, so every pass pays
//! full memory bandwidth, and the two virtual calls per worker per round
//! scatter-read boxed cost objects all over the heap. BENCH_large_n.json
//! shows the result: throughput *falls* from 9.5e7 worker-rounds/s at
//! N = 1e5 to 5.2e7 at N = 1e6.
//!
//! [`FusedDolbie`] removes both walls for cost families with closed-form
//! eq. (5) inverses:
//!
//! 1. **Parameter slabs** ([`CostSlab`]): the cost parameters live in flat
//!    structure-of-arrays `Vec<f64>`s, so evaluation and inversion are
//!    straight-line arithmetic on sequential streams — no pointer chasing,
//!    no virtual dispatch.
//! 2. **Pass fusion with deferred application**: each round runs exactly
//!    two sweeps over the worker arrays. Sweep 1 applies the *previous*
//!    round's gains and straggler pin (deferred from the last call),
//!    evaluates the costs and folds the straggler argmax — one read-write
//!    pass over `x`, one read pass over the slab, and the local costs
//!    never touch memory at all. Sweep 2 computes the eq. (5) gains
//!    *branchlessly* and reduces them into per-[`SUM_BLOCK`] compensated
//!    partials while the block is still in L1. The remaining work — the
//!    eq. (6) remainder combine, the feasibility guard, the Σx = 1 pin,
//!    eq. (7) — is O(1) or O(N/128).
//! 3. **SIMD lanes** ([`KernelVariant::Simd`]): the eval/inverse/gain
//!    arithmetic runs four lanes at a time, either through nightly
//!    `core::simd` (cargo feature `portable-simd`) or through a
//!    hand-rolled four-wide fallback on stable that LLVM auto-vectorizes.
//!
//! # The bitwise-determinism boundary
//!
//! The kernel produces trajectories **bitwise identical** to the
//! sequential [`Dolbie`](crate::Dolbie) at every chunk size, thread count
//! and membership mask (tested exhaustively in `tests/kernel_parity.rs`).
//! Determinism is preserved because every transformation stays on the
//! right side of a simple boundary:
//!
//! - *Lane-safe*: the eval, inverse and gain arithmetic is elementwise —
//!   each worker's values depend only on that worker's inputs, and IEEE
//!   754 `mul`/`div`/`sub`/`min`/`max` are identical per lane whether
//!   executed scalar or vector. Vectorizing these loops cannot change a
//!   single bit.
//! - *Order-sensitive, kept scalar*: the straggler argmax breaks ties to
//!   the lowest index, so its comparisons run in index order over the
//!   (vector-computed) cost values; the compensated reductions keep the
//!   fixed [`SUM_BLOCK`]-block + pairwise-tree shape of
//!   [`pairwise_neumaier_sum`], with the block partials produced inline by
//!   sweep 2. Chunk boundaries only decide which task computes a block,
//!   never the reduction shape.
//! - *Branchless inverse equivalence*: the slab inverse computes the same
//!   expression as the branchy
//!   [`max_share_within`](crate::cost::CostFunction::max_share_within) +
//!   [`max_acceptable_share`](crate::observation::max_acceptable_share)
//!   path for every parameter case, including the `None` (infeasible) and
//!   zero-slope cases, via IEEE semantics of `f64::min`/`f64::max` over
//!   `±inf`/NaN intermediates (unit-tested edge by edge below).
//! - *Masked rounds stay scalar in sweep 1*: after
//!   [`apply_membership`](FusedDolbie::apply_membership) the argmax runs
//!   the scalar member-only scan; gains are still computed branchlessly
//!   (and lane-wise) because inactive entries are forced to exactly `0.0`
//!   before the block partial is taken.
//!
//! Deferred application is invisible from outside:
//! [`allocation`](FusedDolbie::allocation),
//! [`apply_membership`](FusedDolbie::apply_membership) and the periodic
//! Σx refresh materialize the pending gains first, so every observable
//! share slice equals the split engine's bit for bit.

use crate::allocation::Allocation;
use crate::cost::{DynCost, LatencyCost, LinearCost};
use crate::dolbie::{DolbieConfig, DolbieStats};
use crate::engine::{SoaEngine, TOTAL_REFRESH_INTERVAL};
use crate::numeric::{
    block_partial, combine_partials, pairwise_neumaier_sum, pairwise_neumaier_sum_parallel,
    NeumaierSum, SUM_BLOCK,
};
use crate::parallel::parallel_for_each;
use crate::runner::EpisodeSummary;

/// Lane width of the explicit-SIMD paths (f64x4: one AVX2 register, two
/// SSE2 registers).
pub const LANES: usize = 4;

#[cfg(feature = "portable-simd")]
mod lanes {
    //! Nightly path: thin wrappers over `core::simd::f64x4`. `simd_min` /
    //! `simd_max` follow IEEE `minNum`/`maxNum` (NaN-ignoring), matching
    //! `f64::min`/`f64::max` — the property the branchless inverse needs.
    use core::simd::num::SimdFloat;

    pub(super) type V = core::simd::f64x4;

    #[inline(always)]
    pub(super) fn load(s: &[f64]) -> V {
        V::from_slice(s)
    }
    #[inline(always)]
    pub(super) fn store(v: V, out: &mut [f64]) {
        v.copy_to_slice(out);
    }
    #[inline(always)]
    pub(super) fn splat(x: f64) -> V {
        V::splat(x)
    }
    #[inline(always)]
    pub(super) fn add(a: V, b: V) -> V {
        a + b
    }
    #[inline(always)]
    pub(super) fn sub(a: V, b: V) -> V {
        a - b
    }
    #[inline(always)]
    pub(super) fn mul(a: V, b: V) -> V {
        a * b
    }
    #[inline(always)]
    pub(super) fn div(a: V, b: V) -> V {
        a / b
    }
    #[inline(always)]
    pub(super) fn min(a: V, b: V) -> V {
        a.simd_min(b)
    }
    #[inline(always)]
    pub(super) fn max(a: V, b: V) -> V {
        a.simd_max(b)
    }
    #[inline(always)]
    pub(super) fn to_array(v: V) -> [f64; super::LANES] {
        v.to_array()
    }
}

#[cfg(not(feature = "portable-simd"))]
mod lanes {
    //! Stable fallback: a hand-rolled four-wide f64 "vector". Every op is
    //! the scalar `f64` op applied per lane — bitwise equality with the
    //! scalar path holds by definition — and the fixed four-wide shape
    //! gives LLVM straight-line code it auto-vectorizes on the SSE2
    //! baseline.

    #[derive(Clone, Copy)]
    pub(super) struct V([f64; super::LANES]);

    #[inline(always)]
    fn zip(a: V, b: V, f: impl Fn(f64, f64) -> f64) -> V {
        V([f(a.0[0], b.0[0]), f(a.0[1], b.0[1]), f(a.0[2], b.0[2]), f(a.0[3], b.0[3])])
    }

    #[inline(always)]
    pub(super) fn load(s: &[f64]) -> V {
        V([s[0], s[1], s[2], s[3]])
    }
    #[inline(always)]
    pub(super) fn store(v: V, out: &mut [f64]) {
        out[..super::LANES].copy_from_slice(&v.0);
    }
    #[inline(always)]
    pub(super) fn splat(x: f64) -> V {
        V([x; super::LANES])
    }
    #[inline(always)]
    pub(super) fn add(a: V, b: V) -> V {
        zip(a, b, |x, y| x + y)
    }
    #[inline(always)]
    pub(super) fn sub(a: V, b: V) -> V {
        zip(a, b, |x, y| x - y)
    }
    #[inline(always)]
    pub(super) fn mul(a: V, b: V) -> V {
        zip(a, b, |x, y| x * y)
    }
    #[inline(always)]
    pub(super) fn div(a: V, b: V) -> V {
        zip(a, b, |x, y| x / y)
    }
    #[inline(always)]
    pub(super) fn min(a: V, b: V) -> V {
        zip(a, b, f64::min)
    }
    #[inline(always)]
    pub(super) fn max(a: V, b: V) -> V {
        zip(a, b, f64::max)
    }
    #[inline(always)]
    pub(super) fn to_array(v: V) -> [f64; super::LANES] {
        v.0
    }
}

/// Which round kernel an experiment or driver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelVariant {
    /// The original multi-pass engine ([`ChunkedDolbie`](crate::ChunkedDolbie)
    /// / [`Dolbie`](crate::Dolbie)) driven through `Box<dyn CostFunction>`.
    /// [`FusedDolbie`] does not run this variant; it names the baseline in
    /// benchmarks and CLIs.
    Split,
    /// The fused two-sweep kernel with scalar inner loops.
    Fused,
    /// The fused two-sweep kernel with explicit four-wide lanes in the
    /// eval/inverse/gain arithmetic (argmax and reductions stay scalar;
    /// see the module docs for why that boundary preserves bitwise
    /// parity).
    Simd,
}

impl KernelVariant {
    /// Parses a CLI spelling (`"split"`, `"fused"`, `"simd"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "split" => Some(Self::Split),
            "fused" => Some(Self::Fused),
            "simd" => Some(Self::Simd),
            _ => None,
        }
    }

    /// The canonical lower-case name (the same spelling [`parse`](Self::parse)
    /// accepts and BENCH rows record).
    pub fn name(self) -> &'static str {
        match self {
            Self::Split => "split",
            Self::Fused => "fused",
            Self::Simd => "simd",
        }
    }

    /// All variants, in baseline-first order.
    pub fn all() -> [Self; 3] {
        [Self::Split, Self::Fused, Self::Simd]
    }
}

/// Flat structure-of-arrays cost parameters for a homogeneous fleet whose
/// eq. (5) inverse has a closed form.
///
/// The slab is what lets the kernel replace two virtual calls per worker
/// per round with straight-line arithmetic over sequential `f64` streams.
/// Only cost families with closed-form inverses qualify; heterogeneous or
/// bisection-based fleets stay on the split engine.
#[derive(Debug, Clone)]
pub enum CostSlab {
    /// [`LatencyCost`] fleet: `f_i(x) = x·batch_i/speed_i + comm_i`.
    Latency {
        /// Per-worker global batch size `B` (non-negative, finite).
        batch: Vec<f64>,
        /// Per-worker processing speed `γ` (positive, finite).
        speed: Vec<f64>,
        /// Per-worker communication time `f^C` (non-negative, finite).
        comm: Vec<f64>,
    },
    /// [`LinearCost`] fleet: `f_i(x) = slope_i·x + intercept_i`.
    Linear {
        /// Per-worker slope (non-negative, finite).
        slope: Vec<f64>,
        /// Per-worker intercept (finite).
        intercept: Vec<f64>,
    },
}

impl CostSlab {
    /// Builds a latency slab from concrete [`LatencyCost`]s (whose
    /// constructor has already validated the parameters).
    pub fn latency(fleet: &[LatencyCost]) -> Self {
        Self::Latency {
            batch: fleet.iter().map(LatencyCost::batch_size).collect(),
            speed: fleet.iter().map(LatencyCost::speed).collect(),
            comm: fleet.iter().map(LatencyCost::comm_time).collect(),
        }
    }

    /// Builds a linear slab from concrete [`LinearCost`]s.
    pub fn linear(fleet: &[LinearCost]) -> Self {
        Self::Linear {
            slope: fleet.iter().map(LinearCost::slope).collect(),
            intercept: fleet.iter().map(LinearCost::intercept).collect(),
        }
    }

    /// Attempts to lay a boxed fleet out as a slab, via the
    /// [`as_any`](crate::cost::CostFunction::as_any) downcast hook.
    /// Returns `None` for an empty fleet, a family without a slab layout,
    /// or a heterogeneous mix — callers fall back to the split engine.
    pub fn from_costs(costs: &[DynCost]) -> Option<Self> {
        let first = costs.first()?.as_any()?;
        if first.downcast_ref::<LatencyCost>().is_some() {
            let mut fleet = Vec::with_capacity(costs.len());
            for f in costs {
                fleet.push(*f.as_any()?.downcast_ref::<LatencyCost>()?);
            }
            return Some(Self::latency(&fleet));
        }
        if first.downcast_ref::<LinearCost>().is_some() {
            let mut fleet = Vec::with_capacity(costs.len());
            for f in costs {
                fleet.push(*f.as_any()?.downcast_ref::<LinearCost>()?);
            }
            return Some(Self::linear(&fleet));
        }
        None
    }

    /// Number of workers in the fleet.
    pub fn len(&self) -> usize {
        match self {
            Self::Latency { batch, .. } => batch.len(),
            Self::Linear { slope, .. } => slope.len(),
        }
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The family name (`"latency"` or `"linear"`).
    pub fn family(&self) -> &'static str {
        match self {
            Self::Latency { .. } => "latency",
            Self::Linear { .. } => "linear",
        }
    }

    /// Evaluates worker `i`'s cost at share `x` — bitwise identical to the
    /// corresponding [`CostFunction::eval`](crate::cost::CostFunction::eval)
    /// (same expression, same association order).
    #[inline(always)]
    pub fn eval(&self, i: usize, x: f64) -> f64 {
        match self {
            Self::Latency { batch, speed, comm } => x * batch[i] / speed[i] + comm[i],
            Self::Linear { slope, intercept } => slope[i] * x + intercept[i],
        }
    }

    fn assert_consistent(&self) {
        let n = self.len();
        match self {
            Self::Latency { batch, speed, comm } => {
                assert!(speed.len() == n && comm.len() == n && batch.len() == n);
                assert!(
                    batch.iter().all(|b| b.is_finite() && *b >= 0.0)
                        && speed.iter().all(|s| s.is_finite() && *s > 0.0)
                        && comm.iter().all(|c| c.is_finite() && *c >= 0.0),
                    "latency slab parameters must satisfy the LatencyCost contract"
                );
            }
            Self::Linear { slope, intercept } => {
                assert!(slope.len() == n && intercept.len() == n);
                assert!(
                    slope.iter().all(|s| s.is_finite() && *s >= 0.0)
                        && intercept.iter().all(|i| i.is_finite()),
                    "linear slab parameters must satisfy the LinearCost contract"
                );
            }
        }
    }
}

/// The deferred tail of a round: the gains sitting in the engine's gain
/// slice and the pinned straggler share, not yet written into `x`.
#[derive(Debug, Clone, Copy)]
struct PendingRound {
    straggler: usize,
    pinned_share: f64,
}

/// What one fused round reports: the straggler `s_t` and the global cost
/// `l_t = max_i f_{i,t}(x_{i,t})` of the *played* allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedRound {
    /// The straggler `s_t` (lowest index on ties).
    pub straggler: usize,
    /// The global cost `l_t`.
    pub global_cost: f64,
}

/// First-max scan over one chunk, scalar, with the first element as the
/// incumbent via a `-inf` seed — exactly the sequential lowest-index-wins
/// scan of [`Observation`](crate::Observation).
#[inline(always)]
fn scalar_eval_loop(
    apply: bool,
    base: usize,
    xc: &mut [f64],
    gc: &[f64],
    eval: impl Fn(usize, f64) -> f64,
) -> (f64, usize) {
    let mut best = (f64::NEG_INFINITY, base);
    for (off, xv) in xc.iter_mut().enumerate() {
        if apply {
            *xv += gc[off];
        }
        let c = eval(base + off, *xv);
        if c > best.0 {
            best = (c, base + off);
        }
    }
    best
}

/// As [`scalar_eval_loop`], but with the eval arithmetic four lanes at a
/// time. The `c > best` comparisons still run in index order over the
/// lane results, so the argmax keeps sequential tie-breaking bit for bit.
#[inline(always)]
fn lane_eval_loop(
    apply: bool,
    base: usize,
    xc: &mut [f64],
    gc: &[f64],
    eval_lane: impl Fn(usize, lanes::V) -> lanes::V,
    eval: impl Fn(usize, f64) -> f64,
) -> (f64, usize) {
    let len = xc.len();
    let mut best = (f64::NEG_INFINITY, base);
    let mut k = 0;
    while k + LANES <= len {
        let mut xv = lanes::load(&xc[k..k + LANES]);
        if apply {
            xv = lanes::add(xv, lanes::load(&gc[k..k + LANES]));
            lanes::store(xv, &mut xc[k..k + LANES]);
        }
        let costs = lanes::to_array(eval_lane(base + k, xv));
        for (off, &c) in costs.iter().enumerate() {
            if c > best.0 {
                best = (c, base + k + off);
            }
        }
        k += LANES;
    }
    while k < len {
        if apply {
            xc[k] += gc[k];
        }
        let c = eval(base + k, xc[k]);
        if c > best.0 {
            best = (c, base + k);
        }
        k += 1;
    }
    best
}

/// Member-only first-max scan (the masked fallback of sweep 1); mirrors
/// [`Observation::from_costs_masked`](crate::Observation::from_costs_masked)
/// including the `is_none_or` seeding.
#[inline(always)]
fn masked_eval_loop(
    active: &[bool],
    apply: bool,
    base: usize,
    xc: &mut [f64],
    gc: &[f64],
    eval: impl Fn(usize, f64) -> f64,
) -> Option<(f64, usize)> {
    let mut best: Option<(f64, usize)> = None;
    for (off, xv) in xc.iter_mut().enumerate() {
        let i = base + off;
        if apply {
            *xv += gc[off];
        }
        if !active[i] {
            continue;
        }
        let c = eval(i, *xv);
        if best.is_none_or(|(bc, _)| c > bc) {
            best = Some((c, i));
        }
    }
    best
}

/// Branchless eq. (5) gains for one block, scalar.
#[inline(always)]
fn scalar_gain_loop(
    base: usize,
    xs: &[f64],
    gb: &mut [f64],
    alpha: f64,
    target: impl Fn(usize, f64) -> f64,
) {
    for (off, g) in gb.iter_mut().enumerate() {
        let i = base + off;
        let xi = xs[i];
        *g = (alpha * (target(i, xi) - xi)).max(0.0);
    }
}

/// Branchless eq. (5) gains for one block, four lanes at a time.
#[inline(always)]
fn lane_gain_loop(
    base: usize,
    xs: &[f64],
    gb: &mut [f64],
    alpha: f64,
    target_lane: impl Fn(usize, lanes::V) -> lanes::V,
    target: impl Fn(usize, f64) -> f64,
) {
    let len = gb.len();
    let av = lanes::splat(alpha);
    let zero = lanes::splat(0.0);
    let mut k = 0;
    while k + LANES <= len {
        let i = base + k;
        let xv = lanes::load(&xs[i..i + LANES]);
        let gv = lanes::max(lanes::mul(av, lanes::sub(target_lane(i, xv), xv)), zero);
        lanes::store(gv, &mut gb[k..k + LANES]);
        k += LANES;
    }
    while k < len {
        let i = base + k;
        let xi = xs[i];
        gb[k] = (alpha * (target(i, xi) - xi)).max(0.0);
        k += 1;
    }
}

/// Read-only context shared by the per-chunk sweep bodies.
#[derive(Clone, Copy)]
struct RoundCtx<'a> {
    slab: &'a CostSlab,
    /// `Some(mask)` when any worker is inactive (post-`apply_membership`).
    active: Option<&'a [bool]>,
    simd: bool,
}

impl RoundCtx<'_> {
    /// Sweep 1 body for one chunk: apply the deferred gains (when
    /// `apply`), evaluate the costs, fold the chunk-local first-max
    /// partial. Never stores the local costs.
    fn eval_partial(
        &self,
        apply: bool,
        base: usize,
        xc: &mut [f64],
        gc: &[f64],
    ) -> Option<(f64, usize)> {
        match self.slab {
            CostSlab::Latency { batch, speed, comm } => {
                let eval = |i: usize, x: f64| x * batch[i] / speed[i] + comm[i];
                if let Some(active) = self.active {
                    masked_eval_loop(active, apply, base, xc, gc, eval)
                } else if self.simd {
                    let eval_lane = |i: usize, xv: lanes::V| {
                        lanes::add(
                            lanes::div(
                                lanes::mul(xv, lanes::load(&batch[i..i + LANES])),
                                lanes::load(&speed[i..i + LANES]),
                            ),
                            lanes::load(&comm[i..i + LANES]),
                        )
                    };
                    Some(lane_eval_loop(apply, base, xc, gc, eval_lane, eval))
                } else {
                    Some(scalar_eval_loop(apply, base, xc, gc, eval))
                }
            }
            CostSlab::Linear { slope, intercept } => {
                let eval = |i: usize, x: f64| slope[i] * x + intercept[i];
                if let Some(active) = self.active {
                    masked_eval_loop(active, apply, base, xc, gc, eval)
                } else if self.simd {
                    let eval_lane = |i: usize, xv: lanes::V| {
                        lanes::add(
                            lanes::mul(lanes::load(&slope[i..i + LANES]), xv),
                            lanes::load(&intercept[i..i + LANES]),
                        )
                    };
                    Some(lane_eval_loop(apply, base, xc, gc, eval_lane, eval))
                } else {
                    Some(scalar_eval_loop(apply, base, xc, gc, eval))
                }
            }
        }
    }

    /// Sweep 2 body for one [`SUM_BLOCK`] block: branchless gains into
    /// `gb`, inactive entries and the straggler forced to exactly `0.0`,
    /// then the compensated block partial — all while the block is in L1.
    ///
    /// The branchless target `min(max(min(raw, 1), x), 1)` equals the
    /// branchy `max_share_within` + `max_acceptable_share` path bit for
    /// bit in every parameter case (see the module docs and the edge-case
    /// tests below), because a `None` inverse surfaces as `raw = -inf` or
    /// `NaN` and `f64::min`/`f64::max` ignore both in exactly the way the
    /// branches would.
    fn gain_partial(
        &self,
        s: usize,
        level: f64,
        alpha: f64,
        xs: &[f64],
        base: usize,
        gb: &mut [f64],
    ) -> f64 {
        match self.slab {
            CostSlab::Latency { batch, speed, comm } => {
                let target = |i: usize, xi: f64| {
                    ((level - comm[i]) * speed[i] / batch[i]).min(1.0).max(xi).min(1.0)
                };
                if self.simd {
                    let lv = lanes::splat(level);
                    let one = lanes::splat(1.0);
                    let target_lane = |i: usize, xv: lanes::V| {
                        let raw = lanes::min(
                            lanes::div(
                                lanes::mul(
                                    lanes::sub(lv, lanes::load(&comm[i..i + LANES])),
                                    lanes::load(&speed[i..i + LANES]),
                                ),
                                lanes::load(&batch[i..i + LANES]),
                            ),
                            one,
                        );
                        lanes::min(lanes::max(raw, xv), one)
                    };
                    lane_gain_loop(base, xs, gb, alpha, target_lane, target);
                } else {
                    scalar_gain_loop(base, xs, gb, alpha, target);
                }
            }
            CostSlab::Linear { slope, intercept } => {
                let target = |i: usize, xi: f64| {
                    ((level - intercept[i]) / slope[i]).min(1.0).max(xi).min(1.0)
                };
                if self.simd {
                    let lv = lanes::splat(level);
                    let one = lanes::splat(1.0);
                    let target_lane = |i: usize, xv: lanes::V| {
                        let raw = lanes::min(
                            lanes::div(
                                lanes::sub(lv, lanes::load(&intercept[i..i + LANES])),
                                lanes::load(&slope[i..i + LANES]),
                            ),
                            one,
                        );
                        lanes::min(lanes::max(raw, xv), one)
                    };
                    lane_gain_loop(base, xs, gb, alpha, target_lane, target);
                } else {
                    scalar_gain_loop(base, xs, gb, alpha, target);
                }
            }
        }
        if let Some(active) = self.active {
            for (off, g) in gb.iter_mut().enumerate() {
                if !active[base + off] {
                    *g = 0.0;
                }
            }
        }
        if s >= base && s < base + gb.len() {
            gb[s - base] = 0.0;
        }
        block_partial(gb)
    }
}

/// DOLBIE on the fused, cache-blocked, optionally SIMD round kernel.
///
/// Drives the *same* structure-of-arrays engine state as
/// [`Dolbie`](crate::Dolbie) /
/// [`ChunkedDolbie`](crate::ChunkedDolbie), but generates its own
/// observations from a [`CostSlab`] instead of consuming
/// [`Observation`](crate::Observation)s — that is what lets it fuse the
/// observation passes (cost eval, argmax) with the update passes. It
/// intentionally does not implement
/// [`LoadBalancer`](crate::LoadBalancer): the trait's play-then-observe
/// split is exactly the pass structure the kernel removes.
///
/// Trajectories (shares, stragglers, α schedule, guard activations,
/// episode aggregates) are bitwise identical to the split engine's.
///
/// # Examples
///
/// ```
/// use dolbie_core::cost::{DynCost, LatencyCost};
/// use dolbie_core::kernel::{FusedDolbie, KernelVariant};
/// use dolbie_core::{Dolbie, LoadBalancer, Observation};
///
/// let costs: Vec<DynCost> = (0..16)
///     .map(|i| Box::new(LatencyCost::new(256.0, 100.0 + i as f64, 0.05)) as DynCost)
///     .collect();
/// let mut fused = FusedDolbie::from_costs(&costs).expect("latency has a slab layout");
/// let mut split = Dolbie::new(16);
/// for t in 0..40 {
///     let round = fused.step();
///     let played = split.allocation().clone();
///     let obs = Observation::from_costs(t, &played, &costs);
///     assert_eq!(round.straggler, obs.straggler());
///     assert_eq!(round.global_cost.to_bits(), obs.global_cost().to_bits());
///     split.observe(&obs);
/// }
/// for i in 0..16 {
///     assert_eq!(
///         fused.allocation().share(i).to_bits(),
///         split.allocation().share(i).to_bits(),
///     );
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FusedDolbie {
    engine: SoaEngine,
    slab: CostSlab,
    variant: KernelVariant,
    /// `None`: plain sequential sweeps. `Some(c)`: sweep 1 in `c`-worker
    /// chunks and sweep 2 in `SUM_BLOCK`-aligned groups of ~`c` workers on
    /// the work-stealing harness.
    chunk_size: Option<usize>,
    pending: Option<PendingRound>,
    /// Per-`SUM_BLOCK` gain partials, reused across rounds.
    partials: Vec<f64>,
}

impl FusedDolbie {
    /// Creates the kernel over `slab` with the uniform initial split and
    /// the default configuration, in the [`KernelVariant::Fused`] variant.
    ///
    /// # Panics
    ///
    /// Panics if the slab is empty or its parameters violate the cost
    /// family's contract.
    pub fn new(slab: CostSlab) -> Self {
        let n = slab.len();
        assert!(n > 0, "at least one worker is required");
        Self::with_config(slab, Allocation::uniform(n), DolbieConfig::new())
    }

    /// Creates the kernel from an arbitrary feasible initial partition and
    /// a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the slab is empty, inconsistent with the cost family's
    /// parameter contract, or sized differently from `initial`.
    pub fn with_config(slab: CostSlab, initial: Allocation, config: DolbieConfig) -> Self {
        slab.assert_consistent();
        assert!(!slab.is_empty(), "at least one worker is required");
        assert_eq!(slab.len(), initial.num_workers(), "one cost slab entry per worker");
        Self {
            engine: SoaEngine::new(initial, config),
            slab,
            variant: KernelVariant::Fused,
            chunk_size: None,
            pending: None,
            partials: Vec::new(),
        }
    }

    /// Convenience: lays a boxed fleet out as a slab
    /// ([`CostSlab::from_costs`]) and builds the kernel over it. `None`
    /// when the fleet has no slab layout — fall back to the split engine.
    pub fn from_costs(costs: &[DynCost]) -> Option<Self> {
        CostSlab::from_costs(costs).map(Self::new)
    }

    /// Selects the kernel variant ([`Fused`](KernelVariant::Fused) or
    /// [`Simd`](KernelVariant::Simd)). Any choice produces the same bits;
    /// it only selects the inner-loop code shape.
    ///
    /// # Panics
    ///
    /// Panics on [`KernelVariant::Split`] — that variant names the
    /// original engine ([`Dolbie`](crate::Dolbie) /
    /// [`ChunkedDolbie`](crate::ChunkedDolbie)), not a mode of this one.
    pub fn with_variant(mut self, variant: KernelVariant) -> Self {
        assert!(
            variant != KernelVariant::Split,
            "the split variant is Dolbie/ChunkedDolbie, not a FusedDolbie mode"
        );
        self.variant = variant;
        self
    }

    /// Runs the sweeps in `chunk_size`-worker chunks on the work-stealing
    /// harness (clamped to at least 1). Any value produces the same
    /// trajectory; it only tunes scheduling granularity.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = Some(chunk_size.max(1));
        self
    }

    /// The active kernel variant.
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    /// The configured chunk size (`None`: sequential sweeps).
    pub fn chunk_size(&self) -> Option<usize> {
        self.chunk_size
    }

    /// The cost slab the kernel plays against.
    pub fn slab(&self) -> &CostSlab {
        &self.slab
    }

    /// Number of workers `N`.
    pub fn num_workers(&self) -> usize {
        self.slab.len()
    }

    /// The current allocation. Materializes any deferred round tail
    /// first, so the returned shares always equal the split engine's
    /// after the same number of rounds.
    pub fn allocation(&mut self) -> &Allocation {
        self.materialize();
        self.engine.allocation()
    }

    /// The current step size `α_t`.
    pub fn alpha(&self) -> f64 {
        self.engine.alpha()
    }

    /// The step sizes actually applied in each round.
    pub fn alphas_used(&self) -> &[f64] {
        self.engine.alphas_used()
    }

    /// Update counters (rounds, guard activations) — comparable directly
    /// against the split engine's.
    pub fn stats(&self) -> DolbieStats {
        self.engine.stats()
    }

    /// Crosses a membership epoch boundary, exactly as
    /// [`Dolbie::apply_membership`](crate::Dolbie::apply_membership)
    /// (deferred state is materialized first, so the renormalization sees
    /// the same shares the split engine would).
    ///
    /// # Panics
    ///
    /// As [`Dolbie::apply_membership`](crate::Dolbie::apply_membership).
    pub fn apply_membership(&mut self, members: &[bool]) {
        self.materialize();
        self.engine.apply_membership(members);
    }

    /// Writes any deferred gains and straggler pin into the share slice.
    /// Idempotent; replays the split engine's Pass B op for op.
    fn materialize(&mut self) {
        let Some(p) = self.pending.take() else { return };
        let chunk = self.chunk_size;
        let engine = &mut self.engine;
        let xs = engine.x.shares_mut();
        match chunk {
            None => {
                for (x, g) in xs.iter_mut().zip(&engine.gains) {
                    *x += *g;
                }
            }
            Some(c) => {
                let payloads: Vec<(&mut [f64], &[f64])> =
                    xs.chunks_mut(c).zip(engine.gains.chunks(c)).collect();
                parallel_for_each(payloads, |(xc, gc)| {
                    for (x, g) in xc.iter_mut().zip(gc) {
                        *x += *g;
                    }
                });
            }
        }
        xs[p.straggler] = p.pinned_share;
    }

    /// Plays one DOLBIE round: applies the previous round's deferred
    /// tail, evaluates the (static) slab costs at the resulting shares,
    /// finds the straggler, computes the eq. (5)–(7) update and defers
    /// its application to the next call.
    pub fn step(&mut self) -> FusedRound {
        let n = self.num_workers();
        let alpha = self.engine.begin_round();
        if n == 1 {
            // A single worker always holds the whole workload; mirror the
            // split engine's early return (no gains, no pin).
            let cost = self.slab.eval(0, self.engine.x.share(0));
            return FusedRound { straggler: 0, global_cost: cost };
        }

        let (level, s) = self.sweep_eval();
        self.sweep_gains(s, level, alpha);
        self.finish_deferred(s);
        FusedRound { straggler: s, global_cost: level }
    }

    /// Runs `rounds` steps and returns the episode aggregates, shaped
    /// like [`run_episode_with_static_costs`](crate::runner::run_episode_with_static_costs)
    /// so benchmarks can compare `total_cost` bit for bit.
    pub fn run(&mut self, rounds: usize) -> EpisodeSummary {
        let mut total_cost = 0.0;
        let mut final_global_cost = 0.0;
        for _ in 0..rounds {
            let round = self.step();
            total_cost += round.global_cost;
            final_global_cost = round.global_cost;
        }
        self.materialize();
        EpisodeSummary {
            algorithm: "DOLBIE".to_owned(),
            rounds,
            total_cost,
            final_global_cost,
            regret: None,
        }
    }

    /// Sweep 1: deferred application + cost eval + straggler argmax in one
    /// read-write pass over `x`. Returns `(global_cost, straggler)`.
    fn sweep_eval(&mut self) -> (f64, usize) {
        let n = self.num_workers();
        let apply = if let Some(p) = self.pending.take() {
            // The deferred pin; the straggler's gain is exactly 0, so the
            // unconditional `+= g` below leaves it at the pinned value.
            self.engine.x.shares_mut()[p.straggler] = p.pinned_share;
            true
        } else {
            false
        };
        let engine = &mut self.engine;
        let ctx = RoundCtx {
            slab: &self.slab,
            active: (engine.active_count < n).then_some(engine.active.as_slice()),
            simd: self.variant == KernelVariant::Simd,
        };
        let xs = engine.x.shares_mut();
        let best = match self.chunk_size {
            None => ctx.eval_partial(apply, 0, xs, &engine.gains),
            Some(c) => {
                /// One sweep-1 task: (chunk base index, share chunk, gain
                /// chunk, slot for the chunk-local argmax partial).
                type EvalTask<'a> = (usize, &'a mut [f64], &'a [f64], &'a mut Option<(f64, usize)>);
                let chunks = n.div_ceil(c);
                let mut partials: Vec<Option<(f64, usize)>> = vec![None; chunks];
                {
                    let payloads: Vec<EvalTask<'_>> = xs
                        .chunks_mut(c)
                        .zip(engine.gains.chunks(c))
                        .zip(partials.iter_mut())
                        .enumerate()
                        .map(|(k, ((xc, gc), slot))| (k * c, xc, gc, slot))
                        .collect();
                    parallel_for_each(payloads, |(base, xc, gc, slot)| {
                        *slot = ctx.eval_partial(apply, base, xc, gc);
                    });
                }
                // In-order combine with a strict `>`: the sequential
                // lowest-index-wins scan, exactly as the split engine's
                // chunked observation.
                let mut best: Option<(f64, usize)> = None;
                for p in partials.into_iter().flatten() {
                    if best.is_none_or(|(bc, _)| p.0 > bc) {
                        best = Some(p);
                    }
                }
                best
            }
        };
        let (level, s) = best.expect("at least one active member is required");
        (level, s)
    }

    /// Sweep 2: branchless gains + inline per-[`SUM_BLOCK`] compensated
    /// partials, blocked so each gain value is reduced while still in L1.
    /// The partials land in `self.partials` with the exact shape of
    /// [`pairwise_neumaier_sum`] over the gain slice.
    fn sweep_gains(&mut self, s: usize, level: f64, alpha: f64) {
        let n = self.num_workers();
        let engine = &mut self.engine;
        let ctx = RoundCtx {
            slab: &self.slab,
            active: (engine.active_count < n).then_some(engine.active.as_slice()),
            simd: self.variant == KernelVariant::Simd,
        };
        let xs = engine.x.as_slice();
        let blocks = n.div_ceil(SUM_BLOCK);
        self.partials.clear();
        self.partials.resize(blocks, 0.0);
        match self.chunk_size {
            None => {
                for (b, gb) in engine.gains.chunks_mut(SUM_BLOCK).enumerate() {
                    self.partials[b] = ctx.gain_partial(s, level, alpha, xs, b * SUM_BLOCK, gb);
                }
            }
            Some(c) => {
                // Group whole SUM_BLOCKs into ~chunk_size tasks: the block
                // grid (hence the reduction shape) is independent of the
                // chunk knob, which only sets scheduling granularity.
                let blocks_per_task = c.div_ceil(SUM_BLOCK).max(1);
                let task_elems = blocks_per_task * SUM_BLOCK;
                let payloads: Vec<(usize, &mut [f64], &mut [f64])> = engine
                    .gains
                    .chunks_mut(task_elems)
                    .zip(self.partials.chunks_mut(blocks_per_task))
                    .enumerate()
                    .map(|(k, (gc, pc))| (k * task_elems, gc, pc))
                    .collect();
                parallel_for_each(payloads, |(base, gc, pc)| {
                    for (j, (gb, slot)) in gc.chunks_mut(SUM_BLOCK).zip(pc.iter_mut()).enumerate() {
                        *slot = ctx.gain_partial(s, level, alpha, xs, base + j * SUM_BLOCK, gb);
                    }
                });
            }
        }
    }

    /// The order-sensitive round tail, replicating the split engine's
    /// `finish_round` op for op — except that the gain application and
    /// pin write are deferred into the next sweep 1.
    fn finish_deferred(&mut self, s: usize) {
        let chunk = self.chunk_size;
        let engine = &mut self.engine;
        let straggler_share = engine.x.share(s);
        let sum_fixed = |values: &[f64]| match chunk {
            None => pairwise_neumaier_sum(values),
            Some(_) => pairwise_neumaier_sum_parallel(values),
        };
        // The eq. (6) remainder: combining the sweep-2 block partials with
        // the fixed pairwise tree lands on pairwise_neumaier_sum(gains)
        // exactly.
        let mut total_gain = combine_partials(&mut self.partials);

        // Feasibility guard, identical to the split engine's.
        if total_gain > straggler_share && total_gain > 0.0 {
            let scale = straggler_share / total_gain;
            match chunk {
                None => {
                    for g in &mut engine.gains {
                        *g *= scale;
                    }
                }
                Some(c) => {
                    let payloads: Vec<&mut [f64]> = engine.gains.chunks_mut(c).collect();
                    parallel_for_each(payloads, |gc| {
                        for g in gc {
                            *g *= scale;
                        }
                    });
                }
            }
            total_gain = sum_fixed(&engine.gains);
            engine.stats.guard_activations += 1;
        }

        // The O(1) Σx = 1 pin.
        let mut running = engine.total;
        running.add(-straggler_share);
        running.add(total_gain);
        let new_straggler_share = (1.0 - running.value()).max(0.0);
        debug_assert!(new_straggler_share.is_finite(), "pin produced a non-finite share");
        running.add(new_straggler_share);
        engine.total = running;
        self.pending = Some(PendingRound { straggler: s, pinned_share: new_straggler_share });

        // Periodic refresh needs the materialized shares; this is the one
        // round shape where the deferral collapses back to an extra pass.
        if self.engine.stats.rounds.is_multiple_of(TOTAL_REFRESH_INTERVAL) {
            self.materialize();
            let engine = &mut self.engine;
            engine.total = NeumaierSum::from_value(match chunk {
                None => pairwise_neumaier_sum(engine.x.as_slice()),
                Some(_) => pairwise_neumaier_sum_parallel(engine.x.as_slice()),
            });
        }

        self.engine.alpha.tighten(self.engine.active_count, new_straggler_share);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostFunction;
    use crate::observation::max_acceptable_share;
    use crate::{Dolbie, LoadBalancer, Observation};

    fn splitmix(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn latency_fleet(n: usize, seed: u64) -> Vec<DynCost> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                let speed = 64.0 + 448.0 * splitmix(&mut state);
                Box::new(LatencyCost::new(256.0, speed, 0.05)) as DynCost
            })
            .collect()
    }

    #[test]
    fn variant_parse_round_trips() {
        for v in KernelVariant::all() {
            assert_eq!(KernelVariant::parse(v.name()), Some(v));
        }
        assert_eq!(KernelVariant::parse("warp"), None);
    }

    #[test]
    fn slab_downcast_accepts_homogeneous_closed_form_fleets() {
        let latency = latency_fleet(5, 3);
        let slab = CostSlab::from_costs(&latency).expect("latency fleet has a slab");
        assert_eq!(slab.len(), 5);
        assert_eq!(slab.family(), "latency");
        let linear: Vec<DynCost> =
            (0..4).map(|i| Box::new(LinearCost::new(i as f64, 0.1)) as DynCost).collect();
        let slab = CostSlab::from_costs(&linear).expect("linear fleet has a slab");
        assert_eq!(slab.family(), "linear");
        assert!(!slab.is_empty());
    }

    #[test]
    fn slab_downcast_rejects_mixed_and_unsupported_fleets() {
        assert!(CostSlab::from_costs(&[]).is_none(), "empty fleet");
        let mixed: Vec<DynCost> = vec![
            Box::new(LatencyCost::new(256.0, 100.0, 0.05)),
            Box::new(LinearCost::new(1.0, 0.0)),
        ];
        assert!(CostSlab::from_costs(&mixed).is_none(), "heterogeneous fleet");
        let no_closed_form: Vec<DynCost> =
            vec![Box::new(crate::cost::PowerCost::new(1.0, 2.0, 0.0))];
        assert!(CostSlab::from_costs(&no_closed_form).is_none(), "no as_any override");
        assert!(FusedDolbie::from_costs(&no_closed_form).is_none());
    }

    #[test]
    fn slab_eval_matches_trait_eval_bitwise() {
        let costs = latency_fleet(37, 9);
        let slab = CostSlab::from_costs(&costs).unwrap();
        for (i, f) in costs.iter().enumerate() {
            for x in [0.0, 1.0 / 37.0, 0.5, 1.0] {
                assert_eq!(slab.eval(i, x).to_bits(), f.eval(x).to_bits(), "worker {i} at {x}");
            }
        }
    }

    /// The branchless inverse equals the branchy
    /// `max_share_within` + `max_acceptable_share` path bit for bit across
    /// every parameter edge: infeasible levels (`None`), zero batch/slope
    /// (`±inf`/`NaN` intermediates), exact-level boundaries, and targets
    /// past 1.
    #[test]
    fn branchless_target_matches_branchy_inverse_on_edges() {
        let latency_edges = [
            LatencyCost::new(256.0, 100.0, 0.5), // generic
            LatencyCost::new(256.0, 100.0, 2.0), // comm can exceed level
            LatencyCost::new(0.0, 100.0, 0.3),   // zero batch: ±inf / NaN raw
            LatencyCost::new(1e-3, 100.0, 0.0),  // target far past 1
        ];
        for f in latency_edges {
            for level in [0.0, 0.3, 0.5, 1.0, 2.0, 4.0] {
                for xi in [0.0, 0.01, 0.5, 1.0] {
                    let branchy = max_acceptable_share(&f, xi, level);
                    let raw = ((level - f.comm_time()) * f.speed() / f.batch_size()).min(1.0);
                    let branchless = raw.max(xi).min(1.0);
                    assert_eq!(
                        branchless.to_bits(),
                        branchy.to_bits(),
                        "latency {f:?} level {level} xi {xi}"
                    );
                }
            }
        }
        let linear_edges = [
            LinearCost::new(3.0, 2.0),  // generic
            LinearCost::new(1.0, 5.0),  // intercept can exceed level
            LinearCost::new(0.0, 2.0),  // zero slope: ±inf / NaN raw
            LinearCost::new(1e-3, 0.0), // target far past 1
        ];
        for f in linear_edges {
            for level in [0.0, 1.0, 2.0, 2.0000001, 5.0, 100.0] {
                for xi in [0.0, 0.01, 0.5, 1.0] {
                    let branchy = max_acceptable_share(&f, xi, level);
                    let raw = ((level - f.intercept()) / f.slope()).min(1.0);
                    let branchless = raw.max(xi).min(1.0);
                    assert_eq!(
                        branchless.to_bits(),
                        branchy.to_bits(),
                        "linear {f:?} level {level} xi {xi}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_worker_round_is_a_fixed_point() {
        let slab = CostSlab::linear(&[LinearCost::new(2.0, 0.0)]);
        let mut d = FusedDolbie::new(slab);
        for _ in 0..5 {
            let round = d.step();
            assert_eq!(round.straggler, 0);
            assert_eq!(round.global_cost, 2.0);
            assert_eq!(d.allocation().share(0), 1.0);
        }
        assert_eq!(d.stats().rounds, 5);
    }

    #[test]
    fn fused_episode_matches_split_engine_bitwise_past_refresh() {
        // Horizon past TOTAL_REFRESH_INTERVAL so the deferred state is
        // forced through the refresh-materialize path too.
        let n = 64;
        let rounds = 2 * TOTAL_REFRESH_INTERVAL + 17;
        let costs = latency_fleet(n, 7);
        let mut split = Dolbie::new(n);
        let summary =
            crate::runner::run_episode_with_static_costs(&mut split, &costs, rounds, None);
        for variant in [KernelVariant::Fused, KernelVariant::Simd] {
            let mut fused = FusedDolbie::from_costs(&costs).unwrap().with_variant(variant);
            let got = fused.run(rounds);
            assert_eq!(got.total_cost.to_bits(), summary.total_cost.to_bits(), "{variant:?}");
            assert_eq!(
                got.final_global_cost.to_bits(),
                summary.final_global_cost.to_bits(),
                "{variant:?}"
            );
            assert_eq!(fused.alphas_used(), split.alphas_used(), "{variant:?}");
            assert_eq!(fused.stats(), split.stats(), "{variant:?}");
            for i in 0..n {
                assert_eq!(
                    fused.allocation().share(i).to_bits(),
                    split.allocation().share(i).to_bits(),
                    "{variant:?} worker {i}"
                );
            }
        }
    }

    #[test]
    fn guard_rescale_path_matches_split_engine() {
        // An aggressive alpha floor keeps α large after tightening, which
        // periodically trips the feasibility guard in both engines; the
        // trajectories (and guard counters) must still agree bitwise.
        let n = 13;
        let rounds = 50;
        let costs = latency_fleet(n, 77);
        let config = DolbieConfig::new().with_alpha_floor(0.9);
        let mut split = Dolbie::with_config(Allocation::uniform(n), config);
        let mut fused = FusedDolbie::with_config(
            CostSlab::from_costs(&costs).unwrap(),
            Allocation::uniform(n),
            config,
        );
        for t in 0..rounds {
            let played = split.allocation().clone();
            let obs = Observation::from_costs(t, &played, &costs);
            split.observe(&obs);
            fused.step();
        }
        assert!(split.stats().guard_activations > 0, "floor never tripped the guard");
        assert_eq!(fused.stats(), split.stats());
        for i in 0..n {
            assert_eq!(
                fused.allocation().share(i).to_bits(),
                split.allocation().share(i).to_bits(),
                "worker {i}"
            );
        }
    }

    #[test]
    fn allocation_read_materializes_deferred_state() {
        let costs = latency_fleet(20, 4);
        let mut split = Dolbie::new(20);
        let mut fused = FusedDolbie::from_costs(&costs).unwrap();
        for t in 0..7 {
            let played = split.allocation().clone();
            let obs = Observation::from_costs(t, &played, &costs);
            split.observe(&obs);
            fused.step();
            // Mid-episode reads must already agree: the deferral is an
            // internal scheduling detail, not an observable lag.
            assert_eq!(fused.allocation().as_slice(), split.allocation().as_slice(), "round {t}");
        }
    }

    #[test]
    #[should_panic(expected = "not a FusedDolbie mode")]
    fn split_variant_is_rejected() {
        let slab = CostSlab::linear(&[LinearCost::new(1.0, 0.0), LinearCost::new(2.0, 0.0)]);
        let _ = FusedDolbie::new(slab).with_variant(KernelVariant::Split);
    }

    #[test]
    #[should_panic(expected = "one cost slab entry per worker")]
    fn mismatched_slab_and_allocation_panic() {
        let slab = CostSlab::linear(&[LinearCost::new(1.0, 0.0)]);
        let _ = FusedDolbie::with_config(slab, Allocation::uniform(2), DolbieConfig::new());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::cost::LatencyCost;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Satellite acceptance property: the fused kernel's compensated
        /// Σx pin keeps |Σx − 1| < 1e-12 across 10^4 rounds — well past
        /// dozens of refresh intervals — for random heterogeneous fleets
        /// in both kernel variants.
        #[test]
        fn fused_sum_pin_holds_for_1e4_rounds(
            n in 2usize..96,
            seed in 0u64..u64::MAX,
            simd in proptest::bool::ANY,
        ) {
            let mut state = seed;
            let fleet: Vec<LatencyCost> = (0..n).map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let speed = 32.0 + (state >> 40) as f64 / 65536.0;
                LatencyCost::new(128.0, speed, 0.02)
            }).collect();
            let variant = if simd { KernelVariant::Simd } else { KernelVariant::Fused };
            let mut d = FusedDolbie::new(CostSlab::latency(&fleet)).with_variant(variant);
            let summary = d.run(10_000);
            prop_assert_eq!(summary.rounds, 10_000);
            let sum = pairwise_neumaier_sum(d.allocation().as_slice());
            prop_assert!((sum - 1.0).abs() < 1e-12, "|Σx − 1| = {:e}", (sum - 1.0).abs());
            prop_assert!(d.allocation().iter().all(|&v| v >= 0.0));
        }
    }
}
