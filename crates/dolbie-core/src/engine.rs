//! The structure-of-arrays DOLBIE round engine.
//!
//! One implementation of the per-round update (eqs. (5)–(7)) drives both
//! public balancers: [`Dolbie`](crate::Dolbie) wraps it with sequential
//! passes, [`ChunkedDolbie`] with fixed-size worker chunks executed on the
//! work-stealing harness. The round state lives in flat `f64` slices
//! (`shares` inside the [`Allocation`], a reused `gains` scratch), so a
//! round is a handful of linear passes instead of an
//! allocate-validate-renormalize cycle — the property that makes
//! N = 10^6 workers tractable.
//!
//! # Determinism across chunk sizes and thread counts
//!
//! The chunked engine is *bitwise* identical to the sequential one, at any
//! chunk size and any thread count, by construction:
//!
//! - Per-worker quantities (cost evaluations, eq. (5) inverses, gains,
//!   share increments) are pure functions of the worker's own state, so it
//!   cannot matter which thread computes them or where chunk boundaries
//!   fall.
//! - The straggler argmax combines chunk-local `(cost, lowest index)`
//!   partials in chunk order with a strict `>`, which reproduces the
//!   sequential first-maximum scan exactly (comparison is exact, no
//!   rounding is involved).
//! - Every order-sensitive floating-point reduction — the eq. (6)
//!   remainder `Σ_i gain_i` and the Σx = 1 bookkeeping — goes through the
//!   fixed-shape compensated sum in [`numeric`](crate::numeric), whose
//!   association order depends only on the array length, never on the
//!   chunking.
//!
//! # The Σx = 1 pin, incrementally
//!
//! Algorithm 1 line 14 pins the sum through the straggler's coordinate,
//! `x_s = 1 − Σ_{i≠s} x_i`. Re-deriving `Σ_{i≠s} x_i` by summation every
//! round is O(N); the engine instead maintains a running
//! Neumaier-compensated total `T ≈ Σ_i x_i` and computes the pin as
//! `(T − x_s) + Σ_i gain_i` in O(1). The compensated running total drifts
//! by at most ~1 ulp per round, so every [`TOTAL_REFRESH_INTERVAL`] rounds
//! it is re-derived from the shares with the fixed-shape sum — a
//! deterministic, amortized-O(N/256) correction that keeps |Σx − 1| below
//! 1e-12 even after 10^4 rounds at N = 10^5 (property-tested below).

use crate::allocation::Allocation;
use crate::balancer::LoadBalancer;
use crate::dolbie::{DolbieConfig, DolbieStats, ReportedRound};
use crate::membership::{membership_alpha_cap, renormalize_onto_members};
use crate::numeric::{pairwise_neumaier_sum, pairwise_neumaier_sum_parallel, NeumaierSum};
use crate::observation::{max_acceptable_share, Observation};
use crate::parallel::parallel_for_each;
use crate::step_size::StepSize;

/// Rounds between full re-derivations of the running compensated total
/// `T ≈ Σ_i x_i` from the share slice. Both engines refresh on the same
/// round indices with the same fixed-shape sum, so the schedule does not
/// break bitwise equivalence.
pub const TOTAL_REFRESH_INTERVAL: usize = 256;

/// Default worker-chunk size for [`ChunkedDolbie`]: large enough that a
/// chunk amortizes its scheduling overhead, small enough to give the
/// work-stealing harness slack to balance heterogeneous inverse costs.
pub const DEFAULT_CHUNK_SIZE: usize = 4096;

/// The shared structure-of-arrays round state and update logic.
///
/// Fields are `pub(crate)` so the fused kernel
/// ([`kernel`](crate::kernel)) can drive the *same* state through its
/// merged sweeps — one set of invariants, two schedules.
#[derive(Debug, Clone)]
pub(crate) struct SoaEngine {
    pub(crate) x: Allocation,
    /// Per-worker eq. (5) gains, reused across rounds (`gains[s] = 0`).
    pub(crate) gains: Vec<f64>,
    pub(crate) alpha: StepSize,
    pub(crate) config: DolbieConfig,
    pub(crate) alphas_used: Vec<f64>,
    pub(crate) stats: DolbieStats,
    pub(crate) share_caps: Option<Vec<f64>>,
    /// Active-membership mask: inactive workers hold share exactly 0 and
    /// take no eq. (5) gain. All-true until `apply_membership` is called.
    pub(crate) active: Vec<bool>,
    /// Number of `true` entries in `active` — the `M` of the re-derived
    /// eq. (7) cap.
    pub(crate) active_count: usize,
    /// Running compensated total `T ≈ Σ_i x_i` behind the O(1) pin.
    pub(crate) total: NeumaierSum,
}

impl SoaEngine {
    pub(crate) fn new(initial: Allocation, config: DolbieConfig) -> Self {
        let alpha = StepSize::new(config.resolve_initial_alpha(&initial));
        let total = NeumaierSum::from_value(pairwise_neumaier_sum(initial.as_slice()));
        let n = initial.num_workers();
        let gains = vec![0.0; n];
        Self {
            x: initial,
            gains,
            alpha,
            config,
            alphas_used: Vec::new(),
            stats: DolbieStats::default(),
            share_caps: None,
            active: vec![true; n],
            active_count: n,
            total,
        }
    }

    /// Installs per-worker share caps; panics exactly as
    /// [`Dolbie::with_share_caps`](crate::Dolbie::with_share_caps)
    /// documents.
    pub(crate) fn set_share_caps(&mut self, caps: Vec<f64>) {
        assert_eq!(caps.len(), self.x.num_workers(), "one cap per worker");
        assert!(caps.iter().all(|&c| (0.0..=1.0).contains(&c)), "caps must lie in [0, 1]");
        assert!(caps.iter().sum::<f64>() >= 1.0 - 1e-9, "caps must cover the workload");
        for (i, (&cap, &share)) in caps.iter().zip(self.x.iter()).enumerate() {
            assert!(share <= cap + 1e-9, "initial share of worker {i} exceeds its cap");
        }
        self.share_caps = Some(caps);
    }

    /// Crosses a membership epoch boundary: re-normalizes the shares onto
    /// the simplex of `members` (departing mass redistributed
    /// proportionally, joiners at exactly 0), re-seeds the running Σx
    /// total from the fixed-shape sum, and shrinks `α` to the cap
    /// re-derived against the new member count. Pure and deterministic —
    /// sequential and chunked engines transition bitwise-identically.
    ///
    /// # Panics
    ///
    /// Panics if `members.len()` differs from the worker count, no worker
    /// remains a member, or share caps are installed (per-worker caps
    /// describe a fixed fleet; combining them with churn is unsupported).
    pub(crate) fn apply_membership(&mut self, members: &[bool]) {
        assert_eq!(members.len(), self.x.num_workers(), "one membership flag per worker");
        assert!(
            self.share_caps.is_none(),
            "membership changes are not supported together with share caps"
        );
        renormalize_onto_members(self.x.shares_mut(), members);
        self.active.clear();
        self.active.extend_from_slice(members);
        self.active_count = members.iter().filter(|&&m| m).count();
        self.total = NeumaierSum::from_value(pairwise_neumaier_sum(self.x.as_slice()));
        self.alpha.shrink_to(membership_alpha_cap(self.x.as_slice(), members));
    }

    pub(crate) fn allocation(&self) -> &Allocation {
        &self.x
    }

    pub(crate) fn alpha(&self) -> f64 {
        self.alpha.value().max(self.config.alpha_floor)
    }

    pub(crate) fn alphas_used(&self) -> &[f64] {
        &self.alphas_used
    }

    pub(crate) fn stats(&self) -> DolbieStats {
        self.stats
    }

    /// One DOLBIE round. `chunk_size: None` runs the passes as plain
    /// sequential loops; `Some(c)` runs them in `c`-worker chunks on the
    /// work-stealing harness. Both paths produce bitwise-identical state
    /// (see the module docs).
    /// Round preamble shared by [`observe_round`](Self::observe_round),
    /// [`apply_reported`](Self::apply_reported) and the fused kernel:
    /// bumps the round counter and records the step size the round is
    /// played with.
    pub(crate) fn begin_round(&mut self) -> f64 {
        self.stats.rounds += 1;
        let alpha = self.alpha();
        self.alphas_used.push(alpha);
        alpha
    }

    pub(crate) fn observe_round(
        &mut self,
        observation: &Observation<'_>,
        chunk_size: Option<usize>,
    ) {
        let n = observation.num_workers();
        assert_eq!(n, self.x.num_workers(), "observation covers a different worker set");
        let alpha = self.begin_round();
        if n == 1 {
            return;
        }

        let s = observation.straggler();
        let global_cost = observation.global_cost();
        let cost_fns = observation.cost_fns();
        let chunk = chunk_size.map(|c| c.max(1));

        // Pass A — eq. (5): each non-straggler's risk-averse gain toward
        // its maximum acceptable workload. Pure per worker.
        {
            let xs = self.x.as_slice();
            let caps = self.share_caps.as_deref();
            let active = self.active.as_slice();
            let fill = |base: usize, out: &mut [f64]| {
                for (off, g) in out.iter_mut().enumerate() {
                    let i = base + off;
                    if i == s || !active[i] {
                        *g = 0.0;
                        continue;
                    }
                    let xi = xs[i];
                    let mut target = max_acceptable_share(&cost_fns[i], xi, global_cost);
                    if let Some(caps) = caps {
                        target = target.min(caps[i]).max(xi);
                    }
                    let gain = alpha * (target - xi);
                    debug_assert!(gain >= -1e-12, "x'_{{i,t}} >= x_{{i,t}} must hold (Lemma 1 ii)");
                    *g = gain.max(0.0);
                }
            };
            match chunk {
                None => fill(0, &mut self.gains),
                Some(c) => {
                    let payloads: Vec<(usize, &mut [f64])> =
                        self.gains.chunks_mut(c).enumerate().map(|(k, ch)| (k * c, ch)).collect();
                    parallel_for_each(payloads, |(base, ch)| fill(base, ch));
                }
            }
        }

        self.finish_round(s, chunk);
    }

    /// One DOLBIE round driven by externally reported eq. (5) gains instead
    /// of locally evaluated cost functions — the master-side bookkeeping of
    /// a wire-protocol run, where each worker computes its own gain and
    /// sends back only scalars. The arithmetic after Pass A is shared with
    /// [`observe_round`](Self::observe_round), so provided every reported
    /// gain equals `(α · (x'_{i,t} − x_{i,t})).max(0)` computed at the same
    /// shares, the resulting state is bitwise identical to a locally
    /// observed round.
    ///
    /// Gains at the straggler's index and at inactive members are forced to
    /// exactly `0.0`, matching Pass A.
    pub(crate) fn apply_reported(&mut self, straggler: usize, gains: &[f64]) -> ReportedRound {
        let n = self.x.num_workers();
        assert_eq!(gains.len(), n, "one reported gain per worker");
        assert!(straggler < n, "straggler index out of range");
        assert!(self.active[straggler], "the straggler must be an active member");
        self.begin_round();
        if n == 1 {
            return ReportedRound { straggler_share: self.x.share(0), rescale: None };
        }
        for (i, (g, &reported)) in self.gains.iter_mut().zip(gains).enumerate() {
            *g = if i == straggler || !self.active[i] {
                0.0
            } else {
                debug_assert!(reported >= 0.0, "eq. (5) gains are non-negative");
                reported
            };
        }
        self.finish_round(straggler, None)
    }

    /// The order-sensitive tail of a round, shared by both entry points:
    /// the eq. (6) remainder, the feasibility guard, the Σx = 1 pin, the
    /// gain application, and the eq. (7) tightening. `self.gains` must
    /// already hold the round's gains with `gains[s] = 0`.
    fn finish_round(&mut self, s: usize, chunk: Option<usize>) -> ReportedRound {
        let straggler_share = self.x.share(s);

        // Eq. (6) remainder: the one order-sensitive sum, via the
        // fixed-shape compensated reduction.
        let sum_fixed = |values: &[f64]| match chunk {
            None => pairwise_neumaier_sum(values),
            Some(_) => pairwise_neumaier_sum_parallel(values),
        };
        let mut total_gain = sum_fixed(&self.gains);

        // Floating-point / alpha-floor guard: eq. (7) proves
        // total_gain <= x_{s,t} in exact arithmetic; rescale if rounding
        // (or the floor extension) breaks it so constraint (3) holds.
        let mut rescale = None;
        if total_gain > straggler_share && total_gain > 0.0 {
            let scale = straggler_share / total_gain;
            rescale = Some(scale);
            match chunk {
                None => {
                    for g in &mut self.gains {
                        *g *= scale;
                    }
                }
                Some(c) => {
                    let payloads: Vec<&mut [f64]> = self.gains.chunks_mut(c).collect();
                    parallel_for_each(payloads, |ch| {
                        for g in ch {
                            *g *= scale;
                        }
                    });
                }
            }
            // Re-derive the remainder from the rescaled gains so the
            // incremental Σx bookkeeping stays exact.
            total_gain = sum_fixed(&self.gains);
            self.stats.guard_activations += 1;
        }

        // The O(1) pin: x_s = 1 − Σ_{i≠s} x_i with
        // Σ_{i≠s} x_i = (T − x_s) + Σ_i gain_i, all compensated.
        let mut running = self.total;
        running.add(-straggler_share);
        running.add(total_gain);
        let new_straggler_share = (1.0 - running.value()).max(0.0);
        debug_assert!(new_straggler_share.is_finite(), "pin produced a non-finite share");

        // Pass B — apply the gains and the pinned straggler share. Pure
        // per worker (`gains[s] = 0`, then the straggler is overwritten).
        {
            let xs = self.x.shares_mut();
            match chunk {
                None => {
                    for (x, g) in xs.iter_mut().zip(&self.gains) {
                        *x += *g;
                    }
                }
                Some(c) => {
                    let payloads: Vec<(&mut [f64], &[f64])> =
                        xs.chunks_mut(c).zip(self.gains.chunks(c)).collect();
                    parallel_for_each(payloads, |(xc, gc)| {
                        for (x, g) in xc.iter_mut().zip(gc) {
                            *x += *g;
                        }
                    });
                }
            }
            xs[s] = new_straggler_share;
        }
        running.add(new_straggler_share);
        self.total = running;

        // Periodic re-derivation bounds the running total's ulp drift.
        if self.stats.rounds.is_multiple_of(TOTAL_REFRESH_INTERVAL) {
            self.total = NeumaierSum::from_value(sum_fixed(self.x.as_slice()));
        }

        // Eq. (7): tighten the step size with the straggler's new share,
        // against the *active* member count (equal to n absent churn).
        self.alpha.tighten(self.active_count, new_straggler_share);

        ReportedRound { straggler_share: new_straggler_share, rescale }
    }
}

/// DOLBIE with chunked intra-round parallelism for large worker counts.
///
/// Behaviourally identical to [`Dolbie`](crate::Dolbie) — same trajectory,
/// bit for bit, at any chunk size and any
/// [`set_threads`](crate::parallel::set_threads) setting — but each round's
/// linear passes (eq. (5) inverses, gain application) run in fixed-size
/// worker chunks on the work-stealing harness, and the reductions use the
/// parallel fixed-shape compensated sum. Pair it with
/// [`Observation::from_costs_chunked`] to also parallelize the cost
/// evaluation and the straggler argmax.
///
/// # Examples
///
/// ```
/// use dolbie_core::{ChunkedDolbie, Dolbie, LoadBalancer, Observation};
/// use dolbie_core::cost::{DynCost, LinearCost};
///
/// let costs: Vec<DynCost> = (0..64)
///     .map(|i| Box::new(LinearCost::new(1.0 + (i % 5) as f64, 0.0)) as DynCost)
///     .collect();
/// let mut sequential = Dolbie::new(64);
/// let mut chunked = ChunkedDolbie::new(64).with_chunk_size(7);
/// for t in 0..50 {
///     let played = sequential.allocation().clone();
///     let obs = Observation::from_costs(t, &played, &costs);
///     sequential.observe(&obs);
///     let played = chunked.allocation().clone();
///     let obs = Observation::from_costs_chunked(t, &played, &costs, Vec::new(), 7);
///     chunked.observe(&obs);
/// }
/// for i in 0..64 {
///     assert_eq!(
///         sequential.allocation().share(i).to_bits(),
///         chunked.allocation().share(i).to_bits(),
///     );
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ChunkedDolbie {
    engine: SoaEngine,
    chunk_size: usize,
}

impl ChunkedDolbie {
    /// Creates the chunked engine over `n` workers with the uniform
    /// initial split, the default configuration and
    /// [`DEFAULT_CHUNK_SIZE`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::with_config(Allocation::uniform(n), DolbieConfig::new())
    }

    /// Creates the chunked engine from an arbitrary feasible initial
    /// partition and a configuration.
    pub fn with_config(initial: Allocation, config: DolbieConfig) -> Self {
        Self { engine: SoaEngine::new(initial, config), chunk_size: DEFAULT_CHUNK_SIZE }
    }

    /// Sets the worker-chunk size (clamped to at least 1). Any value
    /// produces the same trajectory; it only tunes scheduling granularity.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Adds per-worker share caps, exactly as
    /// [`Dolbie::with_share_caps`](crate::Dolbie::with_share_caps).
    ///
    /// # Panics
    ///
    /// As [`Dolbie::with_share_caps`](crate::Dolbie::with_share_caps).
    pub fn with_share_caps(mut self, caps: Vec<f64>) -> Self {
        self.engine.set_share_caps(caps);
        self
    }

    /// The configured worker-chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// The current step size `α_t`.
    pub fn alpha(&self) -> f64 {
        self.engine.alpha()
    }

    /// Crosses a membership epoch boundary, exactly as
    /// [`Dolbie::apply_membership`](crate::Dolbie::apply_membership) —
    /// the chunked engine transitions bitwise-identically to the
    /// sequential one.
    ///
    /// # Panics
    ///
    /// As [`Dolbie::apply_membership`](crate::Dolbie::apply_membership).
    pub fn apply_membership(&mut self, members: &[bool]) {
        self.engine.apply_membership(members);
    }

    /// The step sizes actually applied in each observed round.
    pub fn alphas_used(&self) -> &[f64] {
        self.engine.alphas_used()
    }

    /// Update counters.
    pub fn stats(&self) -> DolbieStats {
        self.engine.stats()
    }
}

impl LoadBalancer for ChunkedDolbie {
    fn name(&self) -> &str {
        "DOLBIE"
    }

    fn allocation(&self) -> &Allocation {
        self.engine.allocation()
    }

    fn observe(&mut self, observation: &Observation<'_>) {
        let chunk = self.chunk_size;
        self.engine.observe_round(observation, Some(chunk));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{DynCost, LatencyCost, LinearCost};
    use crate::parallel::set_threads;

    fn splitmix(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Heterogeneous-latency fleet: speeds from a seeded hash.
    fn latency_fleet(n: usize, seed: u64) -> Vec<DynCost> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                let speed = 64.0 + 448.0 * splitmix(&mut state);
                Box::new(LatencyCost::new(256.0, speed, 0.05)) as DynCost
            })
            .collect()
    }

    /// Tie-heavy fleet: only 3 distinct slopes across n workers, so the
    /// straggler argmax faces massive ties every round and must resolve
    /// them to the lowest index.
    fn tie_heavy_fleet(n: usize) -> Vec<DynCost> {
        (0..n)
            .map(|i| {
                let slope = [3.0, 3.0, 1.0][i % 3];
                Box::new(LinearCost::new(slope, 0.1)) as DynCost
            })
            .collect()
    }

    struct Trajectory {
        share_bits: Vec<Vec<u64>>,
        stragglers: Vec<usize>,
        alpha_bits: Vec<u64>,
    }

    fn run_sequential(costs: &[DynCost], rounds: usize) -> Trajectory {
        let mut d = Dolbie::new(costs.len());
        let mut t =
            Trajectory { share_bits: Vec::new(), stragglers: Vec::new(), alpha_bits: Vec::new() };
        for round in 0..rounds {
            let played = d.allocation().clone();
            let obs = Observation::from_costs(round, &played, costs);
            t.stragglers.push(obs.straggler());
            d.observe(&obs);
            t.share_bits.push(d.allocation().iter().map(|v| v.to_bits()).collect());
        }
        t.alpha_bits = d.alphas_used().iter().map(|a| a.to_bits()).collect();
        t
    }

    fn run_chunked(costs: &[DynCost], rounds: usize, chunk: usize) -> Trajectory {
        let mut d = ChunkedDolbie::new(costs.len()).with_chunk_size(chunk);
        let mut t =
            Trajectory { share_bits: Vec::new(), stragglers: Vec::new(), alpha_bits: Vec::new() };
        let mut scratch = Vec::new();
        for round in 0..rounds {
            let played = d.allocation().clone();
            let obs = Observation::from_costs_chunked(round, &played, costs, scratch, chunk);
            t.stragglers.push(obs.straggler());
            d.observe(&obs);
            t.share_bits.push(d.allocation().iter().map(|v| v.to_bits()).collect());
            scratch = obs.into_local_costs();
        }
        t.alpha_bits = d.alphas_used().iter().map(|a| a.to_bits()).collect();
        t
    }

    use crate::Dolbie;

    /// The tentpole determinism claim: shares, straggler ids and the α
    /// schedule are byte-identical between the chunked SoA engine and the
    /// sequential `Dolbie` across chunk sizes {1, 7, 64, N} and threads
    /// {1, 4}, including tie-heavy cost streams.
    #[test]
    fn chunked_engine_is_bitwise_identical_to_sequential() {
        let n = 97; // Prime: every chunk size leaves a ragged tail.
        let rounds = 60;
        for costs in [latency_fleet(n, 11), tie_heavy_fleet(n)] {
            let reference = run_sequential(&costs, rounds);
            for chunk in [1usize, 7, 64, n] {
                for threads in [1usize, 4] {
                    set_threads(threads);
                    let got = run_chunked(&costs, rounds, chunk);
                    set_threads(0);
                    assert_eq!(
                        got.stragglers, reference.stragglers,
                        "straggler ids diverged (chunk {chunk}, threads {threads})"
                    );
                    assert_eq!(
                        got.alpha_bits, reference.alpha_bits,
                        "alpha schedule diverged (chunk {chunk}, threads {threads})"
                    );
                    assert_eq!(
                        got.share_bits, reference.share_bits,
                        "shares diverged (chunk {chunk}, threads {threads})"
                    );
                }
            }
        }
    }

    #[test]
    fn chunked_engine_respects_share_caps_bitwise() {
        let n = 31;
        let rounds = 40;
        let costs = latency_fleet(n, 5);
        let caps: Vec<f64> = (0..n).map(|i| if i % 4 == 0 { 0.08 } else { 1.0 }).collect();
        let mut sequential = Dolbie::new(n).with_share_caps(caps.clone());
        let mut chunked = ChunkedDolbie::new(n).with_chunk_size(7).with_share_caps(caps);
        for round in 0..rounds {
            let played = sequential.allocation().clone();
            let obs = Observation::from_costs(round, &played, &costs);
            sequential.observe(&obs);
            let played = chunked.allocation().clone();
            let obs = Observation::from_costs_chunked(round, &played, &costs, Vec::new(), 7);
            chunked.observe(&obs);
        }
        for i in 0..n {
            assert_eq!(
                sequential.allocation().share(i).to_bits(),
                chunked.allocation().share(i).to_bits(),
                "worker {i}"
            );
        }
        assert_eq!(sequential.stats(), chunked.stats());
    }

    /// Membership epochs preserve the chunked/sequential bitwise
    /// equivalence: a leave (worker 3), a crash-style leave (worker 0)
    /// and a rejoin (worker 3) produce identical shares and α schedules
    /// at every chunk size and thread count, with the Σx = 1 pin intact.
    #[test]
    fn chunked_engine_matches_sequential_bitwise_through_churn() {
        let n = 41;
        let rounds = 90;
        let costs = latency_fleet(n, 29);
        let boundary = |t: usize| -> Option<Vec<bool>> {
            match t {
                20 => Some((0..n).map(|i| i != 3).collect()),
                35 => Some((0..n).map(|i| i != 3 && i != 0).collect()),
                60 => Some((0..n).map(|i| i != 0).collect()),
                _ => None,
            }
        };
        let mut members = vec![true; n];
        let mut sequential = Dolbie::new(n);
        let mut reference =
            Trajectory { share_bits: Vec::new(), stragglers: Vec::new(), alpha_bits: Vec::new() };
        for t in 0..rounds {
            if let Some(m) = boundary(t) {
                members = m;
                sequential.apply_membership(&members);
            }
            let played = sequential.allocation().clone();
            let obs = Observation::from_costs_masked(t, &played, &costs, &members, Vec::new());
            reference.stragglers.push(obs.straggler());
            sequential.observe(&obs);
            reference
                .share_bits
                .push(sequential.allocation().iter().map(|v| v.to_bits()).collect());
        }
        reference.alpha_bits = sequential.alphas_used().iter().map(|a| a.to_bits()).collect();
        let sum = pairwise_neumaier_sum(sequential.allocation().as_slice());
        assert!((sum - 1.0).abs() < 1e-12, "|Σx − 1| = {:e}", (sum - 1.0).abs());
        // Worker 3 rejoined at round 60 and must have grown from zero.
        assert!(sequential.allocation().share(3) > 0.0, "rejoined worker never regained work");
        assert_eq!(sequential.allocation().share(0), 0.0, "departed worker holds share");

        for chunk in [1usize, 7, n] {
            for threads in [1usize, 4] {
                set_threads(threads);
                let mut members = vec![true; n];
                let mut d = ChunkedDolbie::new(n).with_chunk_size(chunk);
                let mut got = Trajectory {
                    share_bits: Vec::new(),
                    stragglers: Vec::new(),
                    alpha_bits: Vec::new(),
                };
                for t in 0..rounds {
                    if let Some(m) = boundary(t) {
                        members = m;
                        d.apply_membership(&members);
                    }
                    let played = d.allocation().clone();
                    let obs =
                        Observation::from_costs_masked(t, &played, &costs, &members, Vec::new());
                    got.stragglers.push(obs.straggler());
                    d.observe(&obs);
                    got.share_bits.push(d.allocation().iter().map(|v| v.to_bits()).collect());
                }
                got.alpha_bits = d.alphas_used().iter().map(|a| a.to_bits()).collect();
                set_threads(0);
                assert_eq!(got.stragglers, reference.stragglers, "chunk {chunk}, {threads} thr");
                assert_eq!(got.alpha_bits, reference.alpha_bits, "chunk {chunk}, {threads} thr");
                assert_eq!(got.share_bits, reference.share_bits, "chunk {chunk}, {threads} thr");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not supported together with share caps")]
    fn membership_with_share_caps_is_rejected() {
        let mut d = ChunkedDolbie::new(4).with_share_caps(vec![1.0; 4]);
        d.apply_membership(&[true, true, true, false]);
    }

    #[test]
    fn incremental_pin_keeps_the_sum_exact_in_debug_sizes() {
        // Scaled-down version of the release property below: well past
        // several TOTAL_REFRESH_INTERVALs so both the incremental path and
        // the refresh path are exercised.
        let n = 1000;
        let costs = latency_fleet(n, 23);
        let mut d = Dolbie::new(n);
        let mut scratch = Vec::new();
        for round in 0..(4 * TOTAL_REFRESH_INTERVAL + 17) {
            let played = d.allocation().clone();
            let obs = Observation::from_costs_in(round, &played, &costs, scratch);
            d.observe(&obs);
            scratch = obs.into_local_costs();
        }
        let sum = pairwise_neumaier_sum(d.allocation().as_slice());
        assert!((sum - 1.0).abs() < 1e-12, "|Σx − 1| = {:e}", (sum - 1.0).abs());
        assert!(d.allocation().iter().all(|&v| v >= 0.0));
    }

    /// The satellite acceptance property at full scale: |Σx − 1| < 1e-12
    /// after 10^4 rounds at N = 10^5. Ignored by default (release-only
    /// runtime); `scripts/tier1.sh` runs it with `--release -- --ignored`.
    #[test]
    #[ignore = "release-scale: run via scripts/tier1.sh"]
    fn sum_stays_pinned_after_1e4_rounds_at_1e5_workers() {
        let n = 100_000;
        let rounds = 10_000;
        let costs = latency_fleet(n, 42);
        let mut d = ChunkedDolbie::new(n);
        let summary = crate::runner::run_episode_with_static_costs(
            &mut d,
            &costs,
            rounds,
            Some(DEFAULT_CHUNK_SIZE),
        );
        assert_eq!(summary.rounds, rounds);
        let sum = pairwise_neumaier_sum(d.allocation().as_slice());
        assert!((sum - 1.0).abs() < 1e-12, "|Σx − 1| = {:e}", (sum - 1.0).abs());
        assert!(d.allocation().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn chunk_size_accessors_and_clamping() {
        let d = ChunkedDolbie::new(8);
        assert_eq!(d.chunk_size(), DEFAULT_CHUNK_SIZE);
        assert_eq!(d.name(), "DOLBIE");
        let d = d.with_chunk_size(0);
        assert_eq!(d.chunk_size(), 1, "chunk size clamps to at least 1");
    }

    #[test]
    fn single_worker_round_is_a_fixed_point() {
        let mut d = ChunkedDolbie::new(1);
        let costs: Vec<DynCost> = vec![Box::new(LinearCost::new(2.0, 0.0))];
        for round in 0..5 {
            let played = d.allocation().clone();
            let obs = Observation::from_costs_chunked(round, &played, &costs, Vec::new(), 1);
            d.observe(&obs);
            assert_eq!(d.allocation().share(0), 1.0);
        }
        assert_eq!(d.stats().rounds, 5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::cost::{DynCost, LatencyCost};
    use crate::Dolbie;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The incremental Σx = 1 pin holds across random heterogeneous
        /// fleets and horizons spanning several refresh intervals.
        #[test]
        fn sum_pin_property(
            n in 2usize..400,
            rounds in 1usize..600,
            seed in 0u64..u64::MAX,
        ) {
            let mut state = seed;
            let costs: Vec<DynCost> = (0..n).map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let speed = 32.0 + (state >> 40) as f64 / 65536.0;
                Box::new(LatencyCost::new(128.0, speed, 0.02)) as DynCost
            }).collect();
            let mut d = Dolbie::new(n);
            let mut scratch = Vec::new();
            for round in 0..rounds {
                let played = d.allocation().clone();
                let obs = crate::Observation::from_costs_in(round, &played, &costs, scratch);
                d.observe(&obs);
                scratch = obs.into_local_costs();
            }
            let sum = crate::numeric::pairwise_neumaier_sum(d.allocation().as_slice());
            prop_assert!((sum - 1.0).abs() < 1e-12, "|Σx − 1| = {:e}", (sum - 1.0).abs());
            prop_assert!(d.allocation().iter().all(|&v| v >= 0.0));
        }
    }
}
