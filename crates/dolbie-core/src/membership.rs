//! Simplex-safe re-normalization for elastic worker membership.
//!
//! The paper fixes the worker set for all `T` rounds; this module supplies
//! the two pure functions that let the engine (and, bitwise-identically,
//! the protocol simulators in `dolbie-simnet`) cross an *epoch boundary* —
//! a round at which workers leave or (re)join:
//!
//! - [`renormalize_onto_members`] redistributes departing shares
//!   proportionally over the continuing members with the fixed-shape
//!   compensated sum of [`numeric`](crate::numeric), then pins the
//!   residual onto one deterministic coordinate so `|Σx − 1| < 1e-12`
//!   holds across arbitrarily many epochs. Joiners enter at share exactly
//!   `0.0` and are grown by the ordinary eq. (5)/(6) update afterwards.
//! - [`membership_alpha_cap`] re-derives the eq. (7) feasibility cap
//!   against the *new* active member count `M`.
//!
//! # Why the cap uses the member count and the minimum positive share
//!
//! After a boundary, `Σ_{i active} x_i = 1`, so in a round with straggler
//! `s` the non-stragglers' total eq. (5) gain is at most
//! `α · Σ_{i≠s} (x'_i − x_i) ≤ α (M − 2 + x_s)` — the same algebra as the
//! paper's eq. (7) with `N` replaced by the active count `M`. Requiring
//! the gain to fit inside `x_s` for *whichever* member straggles next
//! means capping with the smallest share a straggler could hold; since
//! `z / (M − 2 + z)` is increasing in `z`, that is the minimum share.
//! Zero-share joiners are excluded from that minimum: a joiner that
//! straggles holds nothing to give, the engine's rescale guard already
//! clamps the total gain to the straggler's share in that case, and
//! including it would collapse `α` to 0 at every join. The boundary rule
//! is `α ← min(α, cap)`, so `α` never increases — the Theorem 1
//! monotonicity invariant survives churn by construction (tested below).

use crate::numeric::pairwise_neumaier_sum;
use crate::step_size::feasibility_cap;

/// Re-normalizes `shares` onto the simplex of the active members.
///
/// Non-members' shares are set to exactly `0.0` (exact, so differently
/// ordered sums over the full slice stay bitwise-consistent downstream).
/// Continuing members keep their mutual proportions: each is scaled by
/// `1 / S` where `S` is the fixed-shape compensated sum of member shares.
/// If no member holds positive share (every member is a fresh joiner),
/// the mass is split uniformly. Finally the residual `1 − Σx` is pinned
/// onto the largest-share member (lowest index on ties), keeping
/// `|Σx − 1|` at the few-ulp level per epoch.
///
/// The function is a pure, order-insensitive map of `(shares, members)`,
/// so every caller — sequential engine, chunked engine, and the three
/// protocol simulators — transitions to bitwise-identical state.
///
/// # Panics
///
/// Panics if the slices differ in length or no worker is a member.
pub fn renormalize_onto_members(shares: &mut [f64], members: &[bool]) {
    assert_eq!(shares.len(), members.len(), "one membership flag per worker");
    let member_count = members.iter().filter(|&&m| m).count();
    assert!(member_count >= 1, "membership must keep at least one worker");

    for (x, &m) in shares.iter_mut().zip(members) {
        if !m {
            *x = 0.0;
        }
    }
    // Non-members contribute exact zeros, so summing the full slice has
    // the same fixed reduction shape every epoch.
    let mass = pairwise_neumaier_sum(shares);
    if mass > 0.0 {
        let scale = 1.0 / mass;
        for (x, &m) in shares.iter_mut().zip(members) {
            if m {
                *x *= scale;
            }
        }
    } else {
        let uniform = 1.0 / member_count as f64;
        for (x, &m) in shares.iter_mut().zip(members) {
            if m {
                *x = uniform;
            }
        }
    }
    // Pin the rounding residual onto one deterministic coordinate: the
    // largest member share, lowest index on ties (strict `>` scan).
    let residual = 1.0 - pairwise_neumaier_sum(shares);
    if residual != 0.0 {
        let mut pin: Option<(usize, f64)> = None;
        for (i, (&x, &m)) in shares.iter().zip(members).enumerate() {
            if m && pin.is_none_or(|(_, best)| x > best) {
                pin = Some((i, x));
            }
        }
        let (i, x) = pin.expect("at least one member");
        shares[i] = (x + residual).max(0.0);
    }
}

/// The eq. (7) feasibility cap re-derived against the active member set:
/// `feasibility_cap(M, z)` where `M` is the member count and `z` the
/// smallest *positive* member share (worst admissible straggler — see the
/// module docs for why zero-share joiners are excluded). Returns `1.0`
/// when `M <= 1` or no member holds positive share, both of which make
/// the cap vacuous.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn membership_alpha_cap(shares: &[f64], members: &[bool]) -> f64 {
    assert_eq!(shares.len(), members.len(), "one membership flag per worker");
    let member_count = members.iter().filter(|&&m| m).count();
    let mut min_positive = f64::INFINITY;
    for (&x, &m) in shares.iter().zip(members) {
        if m && x > 0.0 && x < min_positive {
            min_positive = x;
        }
    }
    if !min_positive.is_finite() {
        return 1.0;
    }
    feasibility_cap(member_count, min_positive)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn departing_share_is_redistributed_proportionally() {
        let mut shares = vec![0.5, 0.3, 0.2];
        let members = vec![true, false, true];
        renormalize_onto_members(&mut shares, &members);
        assert_eq!(shares[1], 0.0, "departed worker holds exactly zero");
        // 0.5 : 0.2 proportions preserved over the remaining mass 0.7.
        assert!((shares[0] - 0.5 / 0.7).abs() < 1e-12);
        assert!((shares[2] - 0.2 / 0.7).abs() < 1e-12);
        let sum: f64 = pairwise_neumaier_sum(&shares);
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn joiner_enters_at_exactly_zero() {
        // Worker 3 rejoins: it was absent (share 0) and stays at 0 until
        // the eq. (5)/(6) update grows it.
        let mut shares = vec![0.6, 0.4, 0.0, 0.0];
        let members = vec![true, true, false, true];
        renormalize_onto_members(&mut shares, &members);
        assert_eq!(shares[3], 0.0);
        assert_eq!(shares[2], 0.0);
        assert!((shares[0] - 0.6).abs() < 1e-12);
        assert!((shares[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn all_fresh_members_split_uniformly() {
        let mut shares = vec![0.0, 0.0, 0.0, 1.0];
        let members = vec![true, true, false, false];
        renormalize_onto_members(&mut shares, &members);
        assert_eq!(shares, vec![0.5, 0.5, 0.0, 0.0]);
    }

    #[test]
    fn lone_member_takes_everything() {
        let mut shares = vec![0.25, 0.25, 0.25, 0.25];
        let members = vec![false, false, true, false];
        renormalize_onto_members(&mut shares, &members);
        assert_eq!(shares, vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_membership_is_rejected() {
        let mut shares = vec![0.5, 0.5];
        renormalize_onto_members(&mut shares, &[false, false]);
    }

    #[test]
    fn sum_pin_survives_many_random_epochs() {
        // The tentpole numeric claim: |Σx − 1| < 1e-12 across arbitrarily
        // many membership epochs, at a size where naive summation drifts.
        let n = 10_000;
        let mut state = 17u64;
        let mut shares: Vec<f64> = (0..n).map(|_| splitmix(&mut state) + 1e-6).collect();
        let norm: f64 = shares.iter().sum();
        shares.iter_mut().for_each(|x| *x /= norm);
        let mut members = vec![true; n];
        for _epoch in 0..200 {
            // Flip ~10% of memberships, never emptying the set.
            for flag in members.iter_mut() {
                if splitmix(&mut state) < 0.1 {
                    *flag = !*flag;
                }
            }
            if !members.iter().any(|&m| m) {
                members[0] = true;
            }
            renormalize_onto_members(&mut shares, &members);
            let sum = pairwise_neumaier_sum(&shares);
            assert!((sum - 1.0).abs() < 1e-12, "|Σx − 1| = {:e}", (sum - 1.0).abs());
            assert!(shares.iter().all(|&x| x >= 0.0));
            for (i, (&x, &m)) in shares.iter().zip(&members).enumerate() {
                assert!(m || x == 0.0, "non-member {i} holds share {x}");
            }
        }
    }

    #[test]
    fn alpha_cap_uses_member_count_and_min_positive_share() {
        let shares = vec![0.5, 0.0, 0.3, 0.2];
        let members = vec![true, true, true, true];
        // Worker 1 is a zero-share joiner: excluded from the minimum.
        let cap = membership_alpha_cap(&shares, &members);
        assert!((cap - feasibility_cap(4, 0.2)).abs() < 1e-15);
        // Shrinking the member set raises the cap (fewer claimants).
        let fewer = vec![true, false, true, true];
        let mut s = shares.clone();
        renormalize_onto_members(&mut s, &fewer);
        assert!(membership_alpha_cap(&s, &fewer) > cap);
    }

    #[test]
    fn alpha_cap_degenerate_cases() {
        assert_eq!(membership_alpha_cap(&[1.0], &[true]), 1.0);
        assert_eq!(membership_alpha_cap(&[0.0, 0.0], &[true, true]), 1.0);
    }

    #[test]
    fn alpha_never_increases_across_random_epochs() {
        // α ← min(α, cap) at each boundary, interleaved with eq. (7)
        // tightenings: the combined sequence must be non-increasing.
        let mut state = 5u64;
        let n = 64;
        let mut shares: Vec<f64> = vec![1.0 / n as f64; n];
        let mut members = vec![true; n];
        let mut alpha = 1.0f64;
        let mut prev = alpha;
        for _ in 0..500 {
            for flag in members.iter_mut() {
                if splitmix(&mut state) < 0.15 {
                    *flag = !*flag;
                }
            }
            if !members.iter().any(|&m| m) {
                members[7] = true;
            }
            renormalize_onto_members(&mut shares, &members);
            alpha = alpha.min(membership_alpha_cap(&shares, &members));
            assert!(alpha <= prev, "α increased at a boundary: {prev} -> {alpha}");
            prev = alpha;
        }
    }
}
