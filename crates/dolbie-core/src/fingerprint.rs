//! Canonical state fingerprinting for visited-state pruning.
//!
//! The model checker in `dolbie-mc` enumerates scheduler decisions and
//! prunes a branch as soon as it reaches a protocol state it has already
//! expanded. That is only sound if the fingerprint covers *everything*
//! that determines the continuation of a run: shares, step sizes,
//! membership masks, per-round protocol bookkeeping, and the multiset of
//! in-flight messages. This module provides the two hashing disciplines
//! that construction needs:
//!
//! - [`StateFp`] — an order-*dependent* accumulator (a splitmix64-fed
//!   chain) for positional state: `shares[0]` and `shares[1]` swapping
//!   values must produce a different fingerprint.
//! - [`MultisetFp`] — an order-*independent* accumulator (wrapping sum of
//!   per-element hashes) for the in-flight event multiset: two pending
//!   deliveries hash identically regardless of heap iteration order, and
//!   duplicate elements (unlike an XOR fold) do not cancel.
//!
//! Floats are hashed by their IEEE-754 bit patterns ([`f64::to_bits`]),
//! matching the repo-wide bitwise-determinism discipline: two states
//! fingerprint equal only if every scalar is *bitwise* equal, never
//! merely approximately so. Wall-clock times are deliberately *not*
//! fingerprinted by the callers — delivery order is a scheduler decision
//! in the model checker, so two states differing only in event
//! timestamps have identical protocol-visible continuations (the timing
//! abstraction DESIGN.md §13 argues).

/// One step of the splitmix64 output permutation — the same finalizer the
/// fault plan's decision hashes use, so fingerprints inherit its
/// avalanche behaviour.
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Order-dependent fingerprint accumulator for positional protocol state.
///
/// ```
/// use dolbie_core::fingerprint::StateFp;
///
/// let mut a = StateFp::new(1);
/// a.push_f64_slice(&[0.25, 0.75]);
/// let mut b = StateFp::new(1);
/// b.push_f64_slice(&[0.75, 0.25]);
/// assert_ne!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct StateFp {
    state: u64,
}

impl StateFp {
    /// Starts a fingerprint chain from a domain tag (callers use distinct
    /// tags per architecture so a master-worker state can never collide
    /// with a ring state holding the same scalars).
    #[must_use]
    pub fn new(tag: u64) -> Self {
        Self { state: mix64(tag) }
    }

    /// Folds one word into the chain.
    pub fn push_u64(&mut self, word: u64) {
        self.state = mix64(self.state ^ word);
    }

    /// Folds a float by bit pattern (`-0.0` and `0.0` hash differently;
    /// bitwise equality is the repo's determinism contract).
    pub fn push_f64(&mut self, value: f64) {
        self.push_u64(value.to_bits());
    }

    /// Folds `usize` values (rounds, counts, indices) portably.
    pub fn push_usize(&mut self, value: usize) {
        self.push_u64(value as u64);
    }

    /// Folds a slice of floats positionally, length included.
    pub fn push_f64_slice(&mut self, values: &[f64]) {
        self.push_usize(values.len());
        for &v in values {
            self.push_f64(v);
        }
    }

    /// Folds a boolean mask (membership, down, received flags) as packed
    /// words, length included.
    pub fn push_bool_slice(&mut self, values: &[bool]) {
        self.push_usize(values.len());
        let mut word = 0u64;
        let mut bits = 0u32;
        for &b in values {
            word = (word << 1) | u64::from(b);
            bits += 1;
            if bits == 64 {
                self.push_u64(word);
                word = 0;
                bits = 0;
            }
        }
        if bits > 0 {
            self.push_u64(word);
        }
    }

    /// Folds an optional float, distinguishing `None` from any value.
    pub fn push_opt_f64(&mut self, value: Option<f64>) {
        match value {
            None => self.push_u64(0),
            Some(v) => {
                self.push_u64(1);
                self.push_f64(v);
            }
        }
    }

    /// Finishes the chain.
    #[must_use]
    pub fn finish(&self) -> u64 {
        mix64(self.state)
    }
}

/// Order-independent fingerprint accumulator for multisets.
///
/// Elements are hashed individually (callers build each element hash with
/// a [`StateFp`]) and combined with a wrapping sum, so the result does
/// not depend on insertion order and repeated elements accumulate rather
/// than cancel:
///
/// ```
/// use dolbie_core::fingerprint::MultisetFp;
///
/// let mut ab = MultisetFp::new();
/// ab.insert(7);
/// ab.insert(9);
/// let mut ba = MultisetFp::new();
/// ba.insert(9);
/// ba.insert(7);
/// assert_eq!(ab.finish(), ba.finish());
///
/// let mut twice = MultisetFp::new();
/// twice.insert(7);
/// twice.insert(7);
/// let mut once = MultisetFp::new();
/// once.insert(7);
/// assert_ne!(twice.finish(), once.finish());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MultisetFp {
    sum: u64,
    count: u64,
}

impl MultisetFp {
    /// Starts an empty multiset.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one element by its hash.
    pub fn insert(&mut self, element_hash: u64) {
        self.sum = self.sum.wrapping_add(mix64(element_hash));
        self.count += 1;
    }

    /// Finishes the multiset digest (cardinality folded in, so the empty
    /// multiset differs from `{0}`).
    #[must_use]
    pub fn finish(&self) -> u64 {
        mix64(self.sum ^ self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positional_sensitivity() {
        let mut a = StateFp::new(0);
        a.push_f64_slice(&[1.0, 2.0, 3.0]);
        let mut b = StateFp::new(0);
        b.push_f64_slice(&[1.0, 3.0, 2.0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn tag_separates_domains() {
        let mut a = StateFp::new(1);
        a.push_f64(0.5);
        let mut b = StateFp::new(2);
        b.push_f64(0.5);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn bool_masks_distinguish_lengths_and_patterns() {
        let mut a = StateFp::new(0);
        a.push_bool_slice(&[true, false]);
        let mut b = StateFp::new(0);
        b.push_bool_slice(&[false, true]);
        let mut c = StateFp::new(0);
        c.push_bool_slice(&[true, false, false]);
        assert_ne!(a.finish(), b.finish());
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn bool_masks_cross_word_boundaries() {
        let mut long_a = vec![false; 130];
        long_a[0] = true;
        let mut long_b = vec![false; 130];
        long_b[129] = true;
        let mut a = StateFp::new(0);
        a.push_bool_slice(&long_a);
        let mut b = StateFp::new(0);
        b.push_bool_slice(&long_b);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn multiset_order_independent_and_duplicate_sensitive() {
        let mut fwd = MultisetFp::new();
        let mut rev = MultisetFp::new();
        for h in [3u64, 1, 4, 1, 5] {
            fwd.insert(h);
        }
        for h in [5u64, 1, 4, 1, 3] {
            rev.insert(h);
        }
        assert_eq!(fwd.finish(), rev.finish());

        let mut single = MultisetFp::new();
        for h in [3u64, 1, 4, 5] {
            single.insert(h);
        }
        assert_ne!(fwd.finish(), single.finish());
    }

    #[test]
    fn zero_vs_negative_zero_differ() {
        let mut a = StateFp::new(0);
        a.push_f64(0.0);
        let mut b = StateFp::new(0);
        b.push_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn empty_multiset_differs_from_zero_element() {
        let empty = MultisetFp::new();
        let mut zero = MultisetFp::new();
        zero.insert(0);
        assert_ne!(empty.finish(), zero.finish());
    }
}
