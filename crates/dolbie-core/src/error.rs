//! Error types for the core crate.

use std::error::Error as StdError;
use std::fmt;

/// Error produced when constructing or mutating an [`Allocation`].
///
/// [`Allocation`]: crate::allocation::Allocation
#[derive(Debug, Clone, PartialEq)]
pub enum AllocationError {
    /// The allocation vector was empty; at least one worker is required.
    Empty,
    /// A share was negative (constraint (3) of the paper).
    NegativeShare {
        /// Index of the offending worker.
        worker: usize,
        /// The offending share value.
        share: f64,
    },
    /// A share was not a finite number.
    NonFiniteShare {
        /// Index of the offending worker.
        worker: usize,
        /// The offending share value.
        share: f64,
    },
    /// The shares did not sum to one within tolerance (constraint (2)).
    SumMismatch {
        /// The actual sum of the shares.
        sum: f64,
    },
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::Empty => write!(f, "allocation requires at least one worker"),
            AllocationError::NegativeShare { worker, share } => {
                write!(f, "worker {worker} has negative share {share}")
            }
            AllocationError::NonFiniteShare { worker, share } => {
                write!(f, "worker {worker} has non-finite share {share}")
            }
            AllocationError::SumMismatch { sum } => {
                write!(f, "shares sum to {sum}, expected 1")
            }
        }
    }
}

impl StdError for AllocationError {}

/// Error produced by the monotone-inverse bisection solver.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The bracket `[lo, hi]` was invalid (`lo > hi` or non-finite).
    InvalidBracket {
        /// Lower end of the bracket.
        lo: f64,
        /// Upper end of the bracket.
        hi: f64,
    },
    /// The target level is below the function value at the lower bracket
    /// end, so no point of the bracket satisfies `f(x) <= level`.
    LevelBelowRange {
        /// The requested level.
        level: f64,
        /// The function value at the lower end of the bracket.
        f_lo: f64,
    },
    /// The function returned a non-finite value during the search.
    NonFiniteValue {
        /// The argument at which the function misbehaved.
        x: f64,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::InvalidBracket { lo, hi } => {
                write!(f, "invalid bisection bracket [{lo}, {hi}]")
            }
            SolverError::LevelBelowRange { level, f_lo } => {
                write!(f, "level {level} is below the function value {f_lo} at the bracket start")
            }
            SolverError::NonFiniteValue { x } => {
                write!(f, "cost function returned a non-finite value at x = {x}")
            }
        }
    }
}

impl StdError for SolverError {}

/// Error produced by the instantaneous-minimizer oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleError {
    /// No cost functions were supplied.
    NoWorkers,
    /// A cost function returned a non-finite value during the search.
    NonFiniteCost {
        /// Index of the offending worker.
        worker: usize,
    },
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::NoWorkers => write!(f, "oracle requires at least one cost function"),
            OracleError::NonFiniteCost { worker } => {
                write!(f, "cost function of worker {worker} returned a non-finite value")
            }
        }
    }
}

impl StdError for OracleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_error_display_is_informative() {
        let e = AllocationError::NegativeShare { worker: 3, share: -0.5 };
        assert!(e.to_string().contains("worker 3"));
        assert!(e.to_string().contains("-0.5"));
        let e = AllocationError::SumMismatch { sum: 0.9 };
        assert!(e.to_string().contains("0.9"));
        let e = AllocationError::Empty;
        assert!(!e.to_string().is_empty());
        let e = AllocationError::NonFiniteShare { worker: 1, share: f64::NAN };
        assert!(e.to_string().contains("worker 1"));
    }

    #[test]
    fn solver_error_display_is_informative() {
        let e = SolverError::InvalidBracket { lo: 2.0, hi: 1.0 };
        assert!(e.to_string().contains('2'));
        let e = SolverError::LevelBelowRange { level: 0.5, f_lo: 1.0 };
        assert!(e.to_string().contains("0.5"));
        let e = SolverError::NonFiniteValue { x: 0.25 };
        assert!(e.to_string().contains("0.25"));
    }

    #[test]
    fn oracle_error_display_is_informative() {
        assert!(!OracleError::NoWorkers.to_string().is_empty());
        assert!(OracleError::NonFiniteCost { worker: 7 }.to_string().contains('7'));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<AllocationError>();
        assert_err::<SolverError>();
        assert_err::<OracleError>();
    }
}
