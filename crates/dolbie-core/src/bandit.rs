//! Bandit-feedback DOLBIE (extension).
//!
//! Algorithms 1–2 assume each worker "observes its local cost function
//! `f_{i,t}(·)`" after acting (full local feedback), which is what makes
//! the eq. (4) inverse computable. In many systems only the realized cost
//! *value* `l_{i,t}` is observable — bandit feedback. This module extends
//! DOLBIE to that setting: each worker maintains a two-point secant
//! estimate of an affine local model `l ≈ â·x + b̂` from its own
//! (share, cost) history, and computes its maximum acceptable workload
//! from the *estimated* inverse `x̂' = min(1, (l_t − b̂)/â)`.
//!
//! The estimate is exact once two distinct shares have been played against
//! a locally affine cost (e.g. the §III-A latency model under slow
//! fluctuation), so on such instances the bandit variant converges to the
//! same trajectory quality as full-information DOLBIE — verified in tests.

use crate::allocation::Allocation;
use crate::balancer::LoadBalancer;
use crate::observation::Observation;
use crate::step_size::StepSize;
use crate::DolbieConfig;

/// Per-worker affine model state.
#[derive(Debug, Clone, Copy)]
struct LocalModel {
    /// The previous (share, cost) pair, if any.
    previous: Option<(f64, f64)>,
    /// Estimated slope `â >= 0`.
    slope: Option<f64>,
    /// Estimated intercept `b̂`.
    intercept: f64,
}

impl LocalModel {
    fn new() -> Self {
        Self { previous: None, slope: None, intercept: 0.0 }
    }

    /// Updates the secant estimate with the newly observed pair.
    fn observe(&mut self, share: f64, cost: f64) {
        if let Some((px, pc)) = self.previous {
            if (share - px).abs() > 1e-9 {
                let slope = ((cost - pc) / (share - px)).max(0.0);
                self.slope = Some(slope);
                self.intercept = cost - slope * share;
            }
        } else if share > 1e-9 {
            // Bootstrap: assume a through-origin model until a second
            // distinct share is available.
            self.slope = Some(cost / share);
            self.intercept = 0.0;
        }
        self.previous = Some((share, cost));
    }

    /// The estimated maximum acceptable share within `level`, floored at
    /// the current share (Lemma 1(ii) analogue under the estimate).
    fn max_share_within(&self, level: f64, current: f64) -> f64 {
        match self.slope {
            Some(slope) if slope > 1e-12 => ((level - self.intercept) / slope).clamp(current, 1.0),
            Some(_) => {
                // Flat estimate: any share fits if the intercept does.
                if self.intercept <= level {
                    1.0
                } else {
                    current
                }
            }
            None => current,
        }
    }
}

/// DOLBIE under bandit (value-only) feedback.
///
/// # Examples
///
/// ```
/// use dolbie_core::bandit::BanditDolbie;
/// use dolbie_core::LoadBalancer;
///
/// let balancer = BanditDolbie::new(4);
/// assert_eq!(balancer.allocation().num_workers(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct BanditDolbie {
    x: Allocation,
    alpha: StepSize,
    models: Vec<LocalModel>,
    config: DolbieConfig,
}

impl BanditDolbie {
    /// Creates the bandit variant over `n` workers with the default
    /// configuration (uniform start, half-cap `α_1`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::with_config(Allocation::uniform(n), DolbieConfig::new())
    }

    /// Creates the bandit variant from an arbitrary feasible start.
    pub fn with_config(initial: Allocation, config: DolbieConfig) -> Self {
        let alpha = StepSize::new(config.resolve_initial_alpha(&initial));
        let n = initial.num_workers();
        Self { x: initial, alpha, models: vec![LocalModel::new(); n], config }
    }

    /// The current step size.
    pub fn alpha(&self) -> f64 {
        self.alpha.value().max(self.config.alpha_floor)
    }
}

impl LoadBalancer for BanditDolbie {
    fn name(&self) -> &str {
        "DOLBIE-bandit"
    }

    fn allocation(&self) -> &Allocation {
        &self.x
    }

    fn observe(&mut self, observation: &Observation<'_>) {
        let n = observation.num_workers();
        assert_eq!(n, self.x.num_workers(), "observation covers a different worker set");
        // Bandit feedback: consume only the cost *values*.
        for i in 0..n {
            self.models[i].observe(self.x.share(i), observation.local_costs()[i]);
        }
        if n == 1 {
            return;
        }
        let s = observation.straggler();
        let l_t = observation.global_cost();
        let alpha = self.alpha();
        let straggler_share = self.x.share(s);

        let mut gains = vec![0.0; n];
        let mut total_gain = 0.0;
        for (i, gain) in gains.iter_mut().enumerate() {
            if i == s {
                continue;
            }
            let target = self.models[i].max_share_within(l_t, self.x.share(i));
            *gain = (alpha * (target - self.x.share(i))).max(0.0);
            total_gain += *gain;
        }
        if total_gain > straggler_share && total_gain > 0.0 {
            let scale = straggler_share / total_gain;
            for g in &mut gains {
                *g *= scale;
            }
        }
        let mut next: Vec<f64> =
            (0..n).map(|i| if i == s { 0.0 } else { self.x.share(i) + gains[i] }).collect();
        let others: f64 = next.iter().sum();
        next[s] = (1.0 - others).max(0.0);
        self.x = Allocation::from_update(next).expect("bandit update preserves feasibility");
        self.alpha.tighten(n, self.x.share(s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{DynCost, LatencyCost, LinearCost};
    use crate::{instantaneous_minimizer, Dolbie};

    fn step(b: &mut dyn LoadBalancer, costs: &[DynCost], t: usize) -> f64 {
        let played = b.allocation().clone();
        let obs = Observation::from_costs(t, &played, costs);
        let g = obs.global_cost();
        b.observe(&obs);
        g
    }

    #[test]
    fn converges_on_static_affine_costs_without_seeing_them() {
        let costs: Vec<DynCost> = vec![
            Box::new(LatencyCost::new(256.0, 64.0, 0.1)),
            Box::new(LatencyCost::new(256.0, 512.0, 0.05)),
            Box::new(LatencyCost::new(256.0, 128.0, 0.2)),
        ];
        let mut bandit = BanditDolbie::new(3);
        let mut last = f64::INFINITY;
        for t in 0..300 {
            last = step(&mut bandit, &costs, t);
        }
        let opt = instantaneous_minimizer(&costs).unwrap().level;
        assert!(last < opt * 1.2, "bandit DOLBIE should approach the optimum: {last} vs {opt}");
    }

    #[test]
    fn tracks_full_information_dolbie_closely_on_linear_costs() {
        let costs: Vec<DynCost> = vec![
            Box::new(LinearCost::new(5.0, 0.0)),
            Box::new(LinearCost::new(1.0, 0.0)),
            Box::new(LinearCost::new(2.0, 0.0)),
        ];
        let mut bandit = BanditDolbie::new(3);
        let mut full = Dolbie::new(3);
        let mut bandit_total = 0.0;
        let mut full_total = 0.0;
        for t in 0..150 {
            bandit_total += step(&mut bandit, &costs, t);
            full_total += step(&mut full, &costs, t);
        }
        assert!(
            bandit_total < full_total * 1.25,
            "bandit total {bandit_total} should be within 25% of full-info {full_total}"
        );
    }

    #[test]
    fn feasibility_holds_under_drifting_costs() {
        let mut bandit = BanditDolbie::new(5);
        for t in 0..200 {
            let costs: Vec<DynCost> = (0..5)
                .map(|i| {
                    let phase = (t as f64 / 17.0 + i as f64).sin().abs() + 0.2;
                    Box::new(LinearCost::new(phase * 4.0, 0.05 * i as f64)) as DynCost
                })
                .collect();
            step(&mut bandit, &costs, t);
            let sum: f64 = bandit.allocation().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "round {t}");
            assert!(bandit.allocation().iter().all(|&v| v >= 0.0), "round {t}");
        }
    }

    #[test]
    fn first_round_without_model_is_a_noop_for_unbootstrapable_workers() {
        // Worker 1 starts at share 0 (singleton allocation): no bootstrap
        // possible, so it must not move until it learns something.
        let costs: Vec<DynCost> =
            vec![Box::new(LinearCost::new(2.0, 0.0)), Box::new(LinearCost::new(1.0, 0.0))];
        let mut bandit =
            BanditDolbie::with_config(Allocation::singleton(2, 0), DolbieConfig::new());
        step(&mut bandit, &costs, 0);
        // Worker 0 (straggler, share 1) can only shed what worker 1 claims;
        // worker 1 has no model yet, so nothing moves.
        assert_eq!(bandit.allocation().share(1), 0.0);
    }

    #[test]
    fn single_worker_is_stable() {
        let costs: Vec<DynCost> = vec![Box::new(LinearCost::new(1.0, 0.0))];
        let mut bandit = BanditDolbie::new(1);
        for t in 0..5 {
            step(&mut bandit, &costs, t);
            assert_eq!(bandit.allocation().share(0), 1.0);
        }
    }

    #[test]
    fn name_distinguishes_the_variant() {
        assert_eq!(BanditDolbie::new(2).name(), "DOLBIE-bandit");
    }

    #[test]
    fn alpha_floor_is_respected() {
        let cfg = DolbieConfig::new().with_initial_alpha(0.1).with_alpha_floor(0.05);
        let bandit = BanditDolbie::with_config(Allocation::uniform(3), cfg);
        assert!(bandit.alpha() >= 0.05);
    }
}
