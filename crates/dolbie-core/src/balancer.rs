//! The online load-balancer interface shared by DOLBIE and every baseline.

use crate::allocation::Allocation;
use crate::observation::Observation;

/// An online load balancer: plays an allocation, observes the revealed
/// costs, and updates its next allocation.
///
/// This is the protocol of Algorithms 1–2 abstracted over the update rule,
/// so DOLBIE, EQU, OGD, ABS, LB-BSP and the OPT oracle can all be driven by
/// the same experiment harness.
///
/// Implementations must keep [`allocation`](LoadBalancer::allocation)
/// feasible (on the simplex) at all times — the [`Allocation`] type enforces
/// it.
pub trait LoadBalancer {
    /// A short human-readable identifier used in experiment output
    /// (e.g. `"DOLBIE"`, `"OGD"`).
    fn name(&self) -> &str;

    /// The allocation this balancer will play in the current round.
    fn allocation(&self) -> &Allocation;

    /// Consumes the end-of-round observation and updates the allocation for
    /// the next round.
    fn observe(&mut self, observation: &Observation<'_>);
}

impl<T: LoadBalancer + ?Sized> LoadBalancer for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn allocation(&self) -> &Allocation {
        (**self).allocation()
    }

    fn observe(&mut self, observation: &Observation<'_>) {
        (**self).observe(observation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A do-nothing balancer used to verify the object-safety of the trait
    /// and the blanket `Box` impl.
    #[derive(Debug)]
    struct Frozen(Allocation);

    impl LoadBalancer for Frozen {
        fn name(&self) -> &str {
            "frozen"
        }

        fn allocation(&self) -> &Allocation {
            &self.0
        }

        fn observe(&mut self, _observation: &Observation<'_>) {}
    }

    #[test]
    fn trait_is_object_safe_and_boxable() {
        let mut b: Box<dyn LoadBalancer> = Box::new(Frozen(Allocation::uniform(3)));
        assert_eq!(b.name(), "frozen");
        assert_eq!(b.allocation().num_workers(), 3);
        let x = Allocation::uniform(3);
        let fns: Vec<crate::cost::DynCost> = (0..3)
            .map(|_| Box::new(crate::cost::LinearCost::new(1.0, 0.0)) as crate::cost::DynCost)
            .collect();
        let obs = Observation::from_costs(0, &x, &fns);
        b.observe(&obs);
        assert_eq!(b.allocation().num_workers(), 3);
    }
}
