//! Bisection search on monotone functions.
//!
//! Section IV-A of the paper computes the *maximum acceptable workload*
//! `x'_{i,t} = max{x : f_{i,t}(x) <= l_t}` and notes that, because the cost
//! functions are increasing, it "can be found efficiently with function
//! inverse or bisection search". This module provides that bisection:
//! a predicate-boundary search that returns the supremum of the set
//! `{x in [lo, hi] : f(x) <= level}` for a non-decreasing `f`.
//!
//! Unlike a root finder, the predicate form handles *non-strictly*
//! increasing costs correctly: on a plateau whose value equals `level`, the
//! supremum is the right edge of the plateau, which is exactly what the
//! paper's definition requires.

use crate::error::SolverError;

/// Convergence controls for [`invert_monotone`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BisectionConfig {
    /// Absolute tolerance on the argument; the search stops when the bracket
    /// is narrower than this.
    pub x_tolerance: f64,
    /// Hard cap on bisection iterations (a 64-iteration bisection already
    /// resolves any `f64` bracket to machine precision).
    pub max_iterations: u32,
}

impl BisectionConfig {
    /// A tight default: `1e-12` argument tolerance, 128 iterations.
    pub fn new() -> Self {
        Self { x_tolerance: 1e-12, max_iterations: 128 }
    }
}

impl Default for BisectionConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Returns the largest `x` in `[lo, hi]` with `f(x) <= level`, assuming `f`
/// is non-decreasing on the bracket.
///
/// The returned point is guaranteed (up to the argument tolerance) to be a
/// *feasible* point, i.e. one that satisfies the predicate, so callers can
/// rely on `f(result) <= level` modulo one tolerance-width of slack.
///
/// # Errors
///
/// - [`SolverError::InvalidBracket`] if `lo > hi` or either end is
///   non-finite.
/// - [`SolverError::LevelBelowRange`] if even `f(lo) > level`.
/// - [`SolverError::NonFiniteValue`] if `f` returns NaN/inf inside the
///   bracket.
///
/// # Examples
///
/// ```
/// use dolbie_core::solver::{invert_monotone, BisectionConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // max{x : 2x <= 1} = 0.5
/// let x = invert_monotone(|x| 2.0 * x, 1.0, 0.0, 1.0, BisectionConfig::new())?;
/// assert!((x - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn invert_monotone<F>(
    f: F,
    level: f64,
    lo: f64,
    hi: f64,
    config: BisectionConfig,
) -> Result<f64, SolverError>
where
    F: Fn(f64) -> f64,
{
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(SolverError::InvalidBracket { lo, hi });
    }
    let f_lo = f(lo);
    if !f_lo.is_finite() {
        return Err(SolverError::NonFiniteValue { x: lo });
    }
    if f_lo > level {
        return Err(SolverError::LevelBelowRange { level, f_lo });
    }
    let f_hi = f(hi);
    if !f_hi.is_finite() {
        return Err(SolverError::NonFiniteValue { x: hi });
    }
    if f_hi <= level {
        return Ok(hi);
    }
    // Invariant: predicate holds at `good`, fails at `bad`.
    let mut good = lo;
    let mut bad = hi;
    for _ in 0..config.max_iterations {
        if bad - good <= config.x_tolerance {
            break;
        }
        let mid = good + (bad - good) / 2.0;
        let fm = f(mid);
        if !fm.is_finite() {
            return Err(SolverError::NonFiniteValue { x: mid });
        }
        if fm <= level {
            good = mid;
        } else {
            bad = mid;
        }
    }
    Ok(good)
}

/// Returns the smallest `level` in `[lo, hi]` at which `feasible(level)`
/// holds, assuming feasibility is monotone in the level (false below some
/// threshold, true above). Used by the instantaneous-minimizer oracle to
/// bisect on the global-cost value.
///
/// The returned level always satisfies the predicate (it is taken from the
/// feasible side of the final bracket), so constructions derived from it
/// are feasible.
///
/// # Errors
///
/// - [`SolverError::InvalidBracket`] if `lo > hi`, either end is non-finite,
///   or `feasible(hi)` is false (no feasible level in the bracket).
pub fn min_feasible_level<P>(
    feasible: P,
    lo: f64,
    hi: f64,
    config: BisectionConfig,
) -> Result<f64, SolverError>
where
    P: Fn(f64) -> bool,
{
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(SolverError::InvalidBracket { lo, hi });
    }
    if feasible(lo) {
        return Ok(lo);
    }
    if !feasible(hi) {
        return Err(SolverError::InvalidBracket { lo, hi });
    }
    let mut bad = lo;
    let mut good = hi;
    for _ in 0..config.max_iterations {
        if good - bad <= config.x_tolerance {
            break;
        }
        let mid = bad + (good - bad) / 2.0;
        if feasible(mid) {
            good = mid;
        } else {
            bad = mid;
        }
    }
    Ok(good)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BisectionConfig {
        BisectionConfig::new()
    }

    #[test]
    fn linear_inverse_matches_closed_form() {
        for level in [0.0, 0.3, 0.99, 2.0] {
            let x = invert_monotone(|x| 2.0 * x, level, 0.0, 1.0, cfg()).unwrap();
            assert!((x - (level / 2.0).min(1.0)).abs() < 1e-9, "level={level} x={x}");
        }
    }

    #[test]
    fn plateau_returns_right_edge() {
        // f is 1 on [0.2, 0.6] and strictly increasing elsewhere; the
        // supremum of {x : f(x) <= 1} is 0.6.
        let f = |x: f64| {
            if x < 0.2 {
                x / 0.2
            } else if x <= 0.6 {
                1.0
            } else {
                1.0 + (x - 0.6)
            }
        };
        let x = invert_monotone(f, 1.0, 0.0, 1.0, cfg()).unwrap();
        assert!((x - 0.6).abs() < 1e-9, "x={x}");
    }

    #[test]
    fn saturating_at_hi_returns_hi() {
        let x = invert_monotone(|x| x, 5.0, 0.0, 1.0, cfg()).unwrap();
        assert_eq!(x, 1.0);
    }

    #[test]
    fn level_below_range_is_an_error() {
        let err = invert_monotone(|x| x + 1.0, 0.5, 0.0, 1.0, cfg()).unwrap_err();
        assert!(matches!(err, SolverError::LevelBelowRange { .. }));
    }

    #[test]
    fn invalid_bracket_is_an_error() {
        assert!(matches!(
            invert_monotone(|x| x, 0.5, 1.0, 0.0, cfg()).unwrap_err(),
            SolverError::InvalidBracket { .. }
        ));
        assert!(matches!(
            invert_monotone(|x| x, 0.5, f64::NAN, 1.0, cfg()).unwrap_err(),
            SolverError::InvalidBracket { .. }
        ));
    }

    #[test]
    fn non_finite_function_is_an_error() {
        let err = invert_monotone(|x| if x > 0.5 { f64::NAN } else { x }, 0.9, 0.0, 1.0, cfg())
            .unwrap_err();
        assert!(matches!(err, SolverError::NonFiniteValue { .. }));
    }

    #[test]
    fn result_is_feasible_for_exponential() {
        let f = |x: f64| (3.0 * x).exp() - 1.0;
        let level = 2.0;
        let x = invert_monotone(f, level, 0.0, 1.0, cfg()).unwrap();
        assert!(f(x) <= level + 1e-9);
        // Closed form: x = ln(3)/3.
        assert!((x - (3.0f64.ln() / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn degenerate_bracket_is_ok_when_feasible() {
        let x = invert_monotone(|x| x, 0.5, 0.25, 0.25, cfg()).unwrap();
        assert_eq!(x, 0.25);
    }

    #[test]
    fn min_feasible_level_finds_threshold() {
        // Feasible iff level >= 0.7.
        let level = min_feasible_level(|l| l >= 0.7, 0.0, 1.0, cfg()).unwrap();
        assert!((level - 0.7).abs() < 1e-9);
        assert!(level >= 0.7, "result must be on the feasible side");
    }

    #[test]
    fn min_feasible_level_handles_endpoints() {
        assert_eq!(min_feasible_level(|_| true, 0.2, 1.0, cfg()).unwrap(), 0.2);
        assert!(matches!(
            min_feasible_level(|_| false, 0.0, 1.0, cfg()).unwrap_err(),
            SolverError::InvalidBracket { .. }
        ));
    }

    #[test]
    fn respects_iteration_cap() {
        let coarse = BisectionConfig { x_tolerance: 0.0, max_iterations: 4 };
        let x = invert_monotone(|x| x, 0.5, 0.0, 1.0, coarse).unwrap();
        // 4 iterations of halving a unit bracket leaves at most 1/16 error.
        assert!((x - 0.5).abs() <= 1.0 / 16.0 + 1e-12);
        assert!(x <= 0.5, "must stay on the feasible side");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The returned point is always feasible and within one tolerance of
        /// the true boundary for affine costs.
        #[test]
        fn affine_inverse_is_tight(slope in 0.01f64..100.0, intercept in 0.0f64..10.0,
                                   level_frac in 0.0f64..2.0) {
            let f = move |x: f64| slope * x + intercept;
            let level = intercept + level_frac * slope; // f(level_frac)
            let x = invert_monotone(f, level, 0.0, 1.0, BisectionConfig::new()).unwrap();
            let expected = level_frac.min(1.0);
            prop_assert!((x - expected).abs() < 1e-8);
            prop_assert!(f(x) <= level + slope * 1e-8);
        }

        /// Monotone invariant: raising the level never lowers the inverse.
        #[test]
        fn inverse_is_monotone_in_level(l1 in 0.0f64..5.0, dl in 0.0f64..5.0) {
            let f = |x: f64| x * x * 4.0; // increasing on [0,1]
            let a = invert_monotone(f, l1, 0.0, 1.0, BisectionConfig::new()).unwrap();
            let b = invert_monotone(f, l1 + dl, 0.0, 1.0, BisectionConfig::new()).unwrap();
            prop_assert!(b + 1e-12 >= a);
        }
    }
}
