//! The two-level (sharded) control plane: shard-local DOLBIE steps under
//! a root coordinator that works over *shard aggregates*.
//!
//! One master fanning in N workers is the scalability wall of every
//! runtime in this repo — at the million-worker north star the
//! coordinator's per-round work and connection count both scale with N.
//! This module decomposes the round so that a **root** coordinator only
//! ever touches M shard-level quantities, while each of the M
//! **shard-masters** runs the per-worker work (cost observation, eq. (5)
//! gains, share application) over its contiguous slice of N/M workers:
//!
//! ```text
//!                    root (O(M) work / round)
//!          ┌───────────┼───────────┐
//!      shard 0      shard 1  …  shard M−1     (per-round straggler +
//!      workers      workers     workers        eq. (5) over N/M each)
//!      [0, n₀)      [n₀, n₁)    [n_{M−1}, N)
//! ```
//!
//! Per round the dataflow is:
//!
//! 1. each shard reports its **straggler candidate** `(max cost, lowest
//!    global index, share)` — combined in shard order with a strict `>`
//!    these reproduce the flat ascending argmax *exactly* (comparison is
//!    exact; no rounding is involved);
//! 2. the root broadcasts `(s_t, l_t, α_t)`; each shard computes its
//!    workers' eq. (5) gains (pure per worker, hence bitwise);
//! 3. the eq. (6) remainder `Σ gains` is computed by **chaining a
//!    [`SumCursor`] through the shards in index order** — the root hands
//!    the O(log N) cursor state to shard 0, shard 0 folds its contiguous
//!    gains slice and hands it back, and so on — reproducing the
//!    fixed-shape compensated sum of the flat engine bit for bit;
//! 4. the root runs the engine's order-sensitive tail (feasibility guard,
//!    Σx = 1 pin, eq. (7) tightening) on those scalars via
//!    [`RootEngine`], and broadcasts the commit.
//!
//! Because every global floating-point reduction goes through either the
//! exact argmax or the chained cursor, the sharded trajectory is
//! **bitwise identical** to the flat sequential [`Dolbie`](crate::Dolbie)
//! at every N and M — there is no 1e-12 concession anywhere in the shard
//! tier. Membership epochs are the one O(N)-at-the-root event: shards
//! ship their share slices up, the root replays the flat
//! [`renormalize_onto_members`] (so departing mass — including a shard
//! losing *all* its workers — drains into the survivors exactly as the
//! flat engine would), and ships the slices back. Epochs are rare;
//! rounds are the steady state.
//!
//! [`ShardedDolbie`] executes this dataflow in-process as the reference
//! implementation and parity oracle; `dolbie-simnet` replays it as a
//! message-passing simulation and `dolbie-net` as real TCP processes.

use crate::allocation::Allocation;
use crate::cost::DynCost;
use crate::dolbie::{DolbieConfig, DolbieStats};
use crate::engine::TOTAL_REFRESH_INTERVAL;
use crate::membership::{membership_alpha_cap, renormalize_onto_members};
use crate::numeric::{pairwise_neumaier_sum, NeumaierSum, SumCursor};
use crate::observation::max_acceptable_share;
use crate::step_size::StepSize;

/// A contiguous partition of workers `0..n` into `m` shards.
///
/// Shard `k` owns the half-open range [`range(k)`](Self::range); ranges
/// are ascending and cover `0..n` exactly, so chaining any per-worker
/// array through the shards in index order visits it in flat order — the
/// property the cursor chain and the exact argmax both rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLayout {
    /// `m + 1` ascending range bounds; `starts[0] = 0`, `starts[m] = n`.
    starts: Vec<usize>,
}

impl ShardLayout {
    /// Splits `n` workers into `m` near-even contiguous shards (the first
    /// `n % m` shards get one extra worker).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `m > n`.
    pub fn even(n: usize, m: usize) -> Self {
        assert!(m >= 1, "at least one shard");
        assert!(m <= n, "more shards ({m}) than workers ({n})");
        let base = n / m;
        let extra = n % m;
        let mut starts = Vec::with_capacity(m + 1);
        let mut at = 0;
        starts.push(0);
        for k in 0..m {
            at += base + usize::from(k < extra);
            starts.push(at);
        }
        Self { starts }
    }

    /// Number of shards `M`.
    pub fn num_shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total worker count `N`.
    pub fn num_workers(&self) -> usize {
        *self.starts.last().expect("layout has at least one bound")
    }

    /// The half-open worker range owned by shard `k`.
    pub fn range(&self, k: usize) -> std::ops::Range<usize> {
        self.starts[k]..self.starts[k + 1]
    }

    /// The shard owning worker `i`.
    pub fn shard_of(&self, i: usize) -> usize {
        debug_assert!(i < self.num_workers());
        // partition_point returns the count of bounds <= i among starts[1..].
        self.starts[1..].partition_point(|&b| b <= i)
    }
}

/// One shard's straggler candidate: its worst active worker this round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardCandidate {
    /// The candidate's local cost (the shard-local max).
    pub cost: f64,
    /// The candidate's *global* worker index.
    pub worker: usize,
    /// The candidate's current share — shipped up so the root learns
    /// `x_{s,t}` in the same message that elects the straggler.
    pub share: f64,
}

/// Combines per-shard candidates in shard order with a strict `>`.
///
/// Ranges are ascending and each candidate is its shard's lowest-index
/// first-maximum, so this reproduces the flat sequential ascending argmax
/// (lowest global index on ties) exactly. `None` candidates (shards with
/// no active member) are skipped; the result is `None` only if every
/// shard is empty.
pub fn combine_candidates<I>(candidates: I) -> Option<ShardCandidate>
where
    I: IntoIterator<Item = Option<ShardCandidate>>,
{
    let mut best: Option<ShardCandidate> = None;
    for candidate in candidates.into_iter().flatten() {
        match best {
            None => best = Some(candidate),
            Some(b) if candidate.cost > b.cost => best = Some(candidate),
            Some(_) => {}
        }
    }
    best
}

/// The shard-local straggler scan: lowest-index first-maximum over the
/// active members of `range`, with each worker's cost evaluated at its
/// current share (exactly the flat observation's per-worker evaluation).
pub fn shard_candidate(
    range: std::ops::Range<usize>,
    shares: &[f64],
    active: &[bool],
    costs: &[DynCost],
) -> Option<ShardCandidate> {
    let mut best: Option<ShardCandidate> = None;
    for i in range {
        if !active[i] {
            continue;
        }
        let cost = costs[i].eval(shares[i]);
        match best {
            None => best = Some(ShardCandidate { cost, worker: i, share: shares[i] }),
            Some(b) if cost > b.cost => {
                best = Some(ShardCandidate { cost, worker: i, share: shares[i] })
            }
            Some(_) => {}
        }
    }
    best
}

/// The root coordinator's per-round state and arithmetic — the
/// order-sensitive tail of `SoaEngine::finish_round` lifted onto shard
/// aggregates, operation for operation, so the sharded system lands on
/// the flat engine's bits.
///
/// The root holds O(1) state (step size, running Σx total, counters); it
/// never sees a per-worker array. Callers drive one round as:
///
/// 1. [`begin_round`](Self::begin_round) → `α_t` to broadcast;
/// 2. chain the gains cursor, then [`guard_scale`](Self::guard_scale);
///    on `Some(scale)` have the shards rescale and re-chain;
/// 3. [`pin`](Self::pin) → the straggler's new share to commit;
/// 4. after shards apply the commit: if
///    [`needs_total_refresh`](Self::needs_total_refresh), chain a cursor
///    over the *shares* and call [`refresh_total`](Self::refresh_total);
/// 5. [`tighten`](Self::tighten).
///
/// That is exactly the flat engine's statement order; skipping or
/// reordering a step forfeits bitwise parity.
#[derive(Debug, Clone)]
pub struct RootEngine {
    alpha: StepSize,
    alpha_floor: f64,
    alphas_used: Vec<f64>,
    stats: DolbieStats,
    active_count: usize,
    num_workers: usize,
    /// Running compensated total `T ≈ Σ_i x_i` behind the O(1) pin —
    /// the same bookkeeping the flat engine keeps.
    total: NeumaierSum,
}

impl RootEngine {
    /// A root over `initial` shares with `config` — mirrors
    /// `SoaEngine::new` (same resolved `α_1`, same seeded total).
    pub fn new(initial: &Allocation, config: DolbieConfig) -> Self {
        Self {
            alpha: StepSize::new(config.resolve_initial_alpha(initial)),
            alpha_floor: config.alpha_floor,
            alphas_used: Vec::new(),
            stats: DolbieStats::default(),
            active_count: initial.num_workers(),
            num_workers: initial.num_workers(),
            total: NeumaierSum::from_value(pairwise_neumaier_sum(initial.as_slice())),
        }
    }

    /// The current step size `α_t` (floor applied).
    pub fn alpha(&self) -> f64 {
        self.alpha.value().max(self.alpha_floor)
    }

    /// Bumps the round counter and records the step size the round is
    /// played with; returns that `α_t`.
    pub fn begin_round(&mut self) -> f64 {
        self.stats.rounds += 1;
        let alpha = self.alpha();
        self.alphas_used.push(alpha);
        alpha
    }

    /// Unwinds [`begin_round`](Self::begin_round) for a round attempt
    /// abandoned before [`pin`](Self::pin) — a crash mid-round restarts
    /// the round under a new membership epoch, and the aborted attempt
    /// must leave no trace in the round counter (which drives the
    /// Σx-refresh schedule), the recorded α schedule, or the guard
    /// statistics. Pass `guard_fired = true` iff the aborted attempt had
    /// already taken `Some(scale)` from [`guard_scale`](Self::guard_scale).
    ///
    /// `begin_round → abort_round` is a bitwise no-op: the replayed round
    /// observes the same α and the same refresh schedule as if the
    /// attempt had never started.
    pub fn abort_round(&mut self, guard_fired: bool) {
        debug_assert!(self.stats.rounds > 0, "no round in progress to abort");
        self.stats.rounds -= 1;
        self.alphas_used.pop();
        if guard_fired {
            debug_assert!(self.stats.guard_activations > 0);
            self.stats.guard_activations -= 1;
        }
    }

    /// The floating-point feasibility guard on the chained remainder:
    /// returns `Some(scale)` iff the shards must rescale their gains (and
    /// the caller must re-chain the cursor before [`pin`](Self::pin)).
    pub fn guard_scale(&mut self, straggler_share: f64, total_gain: f64) -> Option<f64> {
        if total_gain > straggler_share && total_gain > 0.0 {
            self.stats.guard_activations += 1;
            Some(straggler_share / total_gain)
        } else {
            None
        }
    }

    /// The O(1) Σx = 1 pin: `x_s ← 1 − ((T − x_s) + Σ gains)`, all
    /// compensated, updating the running total exactly as the flat engine
    /// does. Returns the straggler's pinned new share.
    pub fn pin(&mut self, straggler_share: f64, total_gain: f64) -> f64 {
        let mut running = self.total;
        running.add(-straggler_share);
        running.add(total_gain);
        let new_straggler_share = (1.0 - running.value()).max(0.0);
        debug_assert!(new_straggler_share.is_finite(), "pin produced a non-finite share");
        running.add(new_straggler_share);
        self.total = running;
        new_straggler_share
    }

    /// Whether this round is a Σx-refresh round (every
    /// [`TOTAL_REFRESH_INTERVAL`] rounds, same schedule as the flat
    /// engine) — if so, chain a cursor over the share slices and call
    /// [`refresh_total`](Self::refresh_total).
    pub fn needs_total_refresh(&self) -> bool {
        self.stats.rounds.is_multiple_of(TOTAL_REFRESH_INTERVAL)
    }

    /// Re-seeds the running total from the chained fixed-shape share sum.
    pub fn refresh_total(&mut self, share_sum: f64) {
        self.total = NeumaierSum::from_value(share_sum);
    }

    /// Eq. (7): tightens `α` with the straggler's pinned share against
    /// the active member count.
    pub fn tighten(&mut self, new_straggler_share: f64) {
        self.alpha.tighten(self.active_count, new_straggler_share);
    }

    /// Crosses a membership epoch boundary over the gathered full share
    /// vector — the one O(N) root event, mirroring
    /// `SoaEngine::apply_membership` exactly: proportional
    /// re-normalization onto the survivors (an emptied shard's mass
    /// drains into its siblings), re-seeded total, `α` shrunk to the
    /// re-derived cap.
    ///
    /// # Panics
    ///
    /// As `renormalize_onto_members`: length mismatch or no survivor.
    pub fn apply_membership(&mut self, shares: &mut [f64], members: &[bool]) {
        assert_eq!(shares.len(), self.num_workers, "one share per worker");
        renormalize_onto_members(shares, members);
        self.active_count = members.iter().filter(|&&m| m).count();
        self.total = NeumaierSum::from_value(pairwise_neumaier_sum(shares));
        self.alpha.shrink_to(membership_alpha_cap(shares, members));
    }

    /// Rounds observed and guard activations.
    pub fn stats(&self) -> DolbieStats {
        self.stats
    }

    /// The step sizes actually applied each round.
    pub fn alphas_used(&self) -> &[f64] {
        &self.alphas_used
    }

    /// Active member count (the eq. (7) `M`).
    pub fn active_count(&self) -> usize {
        self.active_count
    }

    /// Total fleet size `N`.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }
}

/// What a sharded round commits — the scalars the root broadcasts to
/// close the round (the sharded analogue of
/// [`ReportedRound`](crate::ReportedRound)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedRound {
    /// The elected global straggler.
    pub straggler: usize,
    /// The round's global cost `l_t` (the straggler's local cost).
    pub global_cost: f64,
    /// The straggler's pinned new share.
    pub straggler_share: f64,
    /// `Some(scale)` iff the feasibility guard rescaled the gains.
    pub rescale: Option<f64>,
}

/// The in-process reference implementation of the two-level control
/// plane — the parity oracle `dolbie-simnet` and `dolbie-net` verify
/// against, and itself verified bitwise against the flat sequential
/// [`Dolbie`](crate::Dolbie) below.
///
/// Per-worker state lives in per-shard contiguous slices (exactly what a
/// shard-master process owns); the root side goes through [`RootEngine`]
/// and only ever sees shard aggregates and chained cursor states.
///
/// # Examples
///
/// ```
/// use dolbie_core::cost::{DynCost, LinearCost};
/// use dolbie_core::shard::ShardedDolbie;
/// use dolbie_core::{Dolbie, LoadBalancer, Observation};
///
/// let costs: Vec<DynCost> = (0..16)
///     .map(|i| Box::new(LinearCost::new(1.0 + (i % 5) as f64, 0.0)) as DynCost)
///     .collect();
/// let mut flat = Dolbie::new(16);
/// let mut sharded = ShardedDolbie::new(16, 4);
/// for round in 0..50 {
///     let played = flat.allocation().clone();
///     let obs = Observation::from_costs(round, &played, &costs);
///     flat.observe(&obs);
///     sharded.observe_costs(&costs);
/// }
/// for i in 0..16 {
///     assert_eq!(flat.allocation().share(i).to_bits(), sharded.shares()[i].to_bits());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ShardedDolbie {
    layout: ShardLayout,
    root: RootEngine,
    x: Vec<f64>,
    gains: Vec<f64>,
    active: Vec<bool>,
}

impl ShardedDolbie {
    /// `n` workers in `m` shards, uniform initial split, default config.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `m == 0`, or `m > n`.
    pub fn new(n: usize, m: usize) -> Self {
        Self::with_config(Allocation::uniform(n), m, DolbieConfig::new())
    }

    /// From an arbitrary feasible initial partition and configuration.
    pub fn with_config(initial: Allocation, m: usize, config: DolbieConfig) -> Self {
        let n = initial.num_workers();
        Self {
            layout: ShardLayout::even(n, m),
            root: RootEngine::new(&initial, config),
            x: initial.into_inner(),
            gains: vec![0.0; n],
            active: vec![true; n],
        }
    }

    /// The shard layout in force.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// The current full share vector (concatenated shard slices).
    pub fn shares(&self) -> &[f64] {
        &self.x
    }

    /// The current step size `α_t`.
    pub fn alpha(&self) -> f64 {
        self.root.alpha()
    }

    /// The step sizes actually applied each round.
    pub fn alphas_used(&self) -> &[f64] {
        self.root.alphas_used()
    }

    /// Update counters (shared semantics with [`Dolbie::stats`](crate::Dolbie::stats)).
    pub fn stats(&self) -> DolbieStats {
        self.root.stats()
    }

    /// One sharded round against per-worker cost functions, executing the
    /// module-level dataflow. Bitwise identical to
    /// `Dolbie::observe(&Observation::from_costs_masked(..))` on the same
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `costs.len() != N` or no active member remains.
    pub fn observe_costs(&mut self, costs: &[DynCost]) -> ShardedRound {
        let n = self.x.len();
        assert_eq!(costs.len(), n, "one cost function per worker");
        let m = self.layout.num_shards();

        // (1) shard-local straggler candidates, combined in shard order.
        let elected = combine_candidates(
            (0..m).map(|k| shard_candidate(self.layout.range(k), &self.x, &self.active, costs)),
        )
        .expect("at least one active member");
        let (s, global_cost) = (elected.worker, elected.cost);

        let alpha = self.root.begin_round();
        if n == 1 {
            return ShardedRound {
                straggler: s,
                global_cost,
                straggler_share: self.x[0],
                rescale: None,
            };
        }

        // (2) shard-local eq. (5) gains — pure per worker.
        for k in 0..m {
            for i in self.layout.range(k) {
                self.gains[i] = if i == s || !self.active[i] {
                    0.0
                } else {
                    let xi = self.x[i];
                    let target = max_acceptable_share(&*costs[i], xi, global_cost);
                    (alpha * (target - xi)).max(0.0)
                };
            }
        }

        // (3) the eq. (6) remainder via the shard-chained cursor.
        let mut total_gain = self.chain_cursor(|this, k| &this.gains[this.layout.range(k)]);

        // (4) the root's order-sensitive tail.
        let straggler_share = elected.share;
        let rescale = self.root.guard_scale(straggler_share, total_gain);
        if let Some(scale) = rescale {
            for k in 0..m {
                for i in self.layout.range(k) {
                    self.gains[i] *= scale;
                }
            }
            total_gain = self.chain_cursor(|this, k| &this.gains[this.layout.range(k)]);
        }
        let new_straggler_share = self.root.pin(straggler_share, total_gain);

        // Commit: shards apply gains; the straggler's shard pins.
        for k in 0..m {
            for i in self.layout.range(k) {
                self.x[i] += self.gains[i];
            }
        }
        self.x[s] = new_straggler_share;

        if self.root.needs_total_refresh() {
            let sum = self.chain_cursor(|this, k| &this.x[this.layout.range(k)]);
            self.root.refresh_total(sum);
        }
        self.root.tighten(new_straggler_share);

        ShardedRound { straggler: s, global_cost, straggler_share: new_straggler_share, rescale }
    }

    /// Chains a [`SumCursor`] through the shards in index order,
    /// round-tripping the serialized state at each hop exactly as the
    /// wire protocol does.
    fn chain_cursor<'a, F>(&'a self, slice_of: F) -> f64
    where
        F: Fn(&'a Self, usize) -> &'a [f64],
    {
        let mut cursor = SumCursor::new();
        for k in 0..self.layout.num_shards() {
            let mut local = SumCursor::from_state(&cursor.state());
            local.extend(slice_of(self, k));
            cursor = SumCursor::from_state(&local.state());
        }
        cursor.value()
    }

    /// Crosses a membership epoch boundary: gathers the shard slices,
    /// replays the flat re-normalization at the root (an emptied shard's
    /// mass drains proportionally into its siblings), and scatters the
    /// slices back. Mirrors [`Dolbie::apply_membership`](crate::Dolbie::apply_membership)
    /// bitwise.
    ///
    /// # Panics
    ///
    /// Panics if `members.len() != N` or no worker remains a member.
    pub fn apply_membership(&mut self, members: &[bool]) {
        assert_eq!(members.len(), self.x.len(), "one membership flag per worker");
        self.root.apply_membership(&mut self.x, members);
        self.active.clear();
        self.active.extend_from_slice(members);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{DynCost, LatencyCost, LinearCost};
    use crate::observation::Observation;
    use crate::{Dolbie, LoadBalancer};

    fn splitmix(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn latency_fleet(n: usize, seed: u64) -> Vec<DynCost> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                let speed = 64.0 + 448.0 * splitmix(&mut state);
                Box::new(LatencyCost::new(256.0, speed, 0.05)) as DynCost
            })
            .collect()
    }

    /// Only 3 distinct slopes, so the straggler argmax faces constant
    /// ties and must keep resolving them to the lowest global index
    /// across shard boundaries.
    fn tie_heavy_fleet(n: usize) -> Vec<DynCost> {
        (0..n)
            .map(|i| {
                let slope = [3.0, 3.0, 1.0][i % 3];
                Box::new(LinearCost::new(slope, 0.1)) as DynCost
            })
            .collect()
    }

    #[test]
    fn layout_partitions_exactly_and_locates_workers() {
        for (n, m) in [(16, 1), (16, 4), (17, 4), (97, 7), (5, 5), (4096, 16)] {
            let layout = ShardLayout::even(n, m);
            assert_eq!(layout.num_shards(), m);
            assert_eq!(layout.num_workers(), n);
            let mut seen = 0;
            for k in 0..m {
                let r = layout.range(k);
                assert_eq!(r.start, seen, "ranges must be ascending and contiguous");
                seen = r.end;
                for i in r {
                    assert_eq!(layout.shard_of(i), k, "worker {i} (n={n}, m={m})");
                }
            }
            assert_eq!(seen, n);
            // Near-even: sizes differ by at most one.
            let sizes: Vec<usize> = (0..m).map(|k| layout.range(k).len()).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "sizes {sizes:?}");
        }
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn layout_rejects_more_shards_than_workers() {
        let _ = ShardLayout::even(3, 4);
    }

    #[test]
    fn candidate_combine_resolves_ties_to_lowest_global_index() {
        let mk = |cost, worker| Some(ShardCandidate { cost, worker, share: 0.1 });
        let best = combine_candidates([mk(2.0, 3), None, mk(2.0, 9), mk(1.0, 12)]);
        assert_eq!(best.unwrap().worker, 3, "strict > keeps the first maximum");
        assert_eq!(combine_candidates([None, None]), None);
    }

    /// The tentpole parity claim at the core layer: shares, stragglers,
    /// the α schedule and the stats are bitwise identical between the
    /// sharded dataflow and the flat sequential engine for every tested
    /// (N, M), through several Σx-refresh intervals, including tie-heavy
    /// streams whose argmax crosses shard boundaries.
    #[test]
    fn sharded_is_bitwise_identical_to_flat_sequential() {
        let rounds = 600; // crosses two TOTAL_REFRESH_INTERVALs
        for n in [16usize, 64, 97] {
            for fleet in [latency_fleet(n, 11), tie_heavy_fleet(n)] {
                let mut flat = Dolbie::new(n);
                let mut flat_stragglers = Vec::new();
                let mut flat_bits: Vec<Vec<u64>> = Vec::new();
                for t in 0..rounds {
                    let played = flat.allocation().clone();
                    let obs = Observation::from_costs(t, &played, &fleet);
                    flat_stragglers.push(obs.straggler());
                    flat.observe(&obs);
                    flat_bits.push(flat.allocation().iter().map(|v| v.to_bits()).collect());
                }
                for m in [1usize, 2, 3, 4, 7] {
                    let mut sharded = ShardedDolbie::new(n, m);
                    for t in 0..rounds {
                        let round = sharded.observe_costs(&fleet);
                        assert_eq!(
                            round.straggler, flat_stragglers[t],
                            "straggler diverged (n={n}, m={m}, t={t})"
                        );
                        let bits: Vec<u64> = sharded.shares().iter().map(|v| v.to_bits()).collect();
                        assert_eq!(bits, flat_bits[t], "shares diverged (n={n}, m={m}, t={t})");
                    }
                    assert_eq!(sharded.alphas_used(), flat.alphas_used(), "n={n}, m={m}");
                    assert_eq!(sharded.stats(), flat.stats(), "n={n}, m={m}");
                }
            }
        }
    }

    /// Membership epochs — including a shard losing all of its workers —
    /// preserve the bitwise parity with the flat engine.
    #[test]
    fn sharded_matches_flat_bitwise_through_churn_and_empty_shard() {
        let n = 24;
        let rounds = 80;
        let fleet = latency_fleet(n, 29);
        // m = 4 shards of 6; the boundary at t = 30 empties shard 1
        // entirely (workers 6..12), t = 55 brings two of them back.
        let boundary = |t: usize| -> Option<Vec<bool>> {
            match t {
                12 => Some((0..n).map(|i| i != 3).collect()),
                30 => Some((0..n).map(|i| i != 3 && !(6..12).contains(&i)).collect()),
                55 => Some((0..n).map(|i| i != 3 && !(8..12).contains(&i)).collect()),
                _ => None,
            }
        };

        let mut flat = Dolbie::new(n);
        let mut members = vec![true; n];
        let mut flat_bits: Vec<Vec<u64>> = Vec::new();
        for t in 0..rounds {
            if let Some(m) = boundary(t) {
                members = m;
                flat.apply_membership(&members);
            }
            let played = flat.allocation().clone();
            let obs = Observation::from_costs_masked(t, &played, &fleet, &members, Vec::new());
            flat.observe(&obs);
            flat_bits.push(flat.allocation().iter().map(|v| v.to_bits()).collect());
        }

        for m in [1usize, 2, 4] {
            let mut sharded = ShardedDolbie::new(n, m);
            let mut members = vec![true; n];
            for (t, flat_round) in flat_bits.iter().enumerate() {
                if let Some(mm) = boundary(t) {
                    members = mm;
                    sharded.apply_membership(&members);
                }
                sharded.observe_costs(&fleet);
                let bits: Vec<u64> = sharded.shares().iter().map(|v| v.to_bits()).collect();
                assert_eq!(&bits, flat_round, "m={m}, t={t}");
            }
            assert_eq!(sharded.alphas_used(), flat.alphas_used(), "m={m}");
            // Workers still out after the final boundary hold exactly zero.
            for i in 8..12 {
                assert_eq!(sharded.shares()[i], 0.0, "stranded share on {i}");
            }
        }
    }

    /// `begin_round → abort_round` leaves the root engine bitwise
    /// indistinguishable from one that never started the attempt — the
    /// property the net tier's crash→epoch round restart rests on.
    #[test]
    fn abort_round_unwinds_begin_round_bitwise() {
        let n = 12;
        let fleet = latency_fleet(n, 7);
        let mut clean = ShardedDolbie::new(n, 3);
        let mut aborted = ShardedDolbie::new(n, 3);
        for t in 0..300 {
            // The aborted twin opens (and sometimes guards) an attempt it
            // then abandons before every real round.
            let alpha = aborted.root.begin_round();
            let guard_fired = t % 5 == 0 && {
                // Force the guard arithmetic with a synthetic overshoot.
                aborted.root.guard_scale(0.25, 0.5 + alpha).is_some()
            };
            aborted.root.abort_round(guard_fired);

            clean.observe_costs(&fleet);
            aborted.observe_costs(&fleet);
            for i in 0..n {
                assert_eq!(
                    clean.shares()[i].to_bits(),
                    aborted.shares()[i].to_bits(),
                    "t={t}, i={i}"
                );
            }
        }
        assert_eq!(clean.alphas_used(), aborted.alphas_used());
        assert_eq!(clean.stats(), aborted.stats());
    }

    /// The guard-rescale path (forced by an aggressive α floor) stays
    /// bitwise through the double cursor chain.
    #[test]
    fn sharded_guard_rescale_stays_bitwise() {
        let n = 18;
        let cfg = DolbieConfig::new().with_initial_alpha(0.9).with_alpha_floor(0.9);
        let mut flat = Dolbie::with_config(Allocation::uniform(n), cfg);
        let mut sharded = ShardedDolbie::with_config(Allocation::uniform(n), 3, cfg);
        for t in 0..100 {
            let slow = t % n;
            let fleet: Vec<DynCost> = (0..n)
                .map(|i| {
                    let slope = if i == slow { 20.0 } else { 1.0 };
                    Box::new(LinearCost::new(slope, 0.0)) as DynCost
                })
                .collect();
            let played = flat.allocation().clone();
            let obs = Observation::from_costs(t, &played, &fleet);
            flat.observe(&obs);
            sharded.observe_costs(&fleet);
            for i in 0..n {
                assert_eq!(
                    flat.allocation().share(i).to_bits(),
                    sharded.shares()[i].to_bits(),
                    "t={t}, i={i}"
                );
            }
        }
        assert!(sharded.stats().guard_activations > 0, "the floor must trip the guard");
        assert_eq!(flat.stats(), sharded.stats());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::cost::{DynCost, LatencyCost};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The satellite acceptance property: cross-shard share
        /// redistribution conserves |Σx − 1| < 1e-12 across shard counts
        /// M ∈ {1, 2, 3, 7} and membership epochs — including a shard
        /// losing all of its workers, whose mass must drain into the
        /// sibling shards.
        #[test]
        fn redistribution_conserves_the_simplex_across_shard_counts(
            n in 8usize..40,
            m_pick in 0usize..4,
            seed in 0u64..u64::MAX,
            epochs in proptest::collection::vec((1usize..60, 0usize..40), 0..4),
            drain_pick in 0usize..14,
            rounds in 20usize..70,
        ) {
            let m = [1usize, 2, 3, 7][m_pick].min(n);
            let mut state = seed;
            let fleet: Vec<DynCost> = (0..n).map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let speed = 32.0 + (state >> 40) as f64 / 65536.0;
                Box::new(LatencyCost::new(128.0, speed, 0.02)) as DynCost
            }).collect();

            let mut sharded = ShardedDolbie::new(n, m);
            let mut members = vec![true; n];
            // Schedule: worker-level leaves plus (optionally) one epoch
            // that drains a whole shard into its siblings.
            let mut boundaries: Vec<(usize, Vec<bool>)> = Vec::new();
            for &(t, w) in &epochs {
                let mut next = members.clone();
                next[w % n] = false;
                if next.iter().any(|&x| x) {
                    members = next.clone();
                    boundaries.push((t, next));
                }
            }
            if drain_pick < 7 {
                let k = drain_pick % m;
                let range = sharded.layout().range(k);
                let mut next = members.clone();
                for i in range {
                    next[i] = false;
                }
                if next.iter().any(|&x| x) {
                    boundaries.push((rounds / 2, next));
                }
            }
            boundaries.sort_by_key(|(t, _)| *t);

            let mut current = vec![true; n];
            for t in 0..rounds {
                for (bt, mm) in &boundaries {
                    if *bt == t {
                        current = mm.clone();
                        sharded.apply_membership(&current);
                        let sum = pairwise_neumaier_sum(sharded.shares());
                        prop_assert!(
                            (sum - 1.0).abs() < 1e-12,
                            "epoch at t={t}: |Σx − 1| = {:e}", (sum - 1.0).abs()
                        );
                    }
                }
                sharded.observe_costs(&fleet);
                let sum = pairwise_neumaier_sum(sharded.shares());
                prop_assert!(
                    (sum - 1.0).abs() < 1e-12,
                    "round {t}: |Σx − 1| = {:e}", (sum - 1.0).abs()
                );
                prop_assert!(sharded.shares().iter().all(|&v| v >= 0.0));
                for (i, &is_member) in current.iter().enumerate() {
                    if !is_member {
                        prop_assert_eq!(sharded.shares()[i], 0.0, "stranded share on {}", i);
                    }
                }
            }
        }
    }
}
