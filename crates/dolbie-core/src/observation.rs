//! What a round reveals to the algorithms.
//!
//! In the online protocol (Section III-C), the decision `x_t` is played
//! first; only then are the local costs `l_{i,t} = f_{i,t}(x_{i,t})` and the
//! cost functions `f_{i,t}(·)` revealed. [`Observation`] packages exactly
//! that revealed information for one round, along with derived quantities —
//! the global cost `l_t` and the straggler `s_t` — that every algorithm in
//! the paper needs.

use crate::allocation::Allocation;
use crate::cost::{CostFunction, DynCost};
use crate::parallel::{parallel_for_each, parallel_map};

/// The maximum acceptable workload `x'` of eq. (4) for a single worker:
/// the largest share at which `cost_fn` stays within `global_cost`,
/// truncated to 1 and floored at `current_share` (Lemma 1(ii) guarantees
/// `x' >= x` in exact arithmetic; the floor enforces it against rounding).
///
/// This is the *worker-local* computation of Algorithms 1–2 (each worker
/// computes its own `x'` from its own revealed cost function and the shared
/// global cost). [`Observation::max_acceptable_share`] and the protocol
/// workers in `dolbie-simnet` both call it, which keeps the sequential
/// engine and the message-passing implementations in lockstep.
pub fn max_acceptable_share(
    cost_fn: &dyn CostFunction,
    current_share: f64,
    global_cost: f64,
) -> f64 {
    match cost_fn.max_share_within(global_cost) {
        Some(x) => x.max(current_share).min(1.0),
        None => current_share,
    }
}

/// The information revealed at the end of round `t`: the played allocation,
/// each worker's realized cost, and the (now-known) cost functions.
///
/// # Examples
///
/// ```
/// use dolbie_core::{Allocation, Observation};
/// use dolbie_core::cost::{DynCost, LinearCost};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Allocation::uniform(2);
/// let costs: Vec<DynCost> = vec![
///     Box::new(LinearCost::new(4.0, 0.0)),
///     Box::new(LinearCost::new(1.0, 0.0)),
/// ];
/// let obs = Observation::from_costs(1, &x, &costs);
/// assert_eq!(obs.straggler(), 0);
/// assert_eq!(obs.global_cost(), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Observation<'a> {
    round: usize,
    shares: &'a Allocation,
    local_costs: Vec<f64>,
    cost_fns: &'a [DynCost],
    straggler: usize,
    global_cost: f64,
}

impl<'a> Observation<'a> {
    /// Builds the observation by evaluating each worker's revealed cost
    /// function at its played share.
    ///
    /// Ties for the straggler are broken toward the lowest worker index,
    /// matching line 11 of Algorithm 1 ("select the worker that ranks
    /// higher in the worker list").
    ///
    /// # Panics
    ///
    /// Panics if `cost_fns.len() != shares.num_workers()` or if the worker
    /// set is empty.
    pub fn from_costs(round: usize, shares: &'a Allocation, cost_fns: &'a [DynCost]) -> Self {
        Self::from_costs_in(round, shares, cost_fns, Vec::new())
    }

    /// As [`from_costs`](Self::from_costs), but storing the local costs in
    /// `scratch` (cleared first) so hot loops can recycle one buffer across
    /// rounds; recover it afterwards with
    /// [`into_local_costs`](Self::into_local_costs).
    ///
    /// # Panics
    ///
    /// As [`from_costs`](Self::from_costs).
    pub fn from_costs_in(
        round: usize,
        shares: &'a Allocation,
        cost_fns: &'a [DynCost],
        mut scratch: Vec<f64>,
    ) -> Self {
        assert_eq!(
            cost_fns.len(),
            shares.num_workers(),
            "one cost function per worker is required"
        );
        assert!(!cost_fns.is_empty(), "at least one worker is required");
        scratch.clear();
        scratch.extend(cost_fns.iter().enumerate().map(|(i, f)| f.eval(shares.share(i))));
        let local_costs = scratch;
        let mut straggler = 0;
        for (i, &c) in local_costs.iter().enumerate() {
            if c > local_costs[straggler] {
                straggler = i;
            }
        }
        let global_cost = local_costs[straggler];
        Self { round, shares, local_costs, cost_fns, straggler, global_cost }
    }

    /// As [`from_costs_in`](Self::from_costs_in), but evaluating the cost
    /// functions in `chunk_size`-worker chunks on the work-stealing harness
    /// and finding the straggler by an in-order combine of chunk-local
    /// argmax partials.
    ///
    /// The result is bitwise-identical to the sequential constructors at
    /// any chunk size and thread count: evaluations are pure per worker,
    /// and the combine keeps the first (lowest-index) maximum with a strict
    /// `>` exactly like the sequential scan. This is the observation-side
    /// half of the large-N engine; pair it with
    /// [`ChunkedDolbie`](crate::ChunkedDolbie).
    ///
    /// # Panics
    ///
    /// As [`from_costs`](Self::from_costs).
    pub fn from_costs_chunked(
        round: usize,
        shares: &'a Allocation,
        cost_fns: &'a [DynCost],
        mut scratch: Vec<f64>,
        chunk_size: usize,
    ) -> Self {
        assert_eq!(
            cost_fns.len(),
            shares.num_workers(),
            "one cost function per worker is required"
        );
        assert!(!cost_fns.is_empty(), "at least one worker is required");
        let n = cost_fns.len();
        let c = chunk_size.max(1);
        scratch.clear();
        scratch.resize(n, 0.0);
        let xs = shares.as_slice();
        {
            let payloads: Vec<(usize, &mut [f64])> =
                scratch.chunks_mut(c).enumerate().map(|(k, ch)| (k * c, ch)).collect();
            parallel_for_each(payloads, |(base, out)| {
                for (off, slot) in out.iter_mut().enumerate() {
                    let i = base + off;
                    *slot = cost_fns[i].eval(xs[i]);
                }
            });
        }
        let local_costs = scratch;
        // Chunk-local first-maximum partials, combined in chunk order with
        // a strict `>`: exactly the sequential lowest-index-wins scan.
        let chunks = n.div_ceil(c);
        let partials = parallel_map(chunks, |k| {
            let lo = k * c;
            let hi = n.min(lo + c);
            let mut best = lo;
            for (off, &cost) in local_costs[lo..hi].iter().enumerate() {
                if cost > local_costs[best] {
                    best = lo + off;
                }
            }
            best
        });
        let mut straggler = partials[0];
        for &candidate in &partials[1..] {
            if local_costs[candidate] > local_costs[straggler] {
                straggler = candidate;
            }
        }
        let global_cost = local_costs[straggler];
        Self { round, shares, local_costs, cost_fns, straggler, global_cost }
    }

    /// As [`from_costs_in`](Self::from_costs_in), but over an elastic
    /// membership: non-members get a local cost of exactly `0.0` without
    /// evaluating their cost function, and the straggler argmax runs over
    /// members only (lowest member index on ties). Pair it with
    /// [`apply_membership`](crate::Dolbie::apply_membership).
    ///
    /// A member holding share 0 (a fresh joiner) is still a straggler
    /// candidate — its cost is evaluated at 0, typically the fixed
    /// overhead term — which is exactly how the eq. (5)/(6) update pulls
    /// work onto it.
    ///
    /// # Panics
    ///
    /// As [`from_costs`](Self::from_costs); additionally panics if
    /// `members.len() != cost_fns.len()` or no worker is a member.
    pub fn from_costs_masked(
        round: usize,
        shares: &'a Allocation,
        cost_fns: &'a [DynCost],
        members: &[bool],
        mut scratch: Vec<f64>,
    ) -> Self {
        assert_eq!(
            cost_fns.len(),
            shares.num_workers(),
            "one cost function per worker is required"
        );
        assert_eq!(members.len(), cost_fns.len(), "one membership flag per worker");
        assert!(!cost_fns.is_empty(), "at least one worker is required");
        scratch.clear();
        scratch.extend(cost_fns.iter().enumerate().map(|(i, f)| {
            if members[i] {
                f.eval(shares.share(i))
            } else {
                0.0
            }
        }));
        let local_costs = scratch;
        let mut straggler = None;
        for (i, &c) in local_costs.iter().enumerate() {
            if members[i] && straggler.is_none_or(|s: usize| c > local_costs[s]) {
                straggler = Some(i);
            }
        }
        let straggler = straggler.expect("at least one member is required");
        let global_cost = local_costs[straggler];
        Self { round, shares, local_costs, cost_fns, straggler, global_cost }
    }

    /// Consumes the observation, handing back the local-cost storage — either
    /// to move it into a record without copying or to recycle the buffer for
    /// the next round's [`from_costs_in`](Self::from_costs_in).
    pub fn into_local_costs(self) -> Vec<f64> {
        self.local_costs
    }

    /// The round index `t` this observation belongs to.
    pub fn round(&self) -> usize {
        self.round
    }

    /// The allocation `x_t` that was actually played.
    pub fn shares(&self) -> &Allocation {
        self.shares
    }

    /// Number of workers `N`.
    pub fn num_workers(&self) -> usize {
        self.local_costs.len()
    }

    /// The local costs `l_{i,t} = f_{i,t}(x_{i,t})`.
    pub fn local_costs(&self) -> &[f64] {
        &self.local_costs
    }

    /// The revealed cost functions `f_{i,t}(·)`.
    pub fn cost_fns(&self) -> &'a [DynCost] {
        self.cost_fns
    }

    /// The global cost `l_t = max_i l_{i,t}`.
    pub fn global_cost(&self) -> f64 {
        self.global_cost
    }

    /// The straggler `s_t = argmax_i l_{i,t}` (lowest index on ties).
    pub fn straggler(&self) -> usize {
        self.straggler
    }

    /// The maximum acceptable workload `x'_{i,t}` of eq. (4) for worker `i`:
    /// the largest share that would have kept worker `i`'s cost at or below
    /// the global cost, truncated to 1.
    ///
    /// For the straggler this is its current share (it "does not need to
    /// acquire additional workload"). For non-stragglers the value is at
    /// least the current share; if the revealed inverse misbehaves
    /// numerically the current share is returned as the safe fallback.
    pub fn max_acceptable_share(&self, i: usize) -> f64 {
        let current = self.shares.share(i);
        if i == self.straggler {
            return current;
        }
        max_acceptable_share(&self.cost_fns[i], current, self.global_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LinearCost, PiecewiseLinearCost};

    fn costs(slopes: &[f64]) -> Vec<DynCost> {
        slopes.iter().map(|&s| Box::new(LinearCost::new(s, 0.0)) as DynCost).collect()
    }

    #[test]
    fn straggler_is_argmax() {
        let x = Allocation::uniform(3);
        let fns = costs(&[1.0, 5.0, 2.0]);
        let obs = Observation::from_costs(0, &x, &fns);
        assert_eq!(obs.straggler(), 1);
        assert!((obs.global_cost() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(obs.num_workers(), 3);
        assert_eq!(obs.round(), 0);
    }

    #[test]
    fn tie_breaks_to_lowest_index() {
        let x = Allocation::uniform(3);
        let fns = costs(&[2.0, 2.0, 1.0]);
        let obs = Observation::from_costs(0, &x, &fns);
        assert_eq!(obs.straggler(), 0);
    }

    #[test]
    fn local_costs_are_evaluations() {
        let x = Allocation::new(vec![0.25, 0.75]).unwrap();
        let fns = costs(&[4.0, 2.0]);
        let obs = Observation::from_costs(3, &x, &fns);
        assert_eq!(obs.local_costs(), &[1.0, 1.5]);
        assert_eq!(obs.shares().share(1), 0.75);
        assert_eq!(obs.cost_fns().len(), 2);
    }

    #[test]
    fn max_acceptable_share_matches_eq4() {
        let x = Allocation::new(vec![0.25, 0.75]).unwrap();
        let fns = costs(&[4.0, 2.0]);
        let obs = Observation::from_costs(0, &x, &fns);
        // l_t = 1.5 (worker 1 straggles at slope 2 * 0.75).
        assert_eq!(obs.straggler(), 1);
        // Worker 0: max{x : 4x <= 1.5} = 0.375.
        assert!((obs.max_acceptable_share(0) - 0.375).abs() < 1e-12);
        // Straggler keeps its own share.
        assert_eq!(obs.max_acceptable_share(1), 0.75);
    }

    #[test]
    fn max_acceptable_share_never_below_current() {
        // A plateaued function where the inverse could equal the current
        // share exactly; the result must not dip below the played share.
        let f = PiecewiseLinearCost::new(vec![(0.0, 1.0), (1.0, 1.0 + 1e-15)]).unwrap();
        let fns: Vec<DynCost> = vec![Box::new(f), Box::new(LinearCost::new(3.0, 0.0))];
        let x = Allocation::new(vec![0.5, 0.5]).unwrap();
        let obs = Observation::from_costs(0, &x, &fns);
        assert_eq!(obs.straggler(), 1);
        assert!(obs.max_acceptable_share(0) >= 0.5);
    }

    #[test]
    fn max_acceptable_share_is_truncated_to_one() {
        let fns = costs(&[0.1, 10.0]);
        let x = Allocation::uniform(2);
        let obs = Observation::from_costs(0, &x, &fns);
        assert_eq!(obs.max_acceptable_share(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "one cost function per worker")]
    fn mismatched_lengths_panic() {
        let x = Allocation::uniform(2);
        let fns = costs(&[1.0]);
        let _ = Observation::from_costs(0, &x, &fns);
    }

    #[test]
    fn chunked_constructor_matches_sequential_bitwise() {
        use crate::parallel::set_threads;
        let n = 53;
        // Tie-heavy: two interleaved slope classes force the argmax to
        // resolve many exact ties to the lowest index.
        let slopes: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 3.0 } else { 1.5 }).collect();
        let fns = costs(&slopes);
        let x = Allocation::uniform(n);
        let reference = Observation::from_costs(4, &x, &fns);
        for chunk in [1usize, 7, 64, n] {
            for threads in [1usize, 4] {
                set_threads(threads);
                let got = Observation::from_costs_chunked(4, &x, &fns, Vec::new(), chunk);
                set_threads(0);
                assert_eq!(got.straggler(), reference.straggler(), "chunk {chunk}");
                assert_eq!(got.global_cost().to_bits(), reference.global_cost().to_bits());
                let ref_bits: Vec<u64> =
                    reference.local_costs().iter().map(|v| v.to_bits()).collect();
                let got_bits: Vec<u64> = got.local_costs().iter().map(|v| v.to_bits()).collect();
                assert_eq!(got_bits, ref_bits, "chunk {chunk}, threads {threads}");
            }
        }
    }

    #[test]
    fn chunked_constructor_recycles_scratch() {
        let fns = costs(&[1.0, 2.0, 3.0]);
        let x = Allocation::uniform(3);
        let obs = Observation::from_costs_chunked(0, &x, &fns, vec![9.0; 64], 2);
        assert_eq!(obs.num_workers(), 3);
        assert_eq!(obs.straggler(), 2);
        let buf = obs.into_local_costs();
        assert_eq!(buf.len(), 3, "scratch is resized to the worker count");
    }
}
