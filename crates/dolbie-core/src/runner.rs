//! The online episode driver: play, reveal, observe, repeat.
//!
//! [`run_episode`] executes the protocol of problem (1) for `T` rounds,
//! recording everything the experiments need: the played allocations, the
//! realized local and global costs, the straggler sequence, and (optionally)
//! the clairvoyant optimum of every round for regret computation.

use crate::allocation::Allocation;
use crate::balancer::LoadBalancer;
use crate::cost::{round_lipschitz, DynCost};
use crate::environment::Environment;
use crate::observation::Observation;
use crate::oracle::{instantaneous_minimizer_cached, InstantOptimum, OracleCache};
use crate::regret::RegretTracker;

/// Options for [`run_episode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpisodeOptions {
    /// Number of rounds `T` to play.
    pub rounds: usize,
    /// Whether to solve the per-round offline problem to record the
    /// instantaneous optimum (needed for regret, costs one oracle solve per
    /// round).
    pub track_optimum: bool,
}

impl EpisodeOptions {
    /// `rounds` rounds without optimum tracking.
    pub fn new(rounds: usize) -> Self {
        Self { rounds, track_optimum: false }
    }

    /// Enables per-round optimum tracking.
    pub fn with_optimum(mut self) -> Self {
        self.track_optimum = true;
        self
    }
}

/// Everything recorded about a single round.
#[derive(Debug, Clone)]
pub struct RoundRecord {
    /// Round index `t` (0-based).
    pub round: usize,
    /// The allocation `x_t` that was played.
    pub allocation: Allocation,
    /// Local costs `l_{i,t}`.
    pub local_costs: Vec<f64>,
    /// Global cost `l_t = max_i l_{i,t}`.
    pub global_cost: f64,
    /// The straggler `s_t`.
    pub straggler: usize,
    /// The clairvoyant optimum for this round's costs, if tracked.
    pub optimum: Option<InstantOptimum>,
    /// The round's estimated Lipschitz constant (max derivative bound), if
    /// the optimum was tracked (used for the Theorem 1 bound).
    pub lipschitz: Option<f64>,
}

/// The full trace of an episode.
#[derive(Debug, Clone)]
pub struct EpisodeTrace {
    /// The balancer's display name.
    pub algorithm: String,
    /// One record per round.
    pub records: Vec<RoundRecord>,
}

impl EpisodeTrace {
    /// Total accumulated global cost `Σ_t f_t(x_t)` — the objective of
    /// problem (1).
    pub fn total_cost(&self) -> f64 {
        self.records.iter().map(|r| r.global_cost).sum()
    }

    /// The sequence of global costs, one per round.
    pub fn global_costs(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.global_cost).collect()
    }

    /// The measured dynamic regret and path length, if the optimum was
    /// tracked; `None` otherwise.
    pub fn regret(&self) -> Option<RegretTracker> {
        let mut tracker = RegretTracker::new();
        for r in &self.records {
            let opt = r.optimum.as_ref()?;
            tracker.record(r.global_cost, opt.level, &opt.allocation);
        }
        Some(tracker)
    }

    /// Largest per-round Lipschitz estimate across the episode, if tracked.
    pub fn max_lipschitz(&self) -> Option<f64> {
        self.records.iter().map(|r| r.lipschitz).try_fold(0.0f64, |acc, l| Some(acc.max(l?)))
    }

    /// Per-worker idle (waiting) time in each round: `l_t − l_{i,t}`, the
    /// time worker `i` spends at the synchronization barrier (Fig. 11's
    /// "waiting" component).
    pub fn waiting_times(&self) -> Vec<Vec<f64>> {
        self.records
            .iter()
            .map(|r| r.local_costs.iter().map(|&c| r.global_cost - c).collect())
            .collect()
    }
}

/// Runs a study of independent replications: for each seed, `make` builds
/// a fresh `(balancer, environment)` pair and one episode is run. Returns
/// one trace per seed — the raw material for the mean ± CI reporting used
/// throughout the paper's figures.
///
/// # Panics
///
/// As [`run_episode`], for any replication.
///
/// # Examples
///
/// ```
/// use dolbie_core::environment::StaticLinearEnvironment;
/// use dolbie_core::{run_replications, Dolbie, EpisodeOptions};
///
/// let traces = run_replications(0..3, EpisodeOptions::new(10), |seed| {
///     let slopes = vec![1.0 + seed as f64, 1.0];
///     (Dolbie::new(2), StaticLinearEnvironment::from_slopes(slopes))
/// });
/// assert_eq!(traces.len(), 3);
/// ```
pub fn run_replications<B, E>(
    seeds: impl IntoIterator<Item = u64>,
    options: EpisodeOptions,
    mut make: impl FnMut(u64) -> (B, E),
) -> Vec<EpisodeTrace>
where
    B: LoadBalancer,
    E: Environment,
{
    seeds
        .into_iter()
        .map(|seed| {
            let (mut balancer, mut env) = make(seed);
            run_episode(&mut balancer, &mut env, options)
        })
        .collect()
}

/// Runs `balancer` against `env` for the configured number of rounds.
///
/// # Panics
///
/// Panics if the balancer and environment disagree on the worker count.
pub fn run_episode(
    balancer: &mut dyn LoadBalancer,
    env: &mut dyn Environment,
    options: EpisodeOptions,
) -> EpisodeTrace {
    assert_eq!(
        balancer.allocation().num_workers(),
        env.num_workers(),
        "balancer and environment must agree on the worker count"
    );
    let mut records = Vec::with_capacity(options.rounds);
    // The oracle warm-starts each round's solve from the previous level.
    let mut oracle_cache = OracleCache::new();
    for round in 0..options.rounds {
        let played = balancer.allocation().clone();
        let costs = env.reveal(round);
        let observation = Observation::from_costs(round, &played, &costs);
        let (optimum, lipschitz) = if options.track_optimum {
            let opt = instantaneous_minimizer_cached(&costs, &mut oracle_cache)
                .expect("environment produced unusable cost functions");
            (Some(opt), Some(round_lipschitz(&costs)))
        } else {
            (None, None)
        };
        balancer.observe(&observation);
        let global_cost = observation.global_cost();
        let straggler = observation.straggler();
        // The played allocation and the local-cost buffer move straight
        // into the record — no per-round copies.
        let local_costs = observation.into_local_costs();
        records.push(RoundRecord {
            round,
            allocation: played,
            local_costs,
            global_cost,
            straggler,
            optimum,
            lipschitz,
        });
    }
    EpisodeTrace { algorithm: balancer.name().to_owned(), records }
}

/// Aggregate-only result of [`run_episode_streaming`].
#[derive(Debug, Clone)]
pub struct EpisodeSummary {
    /// The balancer's display name.
    pub algorithm: String,
    /// Number of rounds played.
    pub rounds: usize,
    /// Total accumulated global cost `Σ_t f_t(x_t)`.
    pub total_cost: f64,
    /// The last round's global cost (`0.0` for an empty episode).
    pub final_global_cost: f64,
    /// The measured regret, if `options.track_optimum` was set.
    pub regret: Option<RegretTracker>,
}

/// As [`run_episode`], but without materializing per-round records: one
/// allocation buffer and one local-cost buffer are reused across all
/// rounds, and (with `track_optimum`) the oracle is warm-started from the
/// previous round's level. This is the allocation-free hot path for
/// throughput-bound callers that only need episode aggregates.
///
/// # Panics
///
/// As [`run_episode`].
pub fn run_episode_streaming(
    balancer: &mut dyn LoadBalancer,
    env: &mut dyn Environment,
    options: EpisodeOptions,
) -> EpisodeSummary {
    assert_eq!(
        balancer.allocation().num_workers(),
        env.num_workers(),
        "balancer and environment must agree on the worker count"
    );
    let mut oracle_cache = OracleCache::new();
    let mut tracker = options.track_optimum.then(RegretTracker::new);
    let mut played = balancer.allocation().clone();
    let mut scratch: Vec<f64> = Vec::with_capacity(played.num_workers());
    let mut total_cost = 0.0;
    let mut final_global_cost = 0.0;
    for round in 0..options.rounds {
        played.copy_from(balancer.allocation());
        let costs = env.reveal(round);
        let observation = Observation::from_costs_in(round, &played, &costs, scratch);
        total_cost += observation.global_cost();
        final_global_cost = observation.global_cost();
        if let Some(tracker) = tracker.as_mut() {
            let opt = instantaneous_minimizer_cached(&costs, &mut oracle_cache)
                .expect("environment produced unusable cost functions");
            tracker.record(observation.global_cost(), opt.level, &opt.allocation);
        }
        balancer.observe(&observation);
        scratch = observation.into_local_costs();
    }
    EpisodeSummary {
        algorithm: balancer.name().to_owned(),
        rounds: options.rounds,
        total_cost,
        final_global_cost,
        regret: tracker,
    }
}

/// As [`run_episode_streaming`], but for a *static* cost profile passed as
/// a plain slice: no [`Environment`] boxing, no per-round cost-function
/// allocations — at N = 10^6 workers the `Environment::reveal` contract
/// (a fresh `Vec<DynCost>` per round) would alone cost a billion
/// allocations over 10^3 rounds. This is the large-N throughput driver
/// used by the `large_n` bench suite.
///
/// `chunk_size: Some(c)` builds each round's observation with
/// [`Observation::from_costs_chunked`] (parallel cost evaluation and
/// straggler argmax); `None` uses the sequential
/// [`Observation::from_costs_in`]. Both produce bitwise-identical
/// episodes.
///
/// # Panics
///
/// Panics if the balancer and the cost slice disagree on the worker count.
pub fn run_episode_with_static_costs(
    balancer: &mut dyn LoadBalancer,
    cost_fns: &[DynCost],
    rounds: usize,
    chunk_size: Option<usize>,
) -> EpisodeSummary {
    assert_eq!(
        balancer.allocation().num_workers(),
        cost_fns.len(),
        "balancer and cost profile must agree on the worker count"
    );
    let mut played = balancer.allocation().clone();
    let mut scratch: Vec<f64> = Vec::with_capacity(cost_fns.len());
    let mut total_cost = 0.0;
    let mut final_global_cost = 0.0;
    for round in 0..rounds {
        played.copy_from(balancer.allocation());
        let observation = match chunk_size {
            Some(c) => Observation::from_costs_chunked(round, &played, cost_fns, scratch, c),
            None => Observation::from_costs_in(round, &played, cost_fns, scratch),
        };
        total_cost += observation.global_cost();
        final_global_cost = observation.global_cost();
        balancer.observe(&observation);
        scratch = observation.into_local_costs();
    }
    EpisodeSummary {
        algorithm: balancer.name().to_owned(),
        rounds,
        total_cost,
        final_global_cost,
        regret: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dolbie::Dolbie;
    use crate::environment::{RotatingStragglerEnvironment, StaticLinearEnvironment};
    use crate::regret::theorem1_bound;

    #[test]
    fn trace_records_every_round() {
        let mut d = Dolbie::new(3);
        let mut env = StaticLinearEnvironment::from_slopes(vec![3.0, 1.0, 2.0]);
        let trace = run_episode(&mut d, &mut env, EpisodeOptions::new(25));
        assert_eq!(trace.records.len(), 25);
        assert_eq!(trace.algorithm, "DOLBIE");
        assert_eq!(trace.global_costs().len(), 25);
        assert!(trace.total_cost() > 0.0);
        assert!(trace.regret().is_none(), "optimum was not tracked");
        assert!(trace.max_lipschitz().is_none());
        // First round plays the uniform split.
        assert_eq!(trace.records[0].allocation, Allocation::uniform(3));
        assert_eq!(trace.records[0].straggler, 0);
    }

    #[test]
    fn regret_is_tracked_and_bounded() {
        let mut d = Dolbie::new(4);
        let mut env = StaticLinearEnvironment::from_slopes(vec![4.0, 1.0, 2.0, 1.0]);
        let trace = run_episode(&mut d, &mut env, EpisodeOptions::new(60).with_optimum());
        let tracker = trace.regret().expect("optimum tracked");
        assert_eq!(tracker.rounds(), 60);
        assert!(tracker.dynamic_regret() >= -1e-9, "cannot beat the clairvoyant optimum");
        // Static environment => zero path length.
        assert!(tracker.path_length() < 1e-6);
        // Theorem 1 holds on this instance.
        let bound = theorem1_bound(
            4,
            trace.max_lipschitz().unwrap(),
            tracker.path_length(),
            d.alphas_used(),
        );
        assert!(
            tracker.dynamic_regret() <= bound,
            "measured regret {} exceeds Theorem 1 bound {}",
            tracker.dynamic_regret(),
            bound
        );
    }

    #[test]
    fn rotating_environment_has_positive_path_length() {
        let mut d = Dolbie::new(3);
        let mut env = RotatingStragglerEnvironment::new(3, 5, 6.0, 1.0);
        let trace = run_episode(&mut d, &mut env, EpisodeOptions::new(30).with_optimum());
        let tracker = trace.regret().unwrap();
        assert!(tracker.path_length() > 0.1);
    }

    #[test]
    fn waiting_times_decompose() {
        let mut d = Dolbie::new(2);
        let mut env = StaticLinearEnvironment::from_slopes(vec![3.0, 1.0]);
        let trace = run_episode(&mut d, &mut env, EpisodeOptions::new(5));
        let waits = trace.waiting_times();
        assert_eq!(waits.len(), 5);
        for (r, w) in trace.records.iter().zip(&waits) {
            // The straggler never waits; everyone else waits non-negatively.
            assert_eq!(w[r.straggler], 0.0);
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn streaming_matches_recorded_episode() {
        let slopes = vec![3.0, 1.0, 2.0];
        let mut d1 = Dolbie::new(3);
        let mut env1 = StaticLinearEnvironment::from_slopes(slopes.clone());
        let trace = run_episode(&mut d1, &mut env1, EpisodeOptions::new(40).with_optimum());
        let mut d2 = Dolbie::new(3);
        let mut env2 = StaticLinearEnvironment::from_slopes(slopes);
        let summary =
            run_episode_streaming(&mut d2, &mut env2, EpisodeOptions::new(40).with_optimum());
        assert_eq!(summary.algorithm, trace.algorithm);
        assert_eq!(summary.rounds, 40);
        assert_eq!(summary.total_cost, trace.total_cost());
        assert_eq!(summary.final_global_cost, trace.records[39].global_cost);
        let streamed = summary.regret.expect("optimum tracked");
        let recorded = trace.regret().expect("optimum tracked");
        assert_eq!(streamed.dynamic_regret(), recorded.dynamic_regret());
        assert_eq!(streamed.path_length(), recorded.path_length());
    }

    #[test]
    fn streaming_empty_episode_is_well_defined() {
        let mut d = Dolbie::new(2);
        let mut env = StaticLinearEnvironment::from_slopes(vec![1.0, 2.0]);
        let summary = run_episode_streaming(&mut d, &mut env, EpisodeOptions::new(0));
        assert_eq!(summary.rounds, 0);
        assert_eq!(summary.total_cost, 0.0);
        assert_eq!(summary.final_global_cost, 0.0);
        assert!(summary.regret.is_none());
    }

    #[test]
    fn replications_are_independent() {
        let traces = run_replications(0..4, EpisodeOptions::new(20), |seed| {
            let slopes = vec![2.0 + seed as f64, 1.0, 1.5];
            (Dolbie::new(3), StaticLinearEnvironment::from_slopes(slopes))
        });
        assert_eq!(traces.len(), 4);
        // Different seeds produce different environments, hence costs.
        assert_ne!(traces[0].total_cost(), traces[3].total_cost());
        // Same seed twice is deterministic.
        let again = run_replications([3u64, 3], EpisodeOptions::new(20), |seed| {
            let slopes = vec![2.0 + seed as f64, 1.0, 1.5];
            (Dolbie::new(3), StaticLinearEnvironment::from_slopes(slopes))
        });
        assert_eq!(again[0].total_cost(), again[1].total_cost());
    }

    #[test]
    #[should_panic(expected = "agree on the worker count")]
    fn mismatched_worker_counts_panic() {
        let mut d = Dolbie::new(2);
        let mut env = StaticLinearEnvironment::from_slopes(vec![1.0, 2.0, 3.0]);
        let _ = run_episode(&mut d, &mut env, EpisodeOptions::new(1));
    }

    #[test]
    fn static_cost_driver_matches_streaming_episode() {
        use crate::cost::LinearCost;
        let slopes = [3.0, 1.0, 2.0];
        let costs: Vec<DynCost> =
            slopes.iter().map(|&s| Box::new(LinearCost::new(s, 0.0)) as DynCost).collect();
        let mut d1 = Dolbie::new(3);
        let mut env = StaticLinearEnvironment::from_slopes(slopes.to_vec());
        let streamed = run_episode_streaming(&mut d1, &mut env, EpisodeOptions::new(40));
        let mut d2 = Dolbie::new(3);
        let via_slice = run_episode_with_static_costs(&mut d2, &costs, 40, None);
        assert_eq!(via_slice.total_cost, streamed.total_cost);
        assert_eq!(via_slice.final_global_cost, streamed.final_global_cost);
        assert_eq!(via_slice.rounds, 40);
        // The chunked observation path walks the identical episode.
        let mut d3 = crate::ChunkedDolbie::new(3).with_chunk_size(2);
        let chunked = run_episode_with_static_costs(&mut d3, &costs, 40, Some(2));
        assert_eq!(chunked.total_cost.to_bits(), via_slice.total_cost.to_bits());
        assert_eq!(d2.allocation().as_slice(), d3.allocation().as_slice());
    }

    #[test]
    #[should_panic(expected = "agree on the worker count")]
    fn static_cost_driver_rejects_mismatched_counts() {
        use crate::cost::LinearCost;
        let costs: Vec<DynCost> = vec![Box::new(LinearCost::new(1.0, 0.0))];
        let mut d = Dolbie::new(2);
        let _ = run_episode_with_static_costs(&mut d, &costs, 1, None);
    }
}
