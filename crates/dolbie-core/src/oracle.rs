//! The instantaneous-minimizer oracle (`OPT` / "Dynamic Optimum").
//!
//! The dynamic regret of Section V compares against
//! `x*_t ∈ argmin_{x ∈ F} max_i f_{i,t}(x_i)`, and the experiments include
//! `OPT` as a clairvoyant baseline. For increasing local costs the min-max
//! problem on the simplex has a water-filling structure: a global-cost
//! level `l` is achievable iff every worker can afford an empty share
//! (`f_i(0) <= l`) and the per-worker capacities
//! `cap_i(l) = min(1, max{x : f_i(x) <= l})` jointly cover the workload
//! (`Σ_i cap_i(l) >= 1`). Feasibility is monotone in `l`, so the optimal
//! level is found by bisection, and any allocation with `x_i <= cap_i(l*)`
//! summing to one attains it.

use crate::allocation::Allocation;
use crate::cost::DynCost;
use crate::error::OracleError;
use crate::solver::{min_feasible_level, BisectionConfig};

/// The result of solving one round's offline problem.
#[derive(Debug, Clone)]
pub struct InstantOptimum {
    /// The achieved global cost `f_t(x*_t)`.
    pub level: f64,
    /// A minimizing allocation `x*_t`.
    pub allocation: Allocation,
}

/// Reusable state for warm-starting consecutive oracle solves.
///
/// Cost sequences drift slowly in every environment of this workspace, so
/// the optimal level of round `t` is an excellent starting guess for round
/// `t + 1`. [`instantaneous_minimizer_cached`] probes a narrow bracket
/// around the cached level (expanding geometrically on a miss, falling back
/// to the full `[max_i f_i(0), max_i f_i(1)]` bracket) instead of bisecting
/// the full bracket from scratch, and recycles the capacity buffer between
/// rounds.
///
/// The warm-started result agrees with the cold solve to within the
/// [`BisectionConfig`] argument tolerance; an empty cache reproduces the
/// cold solve exactly.
#[derive(Debug, Clone, Default)]
pub struct OracleCache {
    last_level: Option<f64>,
    room: Vec<f64>,
}

impl OracleCache {
    /// An empty cache; the first solve through it runs cold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets the cached level (call when switching to an unrelated cost
    /// sequence); the scratch storage is kept.
    pub fn reset(&mut self) {
        self.last_level = None;
    }

    /// The bisected level of the most recent solve, if any.
    pub fn last_level(&self) -> Option<f64> {
        self.last_level
    }
}

/// Computes the instantaneous minimizer of `max_i f_i(x_i)` over the
/// simplex for one round's cost functions.
///
/// # Errors
///
/// Returns [`OracleError::NoWorkers`] for an empty input and
/// [`OracleError::NonFiniteCost`] if a cost function violates its
/// finiteness contract.
///
/// # Examples
///
/// ```
/// use dolbie_core::cost::{DynCost, LinearCost};
/// use dolbie_core::oracle::instantaneous_minimizer;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let costs: Vec<DynCost> = vec![
///     Box::new(LinearCost::new(4.0, 0.0)),
///     Box::new(LinearCost::new(1.0, 0.0)),
/// ];
/// let opt = instantaneous_minimizer(&costs)?;
/// // Balance: 4 x0 = x1, x0 + x1 = 1  =>  x0 = 0.2, level 0.8.
/// assert!((opt.level - 0.8).abs() < 1e-6);
/// assert!((opt.allocation.share(0) - 0.2).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn instantaneous_minimizer(cost_fns: &[DynCost]) -> Result<InstantOptimum, OracleError> {
    solve(cost_fns, None, None)
}

/// [`instantaneous_minimizer`] warm-started from `cache`.
///
/// The first call through an empty cache is identical to the cold solve;
/// subsequent calls bisect a narrow bracket around the previous optimal
/// level, which converges in far fewer feasibility probes when consecutive
/// cost functions are close (the common case for every environment here).
/// The result agrees with [`instantaneous_minimizer`] to within the
/// [`BisectionConfig`] argument tolerance.
///
/// # Errors
///
/// As [`instantaneous_minimizer`].
pub fn instantaneous_minimizer_cached(
    cost_fns: &[DynCost],
    cache: &mut OracleCache,
) -> Result<InstantOptimum, OracleError> {
    solve(cost_fns, None, Some(cache))
}

/// [`instantaneous_minimizer`] under per-worker share caps
/// `x_i <= share_caps[i]` — the capacity-constrained extension matching
/// [`Dolbie::with_share_caps`](crate::Dolbie::with_share_caps).
///
/// # Errors
///
/// As [`instantaneous_minimizer`]; additionally the caps must be in
/// `[0, 1]` with `Σ_i caps_i >= 1`, or the problem has no feasible point.
///
/// # Panics
///
/// Panics if `share_caps` is provided with the wrong length, contains a
/// value outside `[0, 1]`, or sums to less than one.
pub fn instantaneous_minimizer_capped(
    cost_fns: &[DynCost],
    share_caps: Option<&[f64]>,
) -> Result<InstantOptimum, OracleError> {
    solve(cost_fns, share_caps, None)
}

fn solve(
    cost_fns: &[DynCost],
    share_caps: Option<&[f64]>,
    mut cache: Option<&mut OracleCache>,
) -> Result<InstantOptimum, OracleError> {
    let n = cost_fns.len();
    if n == 0 {
        return Err(OracleError::NoWorkers);
    }
    if let Some(c) = share_caps {
        assert_eq!(c.len(), n, "one share cap per worker");
        assert!(c.iter().all(|&v| (0.0..=1.0).contains(&v)), "share caps must lie in [0, 1]");
        assert!(c.iter().sum::<f64>() >= 1.0 - 1e-9, "caps must cover the workload");
    }
    let cap = |i: usize| share_caps.map_or(1.0, |c| c[i]);
    if n == 1 {
        let level = cost_fns[0].eval(1.0);
        if !level.is_finite() {
            return Err(OracleError::NonFiniteCost { worker: 0 });
        }
        if let Some(c) = cache.as_deref_mut() {
            c.last_level = Some(level);
        }
        return Ok(InstantOptimum { level, allocation: Allocation::singleton(1, 0) });
    }

    // Lower bound: any allocation costs at least max_i f_i(0).
    // Upper bound: the level at which every worker can absorb its full cap
    // is feasible (the caps jointly cover the workload).
    let mut lo = f64::MIN;
    let mut hi = f64::MIN;
    for (worker, f) in cost_fns.iter().enumerate() {
        let at_zero = f.eval(0.0);
        let at_cap = f.eval(cap(worker));
        if !at_zero.is_finite() || !at_cap.is_finite() {
            return Err(OracleError::NonFiniteCost { worker });
        }
        lo = lo.max(at_zero);
        hi = hi.max(at_cap);
    }

    let feasible = |level: f64| -> bool {
        let mut total = 0.0;
        for (i, f) in cost_fns.iter().enumerate() {
            match f.max_share_within(level) {
                Some(c) => total += c.min(cap(i)),
                // Some worker cannot even hold an empty share at this level.
                None => return false,
            }
        }
        total >= 1.0
    };

    let config = BisectionConfig::new();
    // Warm start: if the cache holds a previous optimal level inside the
    // bracket, expand geometrically around it until the boundary is
    // straddled, then bisect only that narrow bracket. A stale guess
    // degrades gracefully to the full bracket.
    let (mut blo, mut bhi) = (lo, hi);
    if let Some(guess) = cache.as_deref().and_then(|c| c.last_level) {
        if guess.is_finite() && guess > lo && guess < hi {
            let mut width = ((hi - lo) * 1e-3).max(config.x_tolerance);
            if feasible(guess) {
                bhi = guess;
                loop {
                    let probe = bhi - width;
                    if probe <= blo {
                        break;
                    }
                    if feasible(probe) {
                        bhi = probe;
                        width *= 8.0;
                    } else {
                        blo = probe;
                        break;
                    }
                }
            } else {
                blo = guess;
                loop {
                    let probe = blo + width;
                    if probe >= bhi {
                        break;
                    }
                    if feasible(probe) {
                        bhi = probe;
                        break;
                    }
                    blo = probe;
                    width *= 8.0;
                }
            }
        }
    }

    let level = min_feasible_level(feasible, blo, bhi, config)
        .expect("the all-caps level is always feasible");

    // Per-worker room at the optimal level, reusing the cache's buffer.
    let mut room = match cache.as_deref_mut() {
        Some(c) => std::mem::take(&mut c.room),
        None => Vec::new(),
    };
    room.clear();
    room.extend(
        cost_fns
            .iter()
            .enumerate()
            .map(|(i, f)| f.max_share_within(level).unwrap_or(0.0).min(cap(i))),
    );
    let total: f64 = room.iter().sum();
    debug_assert!(total >= 1.0 - 1e-9, "feasible level must cover the workload");
    // Scaling keeps x_i <= room_i (total >= 1), so every worker stays at or
    // below the level and within its cap; the sum is exactly one.
    let shares: Vec<f64> = room.iter().map(|c| c / total).collect();
    if let Some(c) = cache {
        c.room = room;
        c.last_level = Some(level);
    }
    let allocation =
        Allocation::from_update(shares).expect("scaled capacities form a feasible allocation");
    let achieved = cost_fns
        .iter()
        .enumerate()
        .map(|(i, f)| f.eval(allocation.share(i)))
        .fold(f64::MIN, f64::max);
    Ok(InstantOptimum { level: achieved, allocation })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{ExponentialCost, LatencyCost, LinearCost, PiecewiseLinearCost, PowerCost};

    #[test]
    fn linear_closed_form() {
        // Slopes a_i, zero intercept: x_i ∝ 1/a_i, level = 1/Σ(1/a_i).
        let slopes = [4.0, 1.0, 2.0];
        let costs: Vec<DynCost> =
            slopes.iter().map(|&s| Box::new(LinearCost::new(s, 0.0)) as DynCost).collect();
        let opt = instantaneous_minimizer(&costs).unwrap();
        let expected = 1.0 / slopes.iter().map(|s| 1.0 / s).sum::<f64>();
        assert!((opt.level - expected).abs() < 1e-6, "level {} vs {expected}", opt.level);
        for (i, &s) in slopes.iter().enumerate() {
            assert!((opt.allocation.share(i) - expected / s).abs() < 1e-6);
        }
    }

    #[test]
    fn heterogeneous_intercepts() {
        // Worker 1 has a large fixed cost: at the optimum it still gets
        // some work iff its f(0) is below the balanced level.
        let costs: Vec<DynCost> =
            vec![Box::new(LinearCost::new(1.0, 0.0)), Box::new(LinearCost::new(1.0, 0.9))];
        let opt = instantaneous_minimizer(&costs).unwrap();
        // Balance: x0 = x1 + 0.9, x0 + x1 = 1 -> x0 = 0.95, level 0.95.
        assert!((opt.level - 0.95).abs() < 1e-6);
        assert!((opt.allocation.share(1) - 0.05).abs() < 1e-6);
    }

    #[test]
    fn worker_priced_out_gets_zero() {
        // Worker 1's fixed cost exceeds what worker 0 costs at full load:
        // optimum loads worker 0 fully.
        let costs: Vec<DynCost> =
            vec![Box::new(LinearCost::new(1.0, 0.0)), Box::new(LinearCost::new(1.0, 5.0))];
        let opt = instantaneous_minimizer(&costs).unwrap();
        assert!((opt.level - 5.0).abs() < 1e-6, "level is pinned by f_1(0) = 5");
        assert!(opt.allocation.share(0) > 0.999);
    }

    #[test]
    fn single_worker() {
        let costs: Vec<DynCost> = vec![Box::new(LinearCost::new(2.0, 1.0))];
        let opt = instantaneous_minimizer(&costs).unwrap();
        assert_eq!(opt.level, 3.0);
        assert_eq!(opt.allocation.share(0), 1.0);
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(instantaneous_minimizer(&[]).unwrap_err(), OracleError::NoWorkers);
    }

    #[test]
    fn nonlinear_mix_is_balanced() {
        let costs: Vec<DynCost> = vec![
            Box::new(PowerCost::new(5.0, 2.0, 0.0)),
            Box::new(ExponentialCost::new(1.0, 2.0, 0.0)),
            Box::new(LinearCost::new(2.0, 0.0)),
        ];
        let opt = instantaneous_minimizer(&costs).unwrap();
        // All three can reach zero cost at zero share, so at the optimum
        // all active workers sit exactly at the level.
        for (i, f) in costs.iter().enumerate() {
            let c = f.eval(opt.allocation.share(i));
            assert!((c - opt.level).abs() < 1e-5, "worker {i}: {c} vs {}", opt.level);
        }
        // And the optimum beats the uniform split.
        let uniform_cost = costs.iter().map(|f| f.eval(1.0 / 3.0)).fold(f64::MIN, f64::max);
        assert!(opt.level <= uniform_cost + 1e-9);
    }

    #[test]
    fn latency_model_optimum() {
        let costs: Vec<DynCost> = vec![
            Box::new(LatencyCost::new(256.0, 512.0, 0.05)),
            Box::new(LatencyCost::new(256.0, 64.0, 0.05)),
            Box::new(LatencyCost::new(256.0, 128.0, 0.05)),
        ];
        let opt = instantaneous_minimizer(&costs).unwrap();
        // Equal comm time: shares proportional to speeds.
        let total_speed = 512.0 + 64.0 + 128.0;
        assert!((opt.allocation.share(0) - 512.0 / total_speed).abs() < 1e-6);
        assert!((opt.level - (256.0 / total_speed + 0.05)).abs() < 1e-6);
    }

    #[test]
    fn capped_oracle_respects_caps() {
        // Without caps, the fast worker would take 0.8; capped at 0.5 it
        // takes exactly its cap and the level rises accordingly.
        let costs: Vec<DynCost> =
            vec![Box::new(LinearCost::new(4.0, 0.0)), Box::new(LinearCost::new(1.0, 0.0))];
        let free = instantaneous_minimizer(&costs).unwrap();
        assert!((free.allocation.share(1) - 0.8).abs() < 1e-6);
        let capped = instantaneous_minimizer_capped(&costs, Some(&[1.0, 0.5])).unwrap();
        assert!(capped.allocation.share(1) <= 0.5 + 1e-9);
        assert!(capped.level > free.level, "binding caps must cost something");
        // Forced: x0 = 0.5 at slope 4 -> level 2.0.
        assert!((capped.level - 2.0).abs() < 1e-6, "level {}", capped.level);
    }

    #[test]
    fn capped_oracle_with_slack_caps_matches_uncapped() {
        let costs: Vec<DynCost> = vec![
            Box::new(LinearCost::new(3.0, 0.1)),
            Box::new(LinearCost::new(1.0, 0.0)),
            Box::new(LinearCost::new(2.0, 0.2)),
        ];
        let free = instantaneous_minimizer(&costs).unwrap();
        let capped = instantaneous_minimizer_capped(&costs, Some(&[1.0, 1.0, 1.0])).unwrap();
        assert!((free.level - capped.level).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cover the workload")]
    fn infeasible_caps_panic() {
        let costs: Vec<DynCost> =
            vec![Box::new(LinearCost::new(1.0, 0.0)), Box::new(LinearCost::new(1.0, 0.0))];
        let _ = instantaneous_minimizer_capped(&costs, Some(&[0.3, 0.3]));
    }

    #[test]
    fn empty_cache_reproduces_cold_solve_exactly() {
        let costs: Vec<DynCost> = vec![
            Box::new(LinearCost::new(4.0, 0.1)),
            Box::new(LinearCost::new(1.0, 0.0)),
            Box::new(LinearCost::new(2.5, 0.3)),
        ];
        let cold = instantaneous_minimizer(&costs).unwrap();
        let mut cache = OracleCache::new();
        let warm = instantaneous_minimizer_cached(&costs, &mut cache).unwrap();
        assert_eq!(cold.level, warm.level, "first cached solve must be bitwise cold");
        assert_eq!(cold.allocation, warm.allocation);
        assert!(cache.last_level().is_some());
    }

    #[test]
    fn warm_start_tracks_a_drifting_sequence() {
        let mut cache = OracleCache::new();
        for t in 0..50 {
            let drift = 1.0 + 0.02 * t as f64;
            let costs: Vec<DynCost> = vec![
                Box::new(LinearCost::new(4.0 * drift, 0.0)),
                Box::new(LinearCost::new(1.0, 0.1)),
                Box::new(LinearCost::new(2.0 / drift, 0.0)),
            ];
            let cold = instantaneous_minimizer(&costs).unwrap();
            let warm = instantaneous_minimizer_cached(&costs, &mut cache).unwrap();
            assert!(
                (cold.level - warm.level).abs() <= 1e-9,
                "round {t}: cold {} vs warm {}",
                cold.level,
                warm.level
            );
            for i in 0..3 {
                assert!(
                    (cold.allocation.share(i) - warm.allocation.share(i)).abs() <= 1e-6,
                    "round {t}, worker {i}"
                );
            }
        }
    }

    #[test]
    fn stale_guess_falls_back_to_full_bracket() {
        let mut cache = OracleCache::new();
        let a: Vec<DynCost> =
            vec![Box::new(LinearCost::new(0.01, 0.0)), Box::new(LinearCost::new(0.02, 0.0))];
        let _ = instantaneous_minimizer_cached(&a, &mut cache).unwrap();
        // A wildly different instance: the cached level is far outside the
        // new boundary, in both directions.
        let b: Vec<DynCost> =
            vec![Box::new(LinearCost::new(100.0, 5.0)), Box::new(LinearCost::new(200.0, 0.0))];
        let cold = instantaneous_minimizer(&b).unwrap();
        let warm = instantaneous_minimizer_cached(&b, &mut cache).unwrap();
        assert!((cold.level - warm.level).abs() <= 1e-6 * cold.level.abs().max(1.0));
        cache.reset();
        assert!(cache.last_level().is_none());
    }

    #[test]
    fn plateaued_costs_are_handled() {
        let plateau = PiecewiseLinearCost::new(vec![(0.0, 0.5), (0.5, 0.5), (1.0, 4.0)]).unwrap();
        let costs: Vec<DynCost> = vec![Box::new(plateau), Box::new(LinearCost::new(1.0, 0.0))];
        let opt = instantaneous_minimizer(&costs).unwrap();
        // Worker 0 is free up to share 0.5 at cost 0.5; giving it 0.5 and
        // the rest to worker 1 costs max(0.5, 0.5) = 0.5.
        assert!((opt.level - 0.5).abs() < 1e-6, "level {}", opt.level);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::cost::LinearCost;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The oracle's level is never worse than any sampled feasible point.
        #[test]
        fn oracle_dominates_random_feasible_points(
            params in proptest::collection::vec((0.05f64..20.0, 0.0f64..2.0), 2..8),
            weights in proptest::collection::vec(0.01f64..1.0, 2..8),
        ) {
            let n = params.len().min(weights.len());
            let costs: Vec<DynCost> = params[..n]
                .iter()
                .map(|&(a, b)| Box::new(LinearCost::new(a, b)) as DynCost)
                .collect();
            let opt = instantaneous_minimizer(&costs).unwrap();
            let candidate = Allocation::from_weights(weights[..n].to_vec()).unwrap();
            let candidate_cost = costs
                .iter()
                .enumerate()
                .map(|(i, f)| f.eval(candidate.share(i)))
                .fold(f64::MIN, f64::max);
            prop_assert!(opt.level <= candidate_cost + 1e-6,
                "oracle level {} beaten by random point {}", opt.level, candidate_cost);
        }

        /// Warm-started solves agree with cold solves within the bisection
        /// tolerance across randomized drifting cost sequences, including
        /// compound (sum) costs that exercise the bracket-narrowed inverse.
        #[test]
        fn warm_start_matches_cold_solve(
            params in proptest::collection::vec((0.05f64..20.0, 0.0f64..2.0), 2..8),
            drifts in proptest::collection::vec(0.5f64..1.5, 6),
        ) {
            use crate::cost::{ReciprocalCost, SumCost};
            let mut cache = OracleCache::new();
            for (t, &d) in drifts.iter().enumerate() {
                let mut costs: Vec<DynCost> = params
                    .iter()
                    .map(|&(a, b)| Box::new(LinearCost::new(a * d, b)) as DynCost)
                    .collect();
                // One compound worker whose inverse has no closed form.
                let (a0, b0) = params[0];
                costs.push(Box::new(SumCost::new(
                    LinearCost::new(a0 * d, 0.0),
                    ReciprocalCost::new(0.0, b0 + 0.1, 1.5),
                )));
                let cold = instantaneous_minimizer(&costs).unwrap();
                let warm = instantaneous_minimizer_cached(&costs, &mut cache).unwrap();
                let scale = cold.level.abs().max(1.0);
                prop_assert!(
                    (cold.level - warm.level).abs() <= 1e-8 * scale,
                    "round {t}: cold level {} vs warm level {}", cold.level, warm.level
                );
                for i in 0..costs.len() {
                    prop_assert!(
                        (cold.allocation.share(i) - warm.allocation.share(i)).abs() <= 1e-6,
                        "round {t}, worker {i}: cold {} vs warm {}",
                        cold.allocation.share(i), warm.allocation.share(i)
                    );
                }
            }
        }
    }
}
