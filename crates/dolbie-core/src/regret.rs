//! Dynamic-regret accounting and the Theorem 1 upper bound.
//!
//! Section V measures DOLBIE by the dynamic regret
//! `Reg^d_T = Σ_t f_t(x_t) − Σ_t f_t(x*_t)` against the sequence of
//! instantaneous minimizers, with the path length
//! `P_T = Σ_{t=2}^T ||x*_{t-1} − x*_t||₂` as the regularity measure, and
//! proves
//!
//! `Reg^d_T <= sqrt( T L² ( 1/α_T + P_T/α_T + Σ_t ((N−1)/2 + N α_t)/2 ) )`.
//!
//! [`RegretTracker`] accumulates the measured quantities round by round;
//! [`theorem1_bound`] evaluates the right-hand side so experiments can
//! check the bound empirically (experiment `T1` in DESIGN.md).

use crate::allocation::Allocation;

/// Accumulates measured dynamic regret and path length over an episode.
///
/// # Examples
///
/// ```
/// use dolbie_core::regret::RegretTracker;
/// use dolbie_core::Allocation;
///
/// let mut tracker = RegretTracker::new();
/// tracker.record(1.0, 0.8, &Allocation::uniform(2));
/// tracker.record(0.9, 0.8, &Allocation::uniform(2));
/// assert!((tracker.dynamic_regret() - 0.3).abs() < 1e-12);
/// assert_eq!(tracker.path_length(), 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RegretTracker {
    cumulative_cost: f64,
    cumulative_opt: f64,
    path_length: f64,
    prev_optimum: Option<Allocation>,
    rounds: usize,
}

impl RegretTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one round: the algorithm's global cost `f_t(x_t)`, the
    /// optimal global cost `f_t(x*_t)`, and the minimizer `x*_t` (used for
    /// the path length).
    pub fn record(&mut self, algorithm_cost: f64, optimal_cost: f64, optimum: &Allocation) {
        self.cumulative_cost += algorithm_cost;
        self.cumulative_opt += optimal_cost;
        if let Some(prev) = &self.prev_optimum {
            self.path_length += prev.l2_distance(optimum);
        }
        self.prev_optimum = Some(optimum.clone());
        self.rounds += 1;
    }

    /// Rounds recorded so far (`T`).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// `Σ_t f_t(x_t)`.
    pub fn cumulative_cost(&self) -> f64 {
        self.cumulative_cost
    }

    /// `Σ_t f_t(x*_t)`.
    pub fn cumulative_optimal_cost(&self) -> f64 {
        self.cumulative_opt
    }

    /// The measured dynamic regret `Reg^d_T`.
    pub fn dynamic_regret(&self) -> f64 {
        self.cumulative_cost - self.cumulative_opt
    }

    /// The measured path length `P_T` of the minimizer sequence.
    pub fn path_length(&self) -> f64 {
        self.path_length
    }
}

/// Evaluates the Theorem 1 upper bound
/// `sqrt( T L² ( 1/α_T + P_T/α_T + Σ_t ((N−1)/2 + N α_t)/2 ) )`.
///
/// `alphas` is the sequence of step sizes the algorithm actually used
/// (available from [`Dolbie::alphas_used`]); its last element is `α_T`.
/// Returns `f64::INFINITY` when `α_T = 0` or no rounds were played, which
/// is the correct degenerate reading of the bound.
///
/// [`Dolbie::alphas_used`]: crate::Dolbie::alphas_used
pub fn theorem1_bound(num_workers: usize, lipschitz: f64, path_length: f64, alphas: &[f64]) -> f64 {
    let t = alphas.len();
    if t == 0 {
        return f64::INFINITY;
    }
    let alpha_t = alphas[t - 1];
    if alpha_t <= 0.0 {
        return f64::INFINITY;
    }
    let n = num_workers as f64;
    let series: f64 = alphas.iter().map(|a| ((n - 1.0) / 2.0 + n * a) / 2.0).sum();
    let inner = 1.0 / alpha_t + path_length / alpha_t + series;
    (t as f64 * lipschitz * lipschitz * inner).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_accumulates() {
        let mut tr = RegretTracker::new();
        let a = Allocation::new(vec![1.0, 0.0]).unwrap();
        let b = Allocation::new(vec![0.0, 1.0]).unwrap();
        tr.record(2.0, 1.0, &a);
        tr.record(3.0, 1.5, &b);
        tr.record(2.5, 1.5, &b);
        assert_eq!(tr.rounds(), 3);
        assert!((tr.cumulative_cost() - 7.5).abs() < 1e-12);
        assert!((tr.cumulative_optimal_cost() - 4.0).abs() < 1e-12);
        assert!((tr.dynamic_regret() - 3.5).abs() < 1e-12);
        // Path: a->b then b->b.
        assert!((tr.path_length() - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_is_zero() {
        let tr = RegretTracker::new();
        assert_eq!(tr.dynamic_regret(), 0.0);
        assert_eq!(tr.path_length(), 0.0);
        assert_eq!(tr.rounds(), 0);
    }

    #[test]
    fn bound_matches_hand_computation() {
        // T = 2, N = 3, L = 2, P_T = 0.5, alphas = [0.5, 0.25].
        let alphas = [0.5, 0.25];
        let series = (1.0 + 3.0 * 0.5) / 2.0 + (1.0 + 3.0 * 0.25) / 2.0;
        let inner = 1.0 / 0.25 + 0.5 / 0.25 + series;
        let expected = (2.0f64 * 4.0 * inner).sqrt();
        let got = theorem1_bound(3, 2.0, 0.5, &alphas);
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn bound_degenerate_cases() {
        assert_eq!(theorem1_bound(3, 1.0, 0.0, &[]), f64::INFINITY);
        assert_eq!(theorem1_bound(3, 1.0, 0.0, &[0.5, 0.0]), f64::INFINITY);
    }

    #[test]
    fn bound_grows_with_path_length_and_horizon() {
        let alphas = vec![0.1; 50];
        let small = theorem1_bound(5, 1.0, 0.0, &alphas);
        let large = theorem1_bound(5, 1.0, 10.0, &alphas);
        assert!(large > small);
        let longer: Vec<f64> = vec![0.1; 200];
        assert!(theorem1_bound(5, 1.0, 0.0, &longer) > small);
    }

    #[test]
    fn bound_scales_linearly_with_lipschitz() {
        let alphas = vec![0.2; 10];
        let one = theorem1_bound(4, 1.0, 1.0, &alphas);
        let three = theorem1_bound(4, 3.0, 1.0, &alphas);
        assert!((three / one - 3.0).abs() < 1e-9);
    }
}
