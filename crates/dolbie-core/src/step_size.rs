//! The risk-averse step-size schedule of eq. (7).
//!
//! DOLBIE coordinates the workers through a single scalar `α_t ∈ [0, 1]`.
//! The schedule serves two purposes (Section IV-B):
//!
//! 1. **Feasibility**: the cap `x_s / (N − 2 + x_s)` guarantees that the
//!    total workload claimed by the non-stragglers never exceeds what the
//!    straggler currently holds, so constraint (3) holds by construction —
//!    no projection is ever needed.
//! 2. **Risk aversion / convergence**: the `min` with the previous value
//!    makes the sequence non-increasing, which the dynamic-regret proof of
//!    Theorem 1 relies on (step (c)).

/// The feasibility cap `x_s / (N − 2 + x_s)` of eq. (7), where `x_s` is the
/// straggler's (updated) share.
///
/// Degenerate worker counts are handled conservatively: with `N <= 1` there
/// is nothing to rebalance and the cap is 1; with `x_s = 0` the straggler
/// has nothing left to give and the cap is 0 (also avoiding the `0/0` case
/// at `N = 2`).
///
/// # Examples
///
/// ```
/// use dolbie_core::step_size::feasibility_cap;
///
/// let cap = feasibility_cap(30, 1.0 / 30.0);
/// assert!(cap > 0.0 && cap < 1.0);
/// assert_eq!(feasibility_cap(5, 0.0), 0.0);
/// ```
pub fn feasibility_cap(num_workers: usize, straggler_share: f64) -> f64 {
    if num_workers <= 1 {
        return 1.0;
    }
    if straggler_share <= 0.0 {
        return 0.0;
    }
    let n = num_workers as f64;
    (straggler_share / (n - 2.0 + straggler_share)).min(1.0)
}

/// The paper's initialization `α_1 = min_i x_{i,1} / (N − 2 + min_i x_{i,1})`
/// (end of §IV-B.1), which is the feasibility cap evaluated at the smallest
/// initial share — valid whoever turns out to be the first straggler,
/// because `z / (N − 2 + z)` is increasing in `z`.
pub fn paper_initial_alpha(initial_shares: &crate::allocation::Allocation) -> f64 {
    feasibility_cap(initial_shares.num_workers(), initial_shares.min_share())
}

/// The non-increasing step-size state `α_t` maintained by the master
/// (Algorithm 1, line 16) or by each worker locally (`ᾱ_{i,t}`,
/// Algorithm 2, line 13).
///
/// # Examples
///
/// ```
/// use dolbie_core::step_size::StepSize;
///
/// let mut alpha = StepSize::new(0.5);
/// alpha.tighten(10, 0.2); // eq. (7) after a round with x_{s,t+1} = 0.2
/// assert!(alpha.value() <= 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepSize {
    value: f64,
}

impl StepSize {
    /// Creates a step size clamped into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite(), "step size must be finite");
        Self { value: value.clamp(0.0, 1.0) }
    }

    /// The current value `α_t`.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Applies eq. (7): `α ← min{α, x_s / (N − 2 + x_s)}` with the updated
    /// straggler share. Returns the new value.
    pub fn tighten(&mut self, num_workers: usize, straggler_share: f64) -> f64 {
        self.value = self.value.min(feasibility_cap(num_workers, straggler_share));
        self.value
    }

    /// Applies an externally derived cap: `α ← min{α, cap}`. Used at
    /// membership epoch boundaries, where the cap is re-derived against
    /// the new active member set
    /// ([`membership_alpha_cap`](crate::membership::membership_alpha_cap)).
    /// Like [`tighten`](Self::tighten), this can only decrease the value.
    /// Returns the new value.
    pub fn shrink_to(&mut self, cap: f64) -> f64 {
        self.value = self.value.min(cap.clamp(0.0, 1.0));
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Allocation;

    #[test]
    fn cap_matches_formula() {
        let cap = feasibility_cap(4, 0.5);
        assert!((cap - 0.5 / 2.5).abs() < 1e-12);
    }

    #[test]
    fn cap_degenerate_cases() {
        assert_eq!(feasibility_cap(1, 0.7), 1.0);
        assert_eq!(feasibility_cap(0, 0.7), 1.0);
        assert_eq!(feasibility_cap(2, 0.0), 0.0);
        // N = 2, x_s > 0: x/(0 + x) = 1.
        assert_eq!(feasibility_cap(2, 0.3), 1.0);
    }

    #[test]
    fn cap_is_increasing_in_share() {
        let a = feasibility_cap(10, 0.1);
        let b = feasibility_cap(10, 0.2);
        assert!(b > a);
    }

    #[test]
    fn cap_is_decreasing_in_workers() {
        let a = feasibility_cap(5, 0.3);
        let b = feasibility_cap(50, 0.3);
        assert!(b < a);
    }

    #[test]
    fn paper_initial_alpha_uses_min_share() {
        let x = Allocation::new(vec![0.1, 0.9]).unwrap();
        assert!((paper_initial_alpha(&x) - feasibility_cap(2, 0.1)).abs() < 1e-12);
        let u = Allocation::uniform(30);
        let expected = (1.0 / 30.0) / (28.0 + 1.0 / 30.0);
        assert!((paper_initial_alpha(&u) - expected).abs() < 1e-12);
    }

    #[test]
    fn step_size_is_non_increasing() {
        let mut alpha = StepSize::new(0.8);
        let mut prev = alpha.value();
        for share in [0.5, 0.9, 0.1, 0.7, 0.0, 0.3] {
            let v = alpha.tighten(10, share);
            assert!(v <= prev + 1e-15, "step size increased: {prev} -> {v}");
            prev = v;
        }
        // Once zero, stays zero.
        assert_eq!(alpha.value(), 0.0);
        assert_eq!(alpha.tighten(10, 0.9), 0.0);
    }

    #[test]
    fn new_clamps_into_unit_interval() {
        assert_eq!(StepSize::new(2.0).value(), 1.0);
        assert_eq!(StepSize::new(-0.5).value(), 0.0);
        assert_eq!(StepSize::new(0.25).value(), 0.25);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_step_size_panics() {
        let _ = StepSize::new(f64::NAN);
    }
}
