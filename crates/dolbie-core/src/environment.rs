//! Online environments that reveal cost functions round by round.
//!
//! The online protocol is adversarial: the environment may pick `f_{i,t}`
//! arbitrarily, and reveals it only after the round's decision is played.
//! [`Environment`] abstracts the source of cost functions so the same
//! experiment harness drives synthetic adversaries (this module), the
//! distributed-learning simulator (`dolbie-mlsim`), and the edge-offloading
//! scenario (`dolbie-edge`).
//!
//! The environments provided here are deterministic, which keeps the core
//! crate dependency-free; the randomized system models live in the
//! substrate crates.

use crate::cost::{DynCost, LinearCost};

/// A source of per-round cost functions.
pub trait Environment {
    /// Number of workers `N` this environment models.
    fn num_workers(&self) -> usize;

    /// Produces the round-`t` cost functions `f_{i,t}`, one per worker.
    ///
    /// Called exactly once per round, *after* the algorithms committed to
    /// their round-`t` allocation. Implementations may mutate internal
    /// state (drift, fluctuation processes).
    fn reveal(&mut self, round: usize) -> Vec<DynCost>;
}

impl<T: Environment + ?Sized> Environment for Box<T> {
    fn num_workers(&self) -> usize {
        (**self).num_workers()
    }

    fn reveal(&mut self, round: usize) -> Vec<DynCost> {
        (**self).reveal(round)
    }
}

/// An environment with time-invariant linear costs — the simplest sanity
/// setting, where the instantaneous minimizer is static and any sensible
/// online algorithm should converge.
#[derive(Debug, Clone)]
pub struct StaticLinearEnvironment {
    slopes: Vec<f64>,
    intercepts: Vec<f64>,
}

impl StaticLinearEnvironment {
    /// Creates the environment with `f_i(x) = slopes[i]·x + intercepts[i]`
    /// in every round.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty or of different lengths.
    pub fn new(slopes: Vec<f64>, intercepts: Vec<f64>) -> Self {
        assert!(!slopes.is_empty(), "at least one worker required");
        assert_eq!(slopes.len(), intercepts.len(), "one intercept per slope");
        Self { slopes, intercepts }
    }

    /// Equal intercepts of zero.
    pub fn from_slopes(slopes: Vec<f64>) -> Self {
        let n = slopes.len();
        Self::new(slopes, vec![0.0; n])
    }
}

impl Environment for StaticLinearEnvironment {
    fn num_workers(&self) -> usize {
        self.slopes.len()
    }

    fn reveal(&mut self, _round: usize) -> Vec<DynCost> {
        self.slopes
            .iter()
            .zip(&self.intercepts)
            .map(|(&a, &b)| Box::new(LinearCost::new(a, b)) as DynCost)
            .collect()
    }
}

/// A deterministic non-stationary adversary: the "slow" worker rotates
/// every `period` rounds, forcing a non-trivial path length `P_T` and
/// penalizing algorithms that over-commit to past observations.
#[derive(Debug, Clone)]
pub struct RotatingStragglerEnvironment {
    num_workers: usize,
    period: usize,
    slow_slope: f64,
    fast_slope: f64,
}

impl RotatingStragglerEnvironment {
    /// Creates the environment: in rounds `[k·period, (k+1)·period)` worker
    /// `k mod N` has slope `slow_slope`, everyone else `fast_slope`.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers == 0`, `period == 0`, or the slopes are not
    /// positive with `slow_slope >= fast_slope`.
    pub fn new(num_workers: usize, period: usize, slow_slope: f64, fast_slope: f64) -> Self {
        assert!(num_workers > 0, "at least one worker required");
        assert!(period > 0, "period must be positive");
        assert!(fast_slope > 0.0 && slow_slope >= fast_slope, "need slow >= fast > 0");
        Self { num_workers, period, slow_slope, fast_slope }
    }

    /// The worker that is slow in `round`.
    pub fn slow_worker(&self, round: usize) -> usize {
        (round / self.period) % self.num_workers
    }
}

impl Environment for RotatingStragglerEnvironment {
    fn num_workers(&self) -> usize {
        self.num_workers
    }

    fn reveal(&mut self, round: usize) -> Vec<DynCost> {
        let slow = self.slow_worker(round);
        (0..self.num_workers)
            .map(|i| {
                let slope = if i == slow { self.slow_slope } else { self.fast_slope };
                Box::new(LinearCost::new(slope, 0.0)) as DynCost
            })
            .collect()
    }
}

/// A piecewise-stationary adversary: the system jumps between fixed
/// "regimes" (slope vectors) at configured shift rounds — the abrupt-change
/// counterpart to [`RotatingStragglerEnvironment`]'s periodic churn.
/// Abrupt shifts are the worst case for window-based policies (ABS's `P`,
/// LB-BSP's `D`) and a stress test for DOLBIE's diminishing step size.
#[derive(Debug, Clone)]
pub struct PiecewiseStationaryEnvironment {
    regimes: Vec<Vec<f64>>,
    shift_every: usize,
}

impl PiecewiseStationaryEnvironment {
    /// Creates the environment: regime `k` (cycling) is active during
    /// rounds `[k·shift_every, (k+1)·shift_every)`.
    ///
    /// # Panics
    ///
    /// Panics if no regimes are given, regimes have mismatched lengths, a
    /// slope is not positive, or `shift_every == 0`.
    pub fn new(regimes: Vec<Vec<f64>>, shift_every: usize) -> Self {
        assert!(!regimes.is_empty(), "at least one regime required");
        assert!(shift_every > 0, "shift period must be positive");
        let n = regimes[0].len();
        assert!(n > 0, "regimes must cover at least one worker");
        for (k, r) in regimes.iter().enumerate() {
            assert_eq!(r.len(), n, "regime {k} has a different worker count");
            assert!(r.iter().all(|&a| a > 0.0 && a.is_finite()), "regime {k} has bad slopes");
        }
        Self { regimes, shift_every }
    }

    /// The regime index active in `round`.
    pub fn regime(&self, round: usize) -> usize {
        (round / self.shift_every) % self.regimes.len()
    }
}

impl Environment for PiecewiseStationaryEnvironment {
    fn num_workers(&self) -> usize {
        self.regimes[0].len()
    }

    fn reveal(&mut self, round: usize) -> Vec<DynCost> {
        self.regimes[self.regime(round)]
            .iter()
            .map(|&a| Box::new(LinearCost::new(a, 0.0)) as DynCost)
            .collect()
    }
}

/// A smoothly drifting adversary: each worker's slope follows its own
/// sinusoid, `a_i(t) = base_i · (1 + amplitude · sin(2π t / period + φ_i))`
/// with phases spread around the circle — continuous, deterministic
/// non-stationarity with tunable path length.
#[derive(Debug, Clone)]
pub struct SinusoidalDriftEnvironment {
    base_slopes: Vec<f64>,
    amplitude: f64,
    period: f64,
}

impl SinusoidalDriftEnvironment {
    /// Creates the environment.
    ///
    /// # Panics
    ///
    /// Panics if `base_slopes` is empty or non-positive, `amplitude` is
    /// outside `[0, 1)` (slopes must stay positive), or `period <= 0`.
    pub fn new(base_slopes: Vec<f64>, amplitude: f64, period: f64) -> Self {
        assert!(!base_slopes.is_empty(), "at least one worker required");
        assert!(
            base_slopes.iter().all(|&a| a > 0.0 && a.is_finite()),
            "base slopes must be positive"
        );
        assert!((0.0..1.0).contains(&amplitude), "amplitude must be in [0, 1)");
        assert!(period > 0.0 && period.is_finite(), "period must be positive");
        Self { base_slopes, amplitude, period }
    }

    /// The slope of worker `i` in `round`.
    pub fn slope(&self, i: usize, round: usize) -> f64 {
        let n = self.base_slopes.len() as f64;
        let phase = 2.0 * std::f64::consts::PI * i as f64 / n;
        let angle = 2.0 * std::f64::consts::PI * round as f64 / self.period + phase;
        self.base_slopes[i] * (1.0 + self.amplitude * angle.sin())
    }
}

impl Environment for SinusoidalDriftEnvironment {
    fn num_workers(&self) -> usize {
        self.base_slopes.len()
    }

    fn reveal(&mut self, round: usize) -> Vec<DynCost> {
        (0..self.base_slopes.len())
            .map(|i| Box::new(LinearCost::new(self.slope(i, round), 0.0)) as DynCost)
            .collect()
    }
}

/// An environment defined by a closure — the escape hatch for bespoke
/// adversaries in tests and experiments.
pub struct FnEnvironment<F> {
    num_workers: usize,
    generator: F,
}

impl<F> FnEnvironment<F>
where
    F: FnMut(usize) -> Vec<DynCost>,
{
    /// Creates an environment that calls `generator(round)` each round.
    /// The generator must return exactly `num_workers` cost functions.
    pub fn new(num_workers: usize, generator: F) -> Self {
        Self { num_workers, generator }
    }
}

impl<F> std::fmt::Debug for FnEnvironment<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnEnvironment").field("num_workers", &self.num_workers).finish()
    }
}

impl<F> Environment for FnEnvironment<F>
where
    F: FnMut(usize) -> Vec<DynCost>,
{
    fn num_workers(&self) -> usize {
        self.num_workers
    }

    fn reveal(&mut self, round: usize) -> Vec<DynCost> {
        let costs = (self.generator)(round);
        assert_eq!(costs.len(), self.num_workers, "generator must cover every worker");
        costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostFunction;

    #[test]
    fn static_environment_is_constant() {
        let mut env = StaticLinearEnvironment::from_slopes(vec![1.0, 2.0]);
        assert_eq!(env.num_workers(), 2);
        let a = env.reveal(0);
        let b = env.reveal(7);
        assert_eq!(a[1].eval(0.5), b[1].eval(0.5));
        assert_eq!(a[1].eval(0.5), 1.0);
    }

    #[test]
    fn static_environment_with_intercepts() {
        let mut env = StaticLinearEnvironment::new(vec![1.0], vec![0.5]);
        assert_eq!(env.reveal(0)[0].eval(0.0), 0.5);
    }

    #[test]
    fn rotating_straggler_rotates() {
        let mut env = RotatingStragglerEnvironment::new(3, 10, 5.0, 1.0);
        assert_eq!(env.slow_worker(0), 0);
        assert_eq!(env.slow_worker(9), 0);
        assert_eq!(env.slow_worker(10), 1);
        assert_eq!(env.slow_worker(29), 2);
        assert_eq!(env.slow_worker(30), 0);
        let costs = env.reveal(10);
        assert_eq!(costs[1].eval(1.0), 5.0);
        assert_eq!(costs[0].eval(1.0), 1.0);
    }

    #[test]
    fn piecewise_stationary_shifts_regimes() {
        let mut env = PiecewiseStationaryEnvironment::new(vec![vec![5.0, 1.0], vec![1.0, 5.0]], 10);
        assert_eq!(env.num_workers(), 2);
        assert_eq!(env.regime(0), 0);
        assert_eq!(env.regime(9), 0);
        assert_eq!(env.regime(10), 1);
        assert_eq!(env.regime(20), 0, "regimes cycle");
        assert_eq!(env.reveal(0)[0].eval(1.0), 5.0);
        assert_eq!(env.reveal(10)[0].eval(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "different worker count")]
    fn piecewise_stationary_rejects_ragged_regimes() {
        let _ = PiecewiseStationaryEnvironment::new(vec![vec![1.0], vec![1.0, 2.0]], 5);
    }

    #[test]
    fn sinusoidal_drift_is_smooth_and_positive() {
        let mut env = SinusoidalDriftEnvironment::new(vec![2.0, 4.0, 1.0], 0.5, 40.0);
        assert_eq!(env.num_workers(), 3);
        let mut max_jump: f64 = 0.0;
        let mut prev: Vec<f64> = env.reveal(0).iter().map(|f| f.eval(1.0)).collect();
        for t in 1..120 {
            let cur: Vec<f64> = env.reveal(t).iter().map(|f| f.eval(1.0)).collect();
            for (a, b) in prev.iter().zip(&cur) {
                assert!(*b > 0.0, "slopes stay positive");
                max_jump = max_jump.max((a - b).abs());
            }
            prev = cur;
        }
        // Smooth drift: per-round jumps are bounded by amplitude * 2π/period.
        assert!(max_jump < 2.0 * 0.5 * 4.0 * std::f64::consts::PI / 40.0 + 1e-9);
        // Phases differ: workers don't move in lockstep.
        assert_ne!(env.slope(0, 5), env.slope(1, 5));
    }

    #[test]
    fn fn_environment_delegates() {
        let mut env = FnEnvironment::new(2, |round| {
            vec![
                Box::new(LinearCost::new(1.0 + round as f64, 0.0)) as DynCost,
                Box::new(LinearCost::new(1.0, 0.0)) as DynCost,
            ]
        });
        assert_eq!(env.num_workers(), 2);
        assert_eq!(env.reveal(3)[0].eval(1.0), 4.0);
        assert!(format!("{env:?}").contains("FnEnvironment"));
    }

    #[test]
    fn boxed_environment_is_an_environment() {
        let mut env: Box<dyn Environment> =
            Box::new(StaticLinearEnvironment::from_slopes(vec![2.0]));
        assert_eq!(env.num_workers(), 1);
        assert_eq!(env.reveal(0).len(), 1);
    }

    #[test]
    #[should_panic(expected = "cover every worker")]
    fn fn_environment_validates_arity() {
        let mut env = FnEnvironment::new(3, |_| vec![]);
        let _ = env.reveal(0);
    }
}
