//! DOLBIE under delayed feedback (extension).
//!
//! The paper's protocol applies each round's observation immediately. In
//! practice, cost telemetry often arrives late — the scalars of round `t`
//! may only reach the decision maker at round `t + d` (monitoring
//! pipelines, batched reporting, cross-datacenter aggregation).
//! [`DelayedDolbie`] models that: each observation is converted into a
//! zero-sum *update vector* exactly as DOLBIE would apply it, queued, and
//! applied `d` rounds later, scaled back if the straggler's share has
//! meanwhile shrunk below what the stale update assumed (so feasibility
//! never breaks).
//!
//! With `d = 0` the trajectory is identical to [`Dolbie`](crate::Dolbie)
//! (tested); with moderate delays the algorithm still converges on
//! slowly varying systems, degrading gracefully as `d` grows — the classic
//! delayed-online-learning picture.

use crate::allocation::Allocation;
use crate::balancer::LoadBalancer;
use crate::observation::Observation;
use crate::step_size::StepSize;
use crate::DolbieConfig;
use std::collections::VecDeque;

/// DOLBIE with a fixed feedback delay of `d` rounds.
///
/// # Examples
///
/// ```
/// use dolbie_core::delayed::DelayedDolbie;
/// use dolbie_core::LoadBalancer;
///
/// let balancer = DelayedDolbie::new(4, 2); // observations apply 2 rounds late
/// assert_eq!(balancer.allocation().num_workers(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DelayedDolbie {
    x: Allocation,
    alpha: StepSize,
    delay: usize,
    pending: VecDeque<PendingUpdate>,
    config: DolbieConfig,
}

#[derive(Debug, Clone)]
struct PendingUpdate {
    /// Zero-sum per-worker share deltas (positive for assisting workers,
    /// one negative entry at the then-straggler).
    deltas: Vec<f64>,
    /// The straggler the update shrinks, for the eq. (7) tightening.
    straggler: usize,
}

impl DelayedDolbie {
    /// Creates the delayed variant over `n` workers with the default
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, delay: usize) -> Self {
        Self::with_config(Allocation::uniform(n), delay, DolbieConfig::new())
    }

    /// Creates the delayed variant from an arbitrary feasible start.
    pub fn with_config(initial: Allocation, delay: usize, config: DolbieConfig) -> Self {
        let alpha = StepSize::new(config.resolve_initial_alpha(&initial));
        Self { x: initial, alpha, delay, pending: VecDeque::new(), config }
    }

    /// The configured feedback delay `d`.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// The current step size.
    pub fn alpha(&self) -> f64 {
        self.alpha.value().max(self.config.alpha_floor)
    }

    /// Applies a (possibly stale) zero-sum update, scaling it down if it
    /// would drive any share negative.
    fn apply(&mut self, update: PendingUpdate) {
        let n = self.x.num_workers();
        // Largest fraction of the update that keeps every share >= 0.
        let mut scale = 1.0f64;
        for (i, &d) in update.deltas.iter().enumerate() {
            if d < 0.0 {
                scale = scale.min(self.x.share(i) / -d);
            }
        }
        if scale <= 0.0 {
            return;
        }
        let next: Vec<f64> =
            self.x.iter().zip(&update.deltas).map(|(&x, &d)| (x + scale * d).max(0.0)).collect();
        self.x = Allocation::from_update(next).expect("scaled zero-sum update stays feasible");
        self.alpha.tighten(n, self.x.share(update.straggler));
    }
}

impl LoadBalancer for DelayedDolbie {
    fn name(&self) -> &str {
        "DOLBIE-delayed"
    }

    fn allocation(&self) -> &Allocation {
        &self.x
    }

    fn observe(&mut self, observation: &Observation<'_>) {
        let n = observation.num_workers();
        assert_eq!(n, self.x.num_workers(), "observation covers a different worker set");
        if n == 1 {
            return;
        }
        // Convert the fresh observation into the update DOLBIE would have
        // applied now (eq. (5)-(6) deltas against the *observed* shares).
        let s = observation.straggler();
        let alpha = self.alpha();
        let mut deltas = vec![0.0; n];
        let mut total = 0.0;
        for (i, delta) in deltas.iter_mut().enumerate() {
            if i == s {
                continue;
            }
            let current = observation.shares().share(i);
            let target = observation.max_acceptable_share(i);
            let gain = (alpha * (target - current)).max(0.0);
            *delta = gain;
            total += gain;
        }
        deltas[s] = -total;
        self.pending.push_back(PendingUpdate { deltas, straggler: s });

        // Apply the update that has aged past the delay, if any.
        if self.pending.len() > self.delay {
            let update = self.pending.pop_front().expect("queue non-empty");
            self.apply(update);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{DynCost, LinearCost};
    use crate::Dolbie;

    fn linear_costs(slopes: &[f64]) -> Vec<DynCost> {
        slopes.iter().map(|&a| Box::new(LinearCost::new(a, 0.0)) as DynCost).collect()
    }

    fn step(b: &mut dyn LoadBalancer, costs: &[DynCost], t: usize) -> f64 {
        let played = b.allocation().clone();
        let obs = Observation::from_costs(t, &played, costs);
        let g = obs.global_cost();
        b.observe(&obs);
        g
    }

    #[test]
    fn zero_delay_matches_plain_dolbie() {
        let costs = linear_costs(&[5.0, 1.0, 2.0]);
        let mut delayed = DelayedDolbie::new(3, 0);
        let mut plain = Dolbie::new(3);
        for t in 0..60 {
            step(&mut delayed, &costs, t);
            step(&mut plain, &costs, t);
            assert!(
                delayed.allocation().l2_distance(plain.allocation()) < 1e-12,
                "round {t}: {} vs {}",
                delayed.allocation(),
                plain.allocation()
            );
        }
    }

    #[test]
    fn warmup_rounds_do_not_move() {
        let costs = linear_costs(&[4.0, 1.0]);
        let mut delayed = DelayedDolbie::new(2, 3);
        for t in 0..3 {
            step(&mut delayed, &costs, t);
            assert_eq!(delayed.allocation(), &Allocation::uniform(2), "round {t}");
        }
        step(&mut delayed, &costs, 3);
        assert_ne!(delayed.allocation(), &Allocation::uniform(2));
        assert_eq!(delayed.delay(), 3);
    }

    #[test]
    fn converges_on_static_costs_despite_delay() {
        let costs = linear_costs(&[6.0, 1.0, 2.0, 1.5]);
        let mut delayed = DelayedDolbie::new(4, 3);
        let first = step(&mut delayed, &costs, 0);
        let mut last = first;
        for t in 1..400 {
            last = step(&mut delayed, &costs, t);
        }
        let opt = crate::instantaneous_minimizer(&costs).unwrap().level;
        // Staleness slows convergence but must not stall it: well below the
        // starting point, and within ~1.6x of the optimum by round 400.
        assert!(last < first * 0.5, "no real progress: {first} -> {last}");
        assert!(last < opt * 1.6, "delayed DOLBIE drifted too far: {last} vs {opt}");
        // And the plain engine with the same horizon does strictly better.
        let mut plain = Dolbie::new(4);
        let mut plain_last = 0.0;
        for t in 0..400 {
            plain_last = step(&mut plain, &costs, t);
        }
        assert!(plain_last <= last + 1e-9, "delay cannot help: {plain_last} vs {last}");
    }

    #[test]
    fn longer_delay_is_never_catastrophic_and_stays_feasible() {
        for delay in [1usize, 5, 10] {
            let mut delayed = DelayedDolbie::new(5, delay);
            for t in 0..120 {
                // Slowly drifting slopes.
                let costs: Vec<DynCost> = (0..5)
                    .map(|i| {
                        let slope = 1.0 + ((t as f64 / 29.0) + i as f64).sin().abs() * 4.0;
                        Box::new(LinearCost::new(slope, 0.0)) as DynCost
                    })
                    .collect();
                step(&mut delayed, &costs, t);
                let sum: f64 = delayed.allocation().iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "delay {delay} round {t}");
                assert!(delayed.allocation().iter().all(|&v| v >= 0.0), "delay {delay} round {t}");
            }
        }
    }

    #[test]
    fn stale_update_is_scaled_not_rejected() {
        // Force staleness to matter: the straggler identified at t=0 has
        // lost most of its share by the time the update lands.
        let mut delayed = DelayedDolbie::with_config(
            Allocation::new(vec![0.2, 0.4, 0.4]).unwrap(),
            2,
            DolbieConfig::new().with_initial_alpha(0.9).with_alpha_floor(0.9),
        );
        let heavy_then_light = |t: usize| -> Vec<DynCost> {
            if t == 0 {
                linear_costs(&[50.0, 1.0, 1.0])
            } else {
                linear_costs(&[0.1, 1.0, 1.0])
            }
        };
        for t in 0..6 {
            let costs = heavy_then_light(t);
            step(&mut delayed, &costs, t);
            assert!(delayed.allocation().iter().all(|&v| v >= 0.0), "round {t}");
        }
    }

    #[test]
    fn name_distinguishes_the_variant() {
        assert_eq!(DelayedDolbie::new(2, 1).name(), "DOLBIE-delayed");
        assert!(DelayedDolbie::new(2, 1).alpha() > 0.0);
    }
}
