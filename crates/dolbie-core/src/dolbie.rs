//! The DOLBIE algorithm (Algorithms 1–2 of the paper).
//!
//! Both the master-worker and the fully-distributed architectures compute
//! the *same* sequence of decisions; they differ only in who exchanges
//! which scalar with whom. This module implements that shared decision
//! logic as a [`LoadBalancer`]; the `dolbie-simnet` crate runs it as the
//! two actual message-passing protocols and verifies trajectory
//! equivalence against this sequential engine.
//!
//! Per round, given the revealed costs:
//!
//! 1. identify the straggler `s_t` (max local cost, lowest index on ties);
//! 2. each non-straggler moves a step `α_t` toward its maximum acceptable
//!    workload `x'_{i,t}` (eq. (5)) — the **risk-averse assistance**;
//! 3. the straggler absorbs the remainder (eq. (6)), preserving
//!    `Σ_i x_i = 1` by construction;
//! 4. the step size tightens per eq. (7), preserving `x_i >= 0` in all
//!    future rounds with no projection.
//!
//! The update is gradient-free and projection-free: the only per-worker
//! work is one monotone inverse (closed-form for the latency model of
//! §VI-A, bisection otherwise).
//!
//! The per-round arithmetic itself lives in [`engine`](crate::engine) as a
//! structure-of-arrays implementation shared with the chunked large-N
//! balancer [`ChunkedDolbie`](crate::ChunkedDolbie); this module keeps the
//! user-facing configuration and the sequential wrapper.

use crate::allocation::Allocation;
use crate::balancer::LoadBalancer;
use crate::engine::SoaEngine;
use crate::observation::Observation;
use crate::step_size::paper_initial_alpha;

/// How to choose the initial step size `α_1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitialAlpha {
    /// The paper's formula `α_1 = min_i x_{i,1} / (N − 2 + min_i x_{i,1})`
    /// (end of §IV-B.1).
    ///
    /// Note this sits *exactly* on the eq. (7) feasibility boundary: on a
    /// strongly heterogeneous first round (every non-straggler's `x' = 1`)
    /// the first step drains the straggler to a share of exactly zero,
    /// after which eq. (7) pins `α` to zero and DOLBIE freezes. The paper
    /// states the initialization as an upper bound (`α_1 ≤ ...` is valid);
    /// [`InitialAlpha::CapFraction`] backs off from the boundary.
    PaperFormula,
    /// A fraction of the paper's cap (the default uses `0.5`): safely
    /// inside the eq. (7) boundary, so a maximal first step halves `α`
    /// instead of zeroing it.
    CapFraction(f64),
    /// A fixed value in `[0, 1]`; the paper's experiments use `0.001`.
    Fixed(f64),
}

/// Configuration for [`Dolbie`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DolbieConfig {
    /// Initial step size selection. Defaults to [`InitialAlpha::PaperFormula`].
    pub initial_alpha: InitialAlpha,
    /// Optional lower bound on `α_t` (an *extension*, default `0.0` = off).
    ///
    /// The paper's schedule is non-increasing and can approach zero, after
    /// which DOLBIE stops adapting; a small floor keeps it responsive in
    /// highly non-stationary environments at the cost of the Theorem 1
    /// guarantee (which needs `α_t` non-increasing). The feasibility guard
    /// below keeps the iterates feasible even with a floor.
    pub alpha_floor: f64,
}

impl DolbieConfig {
    /// The default configuration: the eq. (7) schedule with `α_1` at half
    /// the paper's cap (see [`InitialAlpha::CapFraction`]).
    pub fn new() -> Self {
        Self { initial_alpha: InitialAlpha::CapFraction(0.5), alpha_floor: 0.0 }
    }

    /// The literal paper initialization `α_1 = min_i x_{i,1}/(N−2+min_i x_{i,1})`.
    pub fn paper_initial() -> Self {
        Self { initial_alpha: InitialAlpha::PaperFormula, alpha_floor: 0.0 }
    }

    /// Sets a fixed initial step size (the experiments in §VI use `0.001`).
    pub fn with_initial_alpha(mut self, alpha: f64) -> Self {
        self.initial_alpha = InitialAlpha::Fixed(alpha);
        self
    }

    /// Sets the step-size floor extension.
    pub fn with_alpha_floor(mut self, floor: f64) -> Self {
        self.alpha_floor = floor.clamp(0.0, 1.0);
        self
    }

    /// Resolves the configured `α_1` for a given initial partition — the
    /// single source of truth shared by the sequential engine and the
    /// protocol implementations in `dolbie-simnet`.
    pub fn resolve_initial_alpha(&self, initial: &Allocation) -> f64 {
        match self.initial_alpha {
            InitialAlpha::PaperFormula => paper_initial_alpha(initial),
            InitialAlpha::CapFraction(f) => paper_initial_alpha(initial) * f.clamp(0.0, 1.0),
            InitialAlpha::Fixed(a) => a.clamp(0.0, 1.0),
        }
    }
}

impl Default for DolbieConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of a round driven by worker-reported gains
/// ([`Dolbie::observe_reported`]): what the master must send back to close
/// the round on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportedRound {
    /// The straggler's pinned new share (eq. (6)) — the payload of the
    /// Algorithm 1 line 15 assignment message.
    pub straggler_share: f64,
    /// `Some(scale)` iff the floating-point / alpha-floor feasibility
    /// guard rescaled the round's gains; non-stragglers must then replay
    /// `x_i ← x_i + gain_i · scale` instead of `x_i ← x_i + gain_i` to
    /// stay in lockstep with the master. `None` in exact arithmetic (the
    /// paper's eq. (7) guarantee) and in every fault-free default-config
    /// run.
    pub rescale: Option<f64>,
}

/// Counters exposed for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DolbieStats {
    /// Rounds observed so far.
    pub rounds: usize,
    /// Times the floating-point feasibility guard rescaled a step. In exact
    /// arithmetic this is always zero (the paper proves eq. (7) suffices);
    /// it exists to absorb rounding and the `alpha_floor` extension.
    pub guard_activations: usize,
}

/// The DOLBIE load balancer.
///
/// # Examples
///
/// ```
/// use dolbie_core::{Allocation, Dolbie, LoadBalancer, Observation};
/// use dolbie_core::cost::{DynCost, LinearCost};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dolbie = Dolbie::new(3);
/// // Worker 0 is 4x slower: it straggles under the uniform split.
/// let costs: Vec<DynCost> = vec![
///     Box::new(LinearCost::new(4.0, 0.0)),
///     Box::new(LinearCost::new(1.0, 0.0)),
///     Box::new(LinearCost::new(1.0, 0.0)),
/// ];
/// let played = dolbie.allocation().clone();
/// let obs = Observation::from_costs(0, &played, &costs);
/// dolbie.observe(&obs);
/// // The straggler sheds load; the helpers take it up.
/// assert!(dolbie.allocation().share(0) < 1.0 / 3.0);
/// assert!(dolbie.allocation().share(1) > 1.0 / 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dolbie {
    engine: SoaEngine,
}

impl Dolbie {
    /// Creates DOLBIE over `n` workers with the uniform initial split and
    /// the paper's initial step size.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::with_config(Allocation::uniform(n), DolbieConfig::new())
    }

    /// Creates DOLBIE from an arbitrary feasible initial partition and a
    /// configuration.
    pub fn with_config(initial: Allocation, config: DolbieConfig) -> Self {
        Self { engine: SoaEngine::new(initial, config) }
    }

    /// Adds per-worker share caps `x_i <= caps[i]` (a capacity-constraint
    /// extension; the paper's problem has `caps = 1`). Non-stragglers then
    /// target `min(x'_{i,t}, caps[i])`; the straggler's share only ever
    /// decreases, so the caps hold for the whole run. The matching
    /// clairvoyant comparator is
    /// [`instantaneous_minimizer_capped`](crate::oracle::instantaneous_minimizer_capped).
    ///
    /// # Panics
    ///
    /// Panics if the cap vector has the wrong length, leaves the initial
    /// allocation infeasible, contains values outside `[0, 1]`, or cannot
    /// cover the workload (`Σ caps < 1`).
    pub fn with_share_caps(mut self, caps: Vec<f64>) -> Self {
        self.engine.set_share_caps(caps);
        self
    }

    /// The current step size `α_t`.
    pub fn alpha(&self) -> f64 {
        self.engine.alpha()
    }

    /// Canonical fingerprint of the engine state the model checker hashes
    /// for visited-state pruning: shares (bitwise), the current `α`, and
    /// the membership mask. Two engines fingerprint equal only if every
    /// share and the step size are *bitwise* equal under the same mask —
    /// the same contract as the repo's trajectory-parity tests.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = crate::fingerprint::StateFp::new(0xD01B_F1A9);
        fp.push_f64_slice(self.engine.x.as_slice());
        fp.push_f64(self.engine.alpha());
        fp.push_bool_slice(&self.engine.active);
        fp.finish()
    }

    /// Crosses a membership epoch boundary: departing workers' shares are
    /// redistributed proportionally over the continuing members
    /// ([`renormalize_onto_members`](crate::membership::renormalize_onto_members)),
    /// joiners enter at share exactly `0.0` (the eq. (5)/(6) update grows
    /// them), and `α` shrinks to the eq. (7) cap re-derived against the
    /// new member count
    /// ([`membership_alpha_cap`](crate::membership::membership_alpha_cap)),
    /// so it never increases. Subsequent rounds must be observed through
    /// [`Observation::from_costs_masked`] with the same member mask so
    /// that non-members are excluded from the straggler argmax.
    ///
    /// # Panics
    ///
    /// Panics if `members.len()` differs from the worker count, no worker
    /// remains a member, or share caps are installed (caps describe a
    /// fixed fleet; combining them with churn is unsupported).
    pub fn apply_membership(&mut self, members: &[bool]) {
        self.engine.apply_membership(members);
    }

    /// One DOLBIE round driven by worker-reported eq. (5) gains instead of
    /// locally evaluated cost functions — the master-side bookkeeping of a
    /// distributed (wire-protocol) run of Algorithm 1, where each worker
    /// computes its own gain from the broadcast `(l_t, α_t)` scalars and
    /// reports it back.
    ///
    /// The arithmetic is shared with [`observe`](LoadBalancer::observe):
    /// provided each reported gain equals
    /// `(α_t · (x'_{i,t} − x_{i,t})).max(0.0)` computed at the same shares,
    /// the resulting state — shares, Σx bookkeeping, α schedule, stats —
    /// is **bitwise identical** to a locally observed round. This is what
    /// licenses the `dolbie-net` TCP runtime's trajectory-parity claim.
    ///
    /// Gains at the straggler's index and at non-members are forced to
    /// exactly `0.0`. Returns the pinned straggler share (the line 15
    /// assignment) and, in the rare guard case, the rescale factor the
    /// non-stragglers must replay.
    ///
    /// # Panics
    ///
    /// Panics if `gains.len()` differs from the worker count, `straggler`
    /// is out of range, or the straggler is not an active member.
    ///
    /// # Examples
    ///
    /// ```
    /// use dolbie_core::cost::{DynCost, LinearCost};
    /// use dolbie_core::observation::max_acceptable_share;
    /// use dolbie_core::{Dolbie, LoadBalancer, Observation};
    ///
    /// let costs: Vec<DynCost> = vec![
    ///     Box::new(LinearCost::new(4.0, 0.0)),
    ///     Box::new(LinearCost::new(1.0, 0.0)),
    ///     Box::new(LinearCost::new(2.0, 0.0)),
    /// ];
    /// let mut local = Dolbie::new(3); // evaluates the costs itself
    /// let mut master = Dolbie::new(3); // sees only reported scalars
    /// for round in 0..20 {
    ///     let played = local.allocation().clone();
    ///     let obs = Observation::from_costs(round, &played, &costs);
    ///     let (s, l, alpha) = (obs.straggler(), obs.global_cost(), master.alpha());
    ///     // Each "worker" computes its own gain from the broadcast scalars.
    ///     let gains: Vec<f64> = (0..3)
    ///         .map(|i| {
    ///             if i == s {
    ///                 return 0.0;
    ///             }
    ///             let x = master.allocation().share(i);
    ///             let target = max_acceptable_share(&*costs[i], x, l);
    ///             (alpha * (target - x)).max(0.0)
    ///         })
    ///         .collect();
    ///     local.observe(&obs);
    ///     master.observe_reported(s, &gains);
    /// }
    /// for i in 0..3 {
    ///     assert_eq!(
    ///         local.allocation().share(i).to_bits(),
    ///         master.allocation().share(i).to_bits(),
    ///     );
    /// }
    /// ```
    pub fn observe_reported(&mut self, straggler: usize, gains: &[f64]) -> ReportedRound {
        self.engine.apply_reported(straggler, gains)
    }

    /// The step sizes actually applied in each observed round — the
    /// sequence `{α_t}` appearing in the Theorem 1 bound.
    pub fn alphas_used(&self) -> &[f64] {
        self.engine.alphas_used()
    }

    /// Update counters.
    pub fn stats(&self) -> DolbieStats {
        self.engine.stats()
    }
}

impl LoadBalancer for Dolbie {
    fn name(&self) -> &str {
        "DOLBIE"
    }

    fn allocation(&self) -> &Allocation {
        self.engine.allocation()
    }

    fn observe(&mut self, observation: &Observation<'_>) {
        self.engine.observe_round(observation, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{DynCost, ExponentialCost, LatencyCost, LinearCost, PowerCost};

    fn linear_costs(slopes: &[f64]) -> Vec<DynCost> {
        slopes.iter().map(|&s| Box::new(LinearCost::new(s, 0.0)) as DynCost).collect()
    }

    fn step(balancer: &mut Dolbie, costs: &[DynCost], round: usize) -> f64 {
        let played = balancer.allocation().clone();
        let obs = Observation::from_costs(round, &played, costs);
        let global = obs.global_cost();
        balancer.observe(&obs);
        global
    }

    #[test]
    fn converges_toward_balanced_costs_on_static_linear() {
        let mut d = Dolbie::new(3);
        let costs = linear_costs(&[4.0, 1.0, 2.0]);
        let mut last = f64::INFINITY;
        for t in 0..200 {
            let g = step(&mut d, &costs, t);
            assert!(g <= last + 1e-9, "global cost must not increase on a static instance");
            last = g;
        }
        // Optimum: x_i ∝ 1/slope_i -> l* = 1 / (1/4 + 1 + 1/2) = 4/7.
        let opt = 4.0 / 7.0;
        assert!(
            last < opt * 1.25,
            "after 200 rounds DOLBIE should be near the optimum: {last} vs {opt}"
        );
    }

    #[test]
    fn feasibility_invariants_hold_every_round() {
        let mut d = Dolbie::new(5);
        let costs = linear_costs(&[10.0, 1.0, 2.0, 3.0, 0.5]);
        for t in 0..500 {
            step(&mut d, &costs, t);
            let x = d.allocation();
            let sum: f64 = x.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "round {t}: sum {sum}");
            for i in 0..5 {
                assert!(x.share(i) >= 0.0, "round {t}: negative share on worker {i}");
            }
        }
        assert_eq!(d.stats().rounds, 500);
        assert_eq!(d.stats().guard_activations, 0, "guard must stay idle per eq. (7)");
    }

    #[test]
    fn alpha_sequence_is_non_increasing() {
        let mut d = Dolbie::new(4);
        let costs = linear_costs(&[5.0, 1.0, 1.0, 1.0]);
        for t in 0..100 {
            step(&mut d, &costs, t);
        }
        let alphas = d.alphas_used();
        assert_eq!(alphas.len(), 100);
        for w in alphas.windows(2) {
            assert!(w[1] <= w[0] + 1e-15);
        }
    }

    #[test]
    fn non_stragglers_never_lose_work_stragglers_never_gain() {
        let mut d = Dolbie::new(4);
        let costs = linear_costs(&[1.0, 7.0, 2.0, 3.0]);
        for t in 0..50 {
            let before = d.allocation().clone();
            let obs = Observation::from_costs(t, &before, &costs);
            let s = obs.straggler();
            d.observe(&obs);
            let after = d.allocation();
            for i in 0..4 {
                if i == s {
                    assert!(after.share(i) <= before.share(i) + 1e-12);
                } else {
                    assert!(after.share(i) + 1e-12 >= before.share(i));
                }
            }
        }
    }

    #[test]
    fn handles_nonlinear_costs() {
        let costs: Vec<DynCost> = vec![
            Box::new(PowerCost::new(6.0, 2.0, 0.1)),
            Box::new(ExponentialCost::new(0.5, 2.0, 0.05)),
            Box::new(LinearCost::new(1.5, 0.2)),
        ];
        let mut d = Dolbie::new(3);
        let first = step(&mut d, &costs, 0);
        let mut last = first;
        for t in 1..300 {
            last = step(&mut d, &costs, t);
        }
        assert!(last < first, "DOLBIE should improve on non-linear costs: {first} -> {last}");
        // At convergence the costs should be roughly equalized.
        let x = d.allocation();
        let vals: Vec<f64> = (0..3).map(|i| costs[i].eval(x.share(i))).collect();
        let spread = vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.25 * last, "cost spread {spread} too wide vs level {last}");
    }

    #[test]
    fn latency_model_matches_section_6a_closed_form() {
        // With the latency cost, x' = min(1, (l − f^C)γ/B): check that one
        // DOLBIE round reproduces a hand-computed update.
        let b = 256.0;
        let costs: Vec<DynCost> = vec![
            Box::new(LatencyCost::new(b, 64.0, 0.1)),  // slow
            Box::new(LatencyCost::new(b, 512.0, 0.1)), // fast
        ];
        let alpha = 0.5;
        let mut d = Dolbie::with_config(
            Allocation::uniform(2),
            DolbieConfig::new().with_initial_alpha(alpha),
        );
        let played = d.allocation().clone();
        let obs = Observation::from_costs(0, &played, &costs);
        // l_t = 0.5*256/64 + 0.1 = 2.1; x'_1 = min(1, (2.1−0.1)*512/256) = 1.
        assert!((obs.global_cost() - 2.1).abs() < 1e-12);
        d.observe(&obs);
        // x_1 <- 0.5 + 0.5*(1 − 0.5) = 0.75; x_0 <- 0.25.
        assert!((d.allocation().share(1) - 0.75).abs() < 1e-12);
        assert!((d.allocation().share(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn single_worker_is_a_fixed_point() {
        let mut d = Dolbie::new(1);
        let costs = linear_costs(&[3.0]);
        for t in 0..10 {
            step(&mut d, &costs, t);
            assert_eq!(d.allocation().share(0), 1.0);
        }
    }

    #[test]
    fn two_workers_rebalance_fully() {
        // N = 2: the eq. (7) cap degenerates to 1 while the straggler has
        // work, so the paper formula would step fully and oscillate; a
        // damped fixed step converges to the balanced split.
        let mut d = Dolbie::with_config(
            Allocation::uniform(2),
            DolbieConfig::new().with_initial_alpha(0.3),
        );
        let costs = linear_costs(&[9.0, 1.0]);
        for t in 0..100 {
            step(&mut d, &costs, t);
        }
        let x = d.allocation();
        // Optimum: x0 = 0.1, x1 = 0.9.
        assert!((x.share(0) - 0.1).abs() < 0.05, "x0 = {}", x.share(0));
    }

    #[test]
    fn fixed_initial_alpha_is_respected() {
        let d = Dolbie::with_config(
            Allocation::uniform(30),
            DolbieConfig::new().with_initial_alpha(0.001),
        );
        assert_eq!(d.alpha(), 0.001);
    }

    #[test]
    fn alpha_floor_keeps_adapting_and_guard_protects() {
        let cfg = DolbieConfig::new().with_initial_alpha(0.9).with_alpha_floor(0.9);
        let mut d = Dolbie::with_config(Allocation::uniform(3), cfg);
        // Adversarial: the straggler rotates, pushing aggressive steps.
        for t in 0..100 {
            let slow = t % 3;
            let mut slopes = [1.0, 1.0, 1.0];
            slopes[slow] = 20.0;
            let costs = linear_costs(&slopes);
            step(&mut d, &costs, t);
            let sum: f64 = d.allocation().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(d.allocation().iter().all(|&v| v >= 0.0));
        }
        assert_eq!(d.alpha(), 0.9, "floor must hold the step size up");
        assert!(d.stats().guard_activations > 0, "aggressive floor must trip the guard");
    }

    /// The wire-protocol contract end to end: a master driven only by
    /// reported scalars and "workers" replaying the broadcast decisions
    /// (including the rare guard rescale) stay bitwise in lockstep with a
    /// locally observing engine — even with an aggressive alpha floor that
    /// trips the feasibility guard.
    #[test]
    fn reported_rounds_with_guard_rescale_stay_bitwise() {
        let cfg = DolbieConfig::new().with_initial_alpha(0.9).with_alpha_floor(0.9);
        let mut local = Dolbie::with_config(Allocation::uniform(3), cfg);
        let mut master = Dolbie::with_config(Allocation::uniform(3), cfg);
        let mut worker_shares: Vec<f64> = Allocation::uniform(3).into_inner();
        let mut guard_fired = false;
        for t in 0..100 {
            let slow = t % 3;
            let mut slopes = [1.0, 1.0, 1.0];
            slopes[slow] = 20.0;
            let costs = linear_costs(&slopes);
            let played = local.allocation().clone();
            let obs = Observation::from_costs(t, &played, &costs);
            let (s, l, alpha) = (obs.straggler(), obs.global_cost(), master.alpha());
            let olds = worker_shares.clone();
            let mut gains = vec![0.0; 3];
            for (i, cost_fn) in costs.iter().enumerate() {
                if i == s {
                    continue;
                }
                let x = worker_shares[i];
                let target = crate::observation::max_acceptable_share(&**cost_fn, x, l);
                let gain = (alpha * (target - x)).max(0.0);
                gains[i] = gain;
                worker_shares[i] = x + gain;
            }
            local.observe(&obs);
            let out = master.observe_reported(s, &gains);
            if let Some(scale) = out.rescale {
                guard_fired = true;
                for i in 0..3 {
                    if i != s {
                        worker_shares[i] = olds[i] + gains[i] * scale;
                    }
                }
            }
            worker_shares[s] = out.straggler_share;
            for (i, &w) in worker_shares.iter().enumerate() {
                assert_eq!(
                    w.to_bits(),
                    local.allocation().share(i).to_bits(),
                    "round {t}: worker {i} diverged"
                );
                assert_eq!(
                    master.allocation().share(i).to_bits(),
                    local.allocation().share(i).to_bits(),
                    "round {t}: master {i} diverged"
                );
            }
        }
        assert!(guard_fired, "aggressive floor must trip the guard");
        assert_eq!(local.stats(), master.stats());
        assert_eq!(local.alphas_used(), master.alphas_used());
    }

    #[test]
    fn config_builder_and_defaults() {
        let cfg = DolbieConfig::default();
        assert_eq!(cfg.initial_alpha, InitialAlpha::CapFraction(0.5));
        assert_eq!(cfg.alpha_floor, 0.0);
        let cfg = cfg.with_alpha_floor(2.0);
        assert_eq!(cfg.alpha_floor, 1.0, "floor clamps to [0,1]");
        assert_eq!(DolbieConfig::paper_initial().initial_alpha, InitialAlpha::PaperFormula);
    }

    #[test]
    fn initial_alpha_variants_resolve_correctly() {
        let x = Allocation::uniform(4);
        let cap = crate::step_size::paper_initial_alpha(&x);
        assert_eq!(DolbieConfig::paper_initial().resolve_initial_alpha(&x), cap);
        assert_eq!(DolbieConfig::new().resolve_initial_alpha(&x), cap / 2.0);
        assert_eq!(DolbieConfig::new().with_initial_alpha(0.007).resolve_initial_alpha(&x), 0.007);
    }

    #[test]
    fn paper_formula_exact_boundary_can_freeze_but_default_does_not() {
        // Strongly heterogeneous static instance: with the literal paper
        // α_1 the first step exactly drains the straggler and eq. (7)
        // pins α to zero; the half-cap default keeps adapting.
        let costs = linear_costs(&[6.0, 1.0, 2.0]);
        let mut frozen = Dolbie::with_config(Allocation::uniform(3), DolbieConfig::paper_initial());
        let mut live = Dolbie::new(3);
        for t in 0..80 {
            step(&mut frozen, &costs, t);
            step(&mut live, &costs, t);
        }
        assert_eq!(frozen.alpha(), 0.0, "boundary init collapses the step size");
        assert!(live.alpha() > 0.0, "default init keeps a positive step size");
        let frozen_cost = costs
            .iter()
            .enumerate()
            .map(|(i, f)| f.eval(frozen.allocation().share(i)))
            .fold(f64::MIN, f64::max);
        let live_cost = costs
            .iter()
            .enumerate()
            .map(|(i, f)| f.eval(live.allocation().share(i)))
            .fold(f64::MIN, f64::max);
        assert!(
            live_cost < frozen_cost,
            "the live run converges further: {live_cost} vs {frozen_cost}"
        );
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Dolbie::new(2).name(), "DOLBIE");
    }

    #[test]
    fn share_caps_bind_and_shift_the_equilibrium() {
        // Uncapped, the fast worker 1 would take 0.8 of the work; capped
        // at 0.5 it must stop there and the others absorb the rest.
        let costs = linear_costs(&[4.0, 1.0, 4.0]);
        let caps = vec![1.0, 0.5, 1.0];
        let mut capped = Dolbie::new(3).with_share_caps(caps.clone());
        for t in 0..300 {
            step(&mut capped, &costs, t);
            for (i, &cap) in caps.iter().enumerate() {
                assert!(
                    capped.allocation().share(i) <= cap + 1e-9,
                    "round {t}: worker {i} exceeds its cap"
                );
            }
        }
        assert!(
            (capped.allocation().share(1) - 0.5).abs() < 0.02,
            "the cap should bind at equilibrium: {}",
            capped.allocation().share(1)
        );
        // And the achieved level matches the capped clairvoyant optimum.
        let opt = crate::oracle::instantaneous_minimizer_capped(&costs, Some(&caps)).unwrap();
        let level = costs
            .iter()
            .enumerate()
            .map(|(i, f)| f.eval(capped.allocation().share(i)))
            .fold(f64::MIN, f64::max);
        assert!(
            level < opt.level * 1.15,
            "capped DOLBIE near capped OPT: {level} vs {}",
            opt.level
        );
    }

    #[test]
    fn slack_caps_do_not_change_the_trajectory() {
        let costs = linear_costs(&[3.0, 1.0]);
        let mut plain = Dolbie::new(2);
        let mut capped = Dolbie::new(2).with_share_caps(vec![1.0, 1.0]);
        for t in 0..60 {
            step(&mut plain, &costs, t);
            step(&mut capped, &costs, t);
        }
        assert!(plain.allocation().l2_distance(capped.allocation()) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds its cap")]
    fn caps_below_initial_shares_are_rejected() {
        let _ = Dolbie::new(4).with_share_caps(vec![0.1, 1.0, 1.0, 1.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::cost::{DynCost, LinearCost, PowerCost};
    use proptest::prelude::*;

    fn arbitrary_costs(n: usize) -> impl Strategy<Value = Vec<DynCost>> {
        proptest::collection::vec((0.01f64..50.0, 0.0f64..5.0, prop::bool::ANY), n).prop_map(
            |params| {
                params
                    .into_iter()
                    .map(|(a, b, quadratic)| {
                        if quadratic {
                            Box::new(PowerCost::new(a, 2.0, b)) as DynCost
                        } else {
                            Box::new(LinearCost::new(a, b)) as DynCost
                        }
                    })
                    .collect()
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Feasibility (constraints (2)-(3)) holds under adversarial
        /// time-varying mixes of linear and quadratic costs.
        #[test]
        fn feasible_under_adversarial_costs(
            n in 2usize..12,
            seeds in proptest::collection::vec(0u64..u64::MAX, 1..30),
        ) {
            let mut d = Dolbie::new(n);
            for (t, seed) in seeds.iter().enumerate() {
                // Derive per-round costs deterministically from the seed.
                let costs: Vec<DynCost> = (0..n).map(|i| {
                    let h = seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                    let slope = 0.1 + (h % 1000) as f64 / 50.0;
                    Box::new(LinearCost::new(slope, (h % 7) as f64 * 0.1)) as DynCost
                }).collect();
                let played = d.allocation().clone();
                let obs = Observation::from_costs(t, &played, &costs);
                d.observe(&obs);
                let sum: f64 = d.allocation().iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
                prop_assert!(d.allocation().iter().all(|&v| v >= 0.0));
            }
        }

        /// On a static instance the global cost is non-increasing
        /// (risk-averse assistance never creates a worse straggler).
        #[test]
        fn static_global_cost_monotone(costs in arbitrary_costs(6)) {
            let mut d = Dolbie::new(6);
            let mut last = f64::INFINITY;
            for t in 0..40 {
                let played = d.allocation().clone();
                let obs = Observation::from_costs(t, &played, &costs);
                prop_assert!(obs.global_cost() <= last + 1e-9);
                last = obs.global_cost();
                d.observe(&obs);
            }
        }
    }
}
