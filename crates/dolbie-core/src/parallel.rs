//! Deterministic work-stealing fan-out over independent tasks.
//!
//! This is the PR-1 experiment harness promoted into the core crate so
//! that *intra-round* computation (the large-N episode engine in
//! [`engine`](crate::engine)) can share one thread-count setting and one
//! scheduling discipline with the *across-experiment* fan-out in
//! `dolbie-bench`. Three properties make the parallelism safe:
//!
//! - **Pure tasks.** Each task is a function of its index (or owned
//!   payload) alone, so the execution schedule cannot leak into a result.
//! - **Ordered collection.** Results land in a per-index slot and are
//!   returned in index order, so downstream consumers see exactly the
//!   sequential iteration order.
//! - **Work stealing.** Workers claim indices from a shared atomic
//!   counter, so a slow task does not idle the other cores the way a
//!   static block partition would.
//!
//! The thread count is a process-wide setting (`--threads N` in the
//! binaries): [`set_threads`] pins it, and an unset count resolves to the
//! machine's available parallelism. With one thread every function here
//! degenerates to a plain sequential loop on the calling thread.
//!
//! Only `std` is used — the build environment is offline, so `rayon`-style
//! registries are deliberately out of reach.

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// 0 means "not set": fall back to available parallelism.
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Probed once: `available_parallelism` re-reads cgroup quota files on
/// every call on Linux, which is far too slow for the per-round
/// [`threads`] checks in the chunked engine's hot path.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

/// Pins the number of worker threads used by the fan-out functions in
/// this module.
///
/// `0` resets to the default (the machine's available parallelism); any
/// other value is used as-is. Affects every subsequent parallel call in
/// the process.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::SeqCst);
}

/// The number of worker threads the fan-out functions will use.
pub fn threads() -> usize {
    match THREADS.load(Ordering::SeqCst) {
        0 => *DEFAULT_THREADS
            .get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        n => n,
    }
}

/// Runs `task` for every index in `0..tasks` and returns the results in
/// index order, fanning out over [`threads`] scoped worker threads.
///
/// `task` must derive its result from the index alone (not from any
/// execution-order-dependent state): under that contract the returned
/// vector is identical for every thread count, which is what keeps the
/// experiment CSVs byte-stable.
///
/// # Panics
///
/// Propagates the first observed panic from a worker thread.
pub fn parallel_map<T, F>(tasks: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads().min(tasks);
    if workers <= 1 {
        return (0..tasks).map(task).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks {
                        break;
                    }
                    let result = task(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                })
            })
            .collect();
        for handle in handles {
            if let Err(panic) = handle.join() {
                resume_unwind(panic);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed index stores a result")
        })
        .collect()
}

/// [`parallel_map`] over a slice: runs `task` on every item and returns
/// the results in item order.
pub fn parallel_map_items<I, T, F>(items: &[I], task: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    parallel_map(items.len(), |i| task(&items[i]))
}

/// Runs `task` once on every payload, work-stealing over [`threads`]
/// scoped worker threads. Payloads are *owned* (typically disjoint
/// `&mut` sub-slices produced by `chunks_mut`), which is what lets the
/// intra-round engine passes write shared state in parallel without
/// `unsafe`.
///
/// Each payload is claimed exactly once; with one worker thread the
/// payloads run sequentially in order on the calling thread. As with
/// [`parallel_map`], tasks must be pure functions of their payload for
/// the schedule to be unobservable.
///
/// # Panics
///
/// Propagates the first observed panic from a worker thread.
pub fn parallel_for_each<C, F>(payloads: Vec<C>, task: F)
where
    C: Send,
    F: Fn(C) + Sync,
{
    let workers = threads().min(payloads.len());
    if workers <= 1 {
        for payload in payloads {
            task(payload);
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<C>>> = payloads.into_iter().map(|p| Mutex::new(Some(p))).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    let payload = slots[i]
                        .lock()
                        .expect("payload slot poisoned")
                        .take()
                        .expect("every payload is claimed exactly once");
                    task(payload);
                })
            })
            .collect();
        for handle in handles {
            if let Err(panic) = handle.join() {
                resume_unwind(panic);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        set_threads(4);
        let out = parallel_map(64, |i| {
            // Stagger completion so later indices often finish first.
            std::thread::sleep(std::time::Duration::from_micros((64 - i as u64) * 10));
            i * i
        });
        set_threads(0);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        set_threads(1);
        let seq = parallel_map(100, |i| (i as f64).sqrt());
        set_threads(4);
        let par = parallel_map(100, |i| (i as f64).sqrt());
        set_threads(0);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_and_tiny_task_counts_work() {
        set_threads(8);
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, |i| i + 1), vec![1]);
        set_threads(0);
    }

    #[test]
    fn items_variant_preserves_order() {
        set_threads(3);
        let items = vec!["a", "bb", "ccc", "dddd"];
        let lens = parallel_map_items(&items, |s| s.len());
        set_threads(0);
        assert_eq!(lens, vec![1, 2, 3, 4]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        set_threads(6);
        let count = AtomicUsize::new(0);
        let out = parallel_map(1000, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        set_threads(0);
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn worker_panic_propagates() {
        set_threads(4);
        let result = std::panic::catch_unwind(|| {
            parallel_map(16, |i| {
                if i == 7 {
                    panic!("task failure");
                }
                i
            })
        });
        set_threads(0);
        assert!(result.is_err());
    }

    #[test]
    fn for_each_writes_disjoint_chunks() {
        let mut data = vec![0usize; 1000];
        set_threads(4);
        let payloads: Vec<(usize, &mut [usize])> =
            data.chunks_mut(7).enumerate().map(|(k, c)| (k * 7, c)).collect();
        parallel_for_each(payloads, |(base, chunk)| {
            for (off, v) in chunk.iter_mut().enumerate() {
                *v = (base + off) * 2;
            }
        });
        set_threads(0);
        assert_eq!(data, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_sequential_path_matches_parallel() {
        let run = |threads: usize| {
            let mut out = vec![0.0f64; 137];
            set_threads(threads);
            let payloads: Vec<(usize, &mut [f64])> =
                out.chunks_mut(11).enumerate().map(|(k, c)| (k * 11, c)).collect();
            parallel_for_each(payloads, |(base, chunk)| {
                for (off, v) in chunk.iter_mut().enumerate() {
                    *v = ((base + off) as f64).sin();
                }
            });
            set_threads(0);
            out
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn for_each_panic_propagates() {
        set_threads(4);
        let result = std::panic::catch_unwind(|| {
            parallel_for_each((0..16).collect::<Vec<usize>>(), |i| {
                if i == 3 {
                    panic!("payload failure");
                }
            })
        });
        set_threads(0);
        assert!(result.is_err());
    }
}
