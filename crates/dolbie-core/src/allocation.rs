//! Workload allocations on the probability simplex.
//!
//! The decision variable of problem (1) in the paper is a vector
//! `x_t = [x_{1,t}, ..., x_{N,t}]` with `Σ_i x_{i,t} = 1` (constraint (2))
//! and `x_{i,t} >= 0` (constraint (3)). [`Allocation`] encapsulates that
//! invariant: it can only be constructed through validating or normalizing
//! constructors, so every algorithm in this workspace can rely on receiving
//! a feasible point.

use crate::error::AllocationError;
use std::fmt;
use std::ops::Index;

/// Tolerance within which the shares of a *validated* allocation must sum
/// to one.
///
/// Online updates accumulate floating-point error over thousands of rounds;
/// `1e-6` is loose enough to accept honest rounding drift and tight enough
/// to reject genuinely infeasible vectors.
pub const SUM_TOLERANCE: f64 = 1e-6;

/// A feasible workload split over `N` workers: entrywise non-negative and
/// summing to one.
///
/// # Examples
///
/// ```
/// use dolbie_core::Allocation;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Allocation::new(vec![0.5, 0.25, 0.25])?;
/// assert_eq!(x.num_workers(), 3);
/// assert_eq!(x.share(0), 0.5);
///
/// let even = Allocation::uniform(4);
/// assert!((even.share(2) - 0.25).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    shares: Vec<f64>,
}

impl Allocation {
    /// Creates an allocation after validating non-negativity and unit sum.
    ///
    /// # Errors
    ///
    /// Returns [`AllocationError`] if `shares` is empty, contains a negative
    /// or non-finite entry, or does not sum to one within [`SUM_TOLERANCE`].
    ///
    /// # Examples
    ///
    /// ```
    /// use dolbie_core::Allocation;
    ///
    /// assert!(Allocation::new(vec![0.7, 0.3]).is_ok());
    /// assert!(Allocation::new(vec![0.7, 0.7]).is_err());
    /// assert!(Allocation::new(vec![1.5, -0.5]).is_err());
    /// ```
    pub fn new(shares: Vec<f64>) -> Result<Self, AllocationError> {
        if shares.is_empty() {
            return Err(AllocationError::Empty);
        }
        let mut sum = 0.0;
        for (worker, &share) in shares.iter().enumerate() {
            if !share.is_finite() {
                return Err(AllocationError::NonFiniteShare { worker, share });
            }
            if share < 0.0 {
                return Err(AllocationError::NegativeShare { worker, share });
            }
            sum += share;
        }
        if (sum - 1.0).abs() > SUM_TOLERANCE {
            return Err(AllocationError::SumMismatch { sum });
        }
        Ok(Self { shares })
    }

    /// Creates an allocation by rescaling a non-negative weight vector to
    /// sum to one.
    ///
    /// This is the natural constructor for proportional policies such as the
    /// ABS baseline, where weights are throughput estimates rather than
    /// shares.
    ///
    /// # Errors
    ///
    /// Returns [`AllocationError`] if `weights` is empty, contains a negative
    /// or non-finite entry, or sums to zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use dolbie_core::Allocation;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let x = Allocation::from_weights(vec![2.0, 6.0])?;
    /// assert!((x.share(0) - 0.25).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_weights(weights: Vec<f64>) -> Result<Self, AllocationError> {
        if weights.is_empty() {
            return Err(AllocationError::Empty);
        }
        let mut sum = 0.0;
        for (worker, &w) in weights.iter().enumerate() {
            if !w.is_finite() {
                return Err(AllocationError::NonFiniteShare { worker, share: w });
            }
            if w < 0.0 {
                return Err(AllocationError::NegativeShare { worker, share: w });
            }
            sum += w;
        }
        if sum <= 0.0 {
            return Err(AllocationError::SumMismatch { sum });
        }
        let shares = weights.into_iter().map(|w| w / sum).collect();
        Ok(Self { shares })
    }

    /// Creates the equal split `x_i = 1/N` used to initialize every
    /// algorithm in the paper's experiments.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "allocation requires at least one worker");
        Self { shares: vec![1.0 / n as f64; n] }
    }

    /// Creates an allocation that puts all workload on worker `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or `n == 0`.
    pub fn singleton(n: usize, i: usize) -> Self {
        assert!(n > 0, "allocation requires at least one worker");
        assert!(i < n, "worker index {i} out of range for {n} workers");
        let mut shares = vec![0.0; n];
        shares[i] = 1.0;
        Self { shares }
    }

    /// Number of workers `N`.
    pub fn num_workers(&self) -> usize {
        self.shares.len()
    }

    /// The share `x_i` of worker `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn share(&self, i: usize) -> f64 {
        self.shares[i]
    }

    /// View of the shares as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.shares
    }

    /// Mutable view of the shares for in-crate update rules (the SoA
    /// episode engine writes shares in place instead of rebuilding the
    /// vector each round). Callers must restore the simplex invariant
    /// before the allocation is observed again.
    pub(crate) fn shares_mut(&mut self) -> &mut [f64] {
        &mut self.shares
    }

    /// Overwrites this allocation with `other`'s shares, reusing the
    /// existing storage (no heap traffic once the capacity matches —
    /// the allocation-free episode hot path relies on this).
    pub fn copy_from(&mut self, other: &Allocation) {
        self.shares.clear();
        self.shares.extend_from_slice(&other.shares);
    }

    /// Iterator over the shares.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.shares.iter()
    }

    /// Consumes the allocation, returning the underlying share vector.
    pub fn into_inner(self) -> Vec<f64> {
        self.shares
    }

    /// Index of the smallest share (lowest index wins ties).
    pub fn min_index(&self) -> usize {
        let mut best = 0;
        for i in 1..self.shares.len() {
            if self.shares[i] < self.shares[best] {
                best = i;
            }
        }
        best
    }

    /// The smallest share value.
    pub fn min_share(&self) -> f64 {
        self.shares[self.min_index()]
    }

    /// Euclidean (`l2`) distance to another allocation; the building block
    /// of the path length `P_T = Σ_t ||x*_{t-1} - x*_t||_2` in Section V.
    ///
    /// # Panics
    ///
    /// Panics if the two allocations have different lengths.
    pub fn l2_distance(&self, other: &Allocation) -> f64 {
        assert_eq!(
            self.shares.len(),
            other.shares.len(),
            "allocations must cover the same worker set"
        );
        self.shares
            .iter()
            .zip(other.shares.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// `l1` distance to another allocation (total share moved).
    ///
    /// # Panics
    ///
    /// Panics if the two allocations have different lengths.
    pub fn l1_distance(&self, other: &Allocation) -> f64 {
        assert_eq!(
            self.shares.len(),
            other.shares.len(),
            "allocations must cover the same worker set"
        );
        self.shares.iter().zip(other.shares.iter()).map(|(a, b)| (a - b).abs()).sum()
    }

    /// Euclidean norm of the share vector; always in `(1/sqrt(N), 1]` on the
    /// simplex, which the regret proof uses (`||x_t|| <= 1`).
    pub fn l2_norm(&self) -> f64 {
        self.shares.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Rebuilds an allocation from raw shares produced by an in-crate update
    /// rule, snapping tiny negative values (>= `-1e-9`, floating-point dust)
    /// to zero and renormalizing the sum exactly to one.
    ///
    /// This is *not* a projection: shares more negative than `-1e-9` are a
    /// logic error in the caller and are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`AllocationError`] if a share is materially negative or
    /// non-finite, or if the raw sum strays from one by more than `1e-3`
    /// (which would indicate a broken update rule, not rounding).
    pub fn from_update(mut shares: Vec<f64>) -> Result<Self, AllocationError> {
        if shares.is_empty() {
            return Err(AllocationError::Empty);
        }
        for (worker, share) in shares.iter_mut().enumerate() {
            if !share.is_finite() {
                return Err(AllocationError::NonFiniteShare { worker, share: *share });
            }
            if *share < 0.0 {
                if *share < -1e-9 {
                    return Err(AllocationError::NegativeShare { worker, share: *share });
                }
                *share = 0.0;
            }
        }
        let sum: f64 = shares.iter().sum();
        if (sum - 1.0).abs() > 1e-3 {
            return Err(AllocationError::SumMismatch { sum });
        }
        for share in &mut shares {
            *share /= sum;
        }
        Ok(Self { shares })
    }
}

impl Index<usize> for Allocation {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.shares[i]
    }
}

impl AsRef<[f64]> for Allocation {
    fn as_ref(&self) -> &[f64] {
        &self.shares
    }
}

impl<'a> IntoIterator for &'a Allocation {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.shares.iter()
    }
}

impl fmt::Display for Allocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, share) in self.shares.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{share:.4}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_from_matches_clone_and_reuses_storage() {
        let a = Allocation::new(vec![0.5, 0.25, 0.25]).unwrap();
        let mut b = Allocation::uniform(3);
        b.copy_from(&a);
        assert_eq!(a, b);
        // Length changes are handled too.
        let c = Allocation::uniform(5);
        b.copy_from(&c);
        assert_eq!(b, c);
    }

    #[test]
    fn uniform_sums_to_one() {
        for n in 1..50 {
            let x = Allocation::uniform(n);
            let sum: f64 = x.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "n={n} sum={sum}");
        }
    }

    #[test]
    fn new_rejects_negative() {
        let err = Allocation::new(vec![1.2, -0.2]).unwrap_err();
        assert_eq!(err, AllocationError::NegativeShare { worker: 1, share: -0.2 });
    }

    #[test]
    fn new_rejects_bad_sum() {
        assert!(matches!(
            Allocation::new(vec![0.4, 0.4]).unwrap_err(),
            AllocationError::SumMismatch { .. }
        ));
    }

    #[test]
    fn new_rejects_empty_and_nan() {
        assert_eq!(Allocation::new(vec![]).unwrap_err(), AllocationError::Empty);
        assert!(matches!(
            Allocation::new(vec![f64::NAN, 1.0]).unwrap_err(),
            AllocationError::NonFiniteShare { worker: 0, .. }
        ));
    }

    #[test]
    fn new_accepts_rounding_drift() {
        // Off by 1e-9: within tolerance.
        let x = Allocation::new(vec![0.5, 0.5 + 1e-9]).unwrap();
        assert_eq!(x.num_workers(), 2);
    }

    #[test]
    fn from_weights_normalizes() {
        let x = Allocation::from_weights(vec![1.0, 3.0]).unwrap();
        assert!((x.share(0) - 0.25).abs() < 1e-12);
        assert!((x.share(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn from_weights_rejects_zero_sum() {
        assert!(matches!(
            Allocation::from_weights(vec![0.0, 0.0]).unwrap_err(),
            AllocationError::SumMismatch { .. }
        ));
    }

    #[test]
    fn singleton_puts_all_work_on_one_worker() {
        let x = Allocation::singleton(4, 2);
        assert_eq!(x.share(2), 1.0);
        assert_eq!(x.share(0), 0.0);
        assert_eq!(x.min_share(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn singleton_rejects_out_of_range() {
        let _ = Allocation::singleton(3, 3);
    }

    #[test]
    fn min_index_breaks_ties_low() {
        let x = Allocation::new(vec![0.25, 0.25, 0.5]).unwrap();
        assert_eq!(x.min_index(), 0);
    }

    #[test]
    fn distances_are_consistent() {
        let a = Allocation::new(vec![1.0, 0.0]).unwrap();
        let b = Allocation::new(vec![0.0, 1.0]).unwrap();
        assert!((a.l2_distance(&b) - 2f64.sqrt()).abs() < 1e-12);
        assert!((a.l1_distance(&b) - 2.0).abs() < 1e-12);
        assert_eq!(a.l2_distance(&a), 0.0);
    }

    #[test]
    fn l2_norm_bounds_on_simplex() {
        let n = 10;
        let u = Allocation::uniform(n);
        assert!((u.l2_norm() - (1.0 / (n as f64).sqrt())).abs() < 1e-12);
        let s = Allocation::singleton(n, 3);
        assert!((s.l2_norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_update_snaps_dust_and_renormalizes() {
        let x = Allocation::from_update(vec![0.5, 0.5 + 3e-10, -3e-10]).unwrap();
        assert_eq!(x.share(2), 0.0);
        let sum: f64 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-15);
    }

    #[test]
    fn from_update_rejects_material_negatives() {
        assert!(matches!(
            Allocation::from_update(vec![1.001, -0.001]).unwrap_err(),
            AllocationError::NegativeShare { worker: 1, .. }
        ));
    }

    #[test]
    fn from_update_rejects_broken_sum() {
        assert!(matches!(
            Allocation::from_update(vec![0.5, 0.3]).unwrap_err(),
            AllocationError::SumMismatch { .. }
        ));
    }

    #[test]
    fn indexing_and_iteration() {
        let x = Allocation::new(vec![0.2, 0.8]).unwrap();
        assert_eq!(x[1], 0.8);
        let collected: Vec<f64> = (&x).into_iter().copied().collect();
        assert_eq!(collected, vec![0.2, 0.8]);
        assert_eq!(x.as_ref(), &[0.2, 0.8]);
        assert_eq!(x.clone().into_inner(), vec![0.2, 0.8]);
    }

    #[test]
    fn display_is_compact() {
        let x = Allocation::new(vec![0.5, 0.5]).unwrap();
        assert_eq!(x.to_string(), "[0.5000, 0.5000]");
    }
}
