//! Deterministic-exploration regression: BFS exploration must produce
//! byte-identical statistics — including the first-visit order of every
//! state fingerprint — at any worker-thread count. Kept in its own test
//! binary because it toggles the process-global thread setting.

use dolbie_core::parallel::set_threads;
use dolbie_mc::{explore, Arch, McConfig, Strategy};
use dolbie_simnet::{Crash, FaultPlan, LeaveKind, MembershipSchedule, RetryPolicy};

#[test]
fn bfs_exploration_is_byte_identical_at_any_thread_count() {
    let mut plan = FaultPlan::seeded(0xD01B_0004).with_crash(Crash {
        worker: 1,
        from_round: 1,
        until_round: 2,
    });
    plan.retry = RetryPolicy::new(0.05, 2.0, 2);
    let schedule = MembershipSchedule::none().with_leave(1, 2, LeaveKind::Graceful).with_join(2, 2);
    let config =
        McConfig::new(Arch::FullyDistributed, 3, 3).with_plan(plan).with_schedule(schedule);

    set_threads(1);
    let one = explore(&config, Strategy::Bfs);
    set_threads(4);
    let four = explore(&config, Strategy::Bfs);
    set_threads(0);

    assert!(one.complete && four.complete);
    assert!(one.violation.is_none() && four.violation.is_none());
    // The whole stats struct — runs, explored, pruned, depth, AND the
    // first-visit order vector — must match byte for byte.
    assert_eq!(one.stats, four.stats);
}
