//! The model checker's acceptance gates: three exhaustively verified
//! configurations (one per architecture), and the end-to-end
//! bug-catching pipeline against the deliberately re-broken PR 4
//! overshoot guard.

use dolbie_mc::{decision_count, explore, replay, reproducer, shrink, Arch, McConfig, Strategy};
use dolbie_simnet::{Crash, FaultPlan, LeaveKind, MembershipSchedule, RetryPolicy};

/// Acceptance configuration (a): master-worker, N=3, 3 rounds, the full
/// drop + duplicate wire envelope under a two-attempt retry policy.
fn config_mw_lossy() -> McConfig {
    let mut plan =
        FaultPlan::seeded(0xD01B_0002).with_drop_probability(0.2).with_duplicate_probability(0.1);
    plan.retry = RetryPolicy::new(0.05, 2.0, 2);
    McConfig::new(Arch::MasterWorker, 3, 3).with_plan(plan)
}

/// Acceptance configuration (b): ring, N=4, 3 rounds, one crash window.
fn config_ring_crash() -> McConfig {
    let mut plan = FaultPlan::seeded(0xD01B_0003).with_crash(Crash {
        worker: 2,
        from_round: 1,
        until_round: 2,
    });
    plan.retry = RetryPolicy::new(0.05, 2.0, 2);
    McConfig::new(Arch::Ring, 4, 3).with_plan(plan)
}

/// Acceptance configuration (c): fully-distributed, N=3, 3 rounds, a
/// leave + join epoch pair overlapping a crash window.
fn config_fd_join_crash() -> McConfig {
    let mut plan = FaultPlan::seeded(0xD01B_0004).with_crash(Crash {
        worker: 1,
        from_round: 1,
        until_round: 2,
    });
    plan.retry = RetryPolicy::new(0.05, 2.0, 2);
    let schedule = MembershipSchedule::none().with_leave(1, 2, LeaveKind::Graceful).with_join(2, 2);
    McConfig::new(Arch::FullyDistributed, 3, 3).with_plan(plan).with_schedule(schedule)
}

fn assert_clean_and_pruned(name: &str, config: &McConfig) {
    let ex = explore(config, Strategy::Dfs);
    assert!(ex.complete, "{name}: exploration must be exhaustive");
    assert!(
        ex.violation.is_none(),
        "{name}: found a violation: {:?}",
        ex.violation.map(|v| v.message)
    );
    assert!(ex.stats.states_explored > 0, "{name}: no states visited");
    assert!(
        ex.stats.states_pruned * 2 > ex.stats.naive_states(),
        "{name}: pruning below 50% of naive ({} of {})",
        ex.stats.states_pruned,
        ex.stats.naive_states()
    );
}

#[test]
fn master_worker_lossy_envelope_is_verified_exhaustively() {
    assert_clean_and_pruned("mw3x3 drop+dup", &config_mw_lossy());
}

#[test]
fn ring_crash_window_is_verified_exhaustively() {
    assert_clean_and_pruned("ring4x3 crash", &config_ring_crash());
}

#[test]
fn fully_distributed_join_plus_crash_is_verified_exhaustively() {
    assert_clean_and_pruned("fd3x3 join+crash", &config_fd_join_crash());
}

/// The sabotage configuration: env seed 6402's chaos-mix costs make the
/// round-1 joiner (share exactly 0.0) the straggler, so with the PR 4
/// overshoot guard disabled the non-stragglers' combined gain executes
/// `Σx ≈ 1.022 > 1` — the historical bug, verbatim.
fn sabotage_config() -> McConfig {
    let schedule = MembershipSchedule::none().with_leave(0, 2, LeaveKind::Graceful).with_join(1, 2);
    McConfig::new(Arch::MasterWorker, 3, 3)
        .with_env_seed(6402)
        .with_schedule(schedule)
        .with_sabotage()
}

#[test]
fn injected_overshoot_bug_is_caught_shrunk_and_reproduced() {
    let config = sabotage_config();

    // The guarded twin of the same configuration is clean.
    let mut guarded = config.clone();
    guarded.sabotage_overshoot_guard = false;
    let clean = explore(&guarded, Strategy::Dfs);
    assert!(clean.complete && clean.violation.is_none(), "guarded twin must pass");

    // The checker catches the sabotage.
    let ex = explore(&config, Strategy::Dfs);
    let violation = ex.violation.expect("the re-broken guard must be caught");
    assert!(
        violation.message.contains("feasibility") || violation.message.contains("panic"),
        "unexpected violation: {}",
        violation.message
    );

    // Shrinking lands well inside the 12-decision budget.
    let minimal = shrink(&config, &violation.prefix);
    assert!(
        decision_count(&minimal) <= 12,
        "shrunk reproducer needs {} non-default decisions",
        decision_count(&minimal)
    );

    // The emitted reproducer carries the full recipe...
    let text = reproducer(&config, &minimal, &violation.message);
    assert!(text.contains("Arch::MasterWorker"));
    assert!(text.contains(".with_sabotage()"));
    assert!(text.contains(&format!("{:#018x}", 6402)));
    assert!(text.contains("verdict.is_err()"));

    // ...and what it asserts reproduces bitwise: two independent replays
    // of the shrunk prefix fail with the identical message.
    let first = replay(&config, &minimal);
    let second = replay(&config, &minimal);
    let msg_a = first.verdict.expect_err("shrunk prefix still fails");
    let msg_b = second.verdict.expect_err("shrunk prefix still fails");
    assert_eq!(msg_a, msg_b, "reproducer is not bitwise stable");
}
