//! Exhaustive exploration of the decision tree with visited-state
//! pruning.
//!
//! The explorer enumerates decision prefixes (see [`crate::replay()`]):
//! after replaying a prefix it scans the recorded trail *from the prefix
//! boundary onward* and, for every decision point it has not cut, pushes
//! one child prefix per untaken alternative. The cut rule is the partial
//! order reduction: at each delivery choice the simulator reports a
//! canonical state fingerprint (shares + α + per-round protocol state +
//! the in-flight message multiset + membership/crash masks); if that
//! fingerprint was seen before, a previous run already expanded every
//! decision downstream of the state, so the scan stops and the hit is
//! counted as pruned. Binary fault coins between two delivery choices
//! are always expanded first — their alternatives lead to genuinely
//! unvisited intermediate states — and collapse at the *next* delivery
//! choice when (as with drop/duplicate faults inside the retry envelope,
//! which are delay-only) they reconverge to a visited state.
//!
//! Every replayed run is complete and invariant-checked regardless of
//! where its expansion was cut, so pruning never skips a *check*, only
//! redundant re-expansion.

use crate::config::McConfig;
use crate::replay::{replay, RunOutcome};
use dolbie_core::parallel::parallel_map_items;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// Search order over the decision tree. A completed exploration visits
/// the same *set* of reachable states under either strategy; run counts
/// and visit order legitimately differ (cuts land in different places).
/// Each strategy is individually deterministic — byte-identical counters
/// and visit order at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Depth-first: a sequential stack, minimal frontier memory.
    Dfs,
    /// Breadth-first in waves: each wave of prefixes replays on the
    /// deterministic parallel harness (`dolbie_core::parallel`) and is
    /// merged sequentially in index order, so counts and visit order are
    /// byte-identical at any `--threads`.
    Bfs,
}

/// Counters from one exploration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Complete runs executed (= prefixes replayed).
    pub runs: usize,
    /// Distinct canonical states first-visited at delivery choices.
    pub states_explored: usize,
    /// Visited-state hits: scans cut because the state had been reached
    /// on another path. `explored + pruned` is what a naive stateless
    /// enumeration would have had to keep expanding.
    pub states_pruned: usize,
    /// Longest decision trail observed.
    pub max_depth: usize,
    /// Fingerprints in first-visit order — the determinism regression
    /// compares this byte-for-byte across thread counts.
    pub visit_order: Vec<u64>,
}

impl ExploreStats {
    /// `explored + pruned`: the state encounters a naive enumeration
    /// (no visited set) would expand.
    #[must_use]
    pub fn naive_states(&self) -> usize {
        self.states_explored + self.states_pruned
    }
}

/// A found violation: the decision prefix that reproduces it and the
/// invariant message.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Decision prefix to feed [`replay()`].
    pub prefix: Vec<u32>,
    /// The invariant-checker (or panic, or confluence) message.
    pub message: String,
}

/// The result of exploring one configuration.
#[derive(Debug)]
pub struct Exploration {
    /// Counters.
    pub stats: ExploreStats,
    /// The first violation found, if any; exploration stops on it.
    pub violation: Option<Violation>,
    /// `true` when the frontier drained without tripping
    /// [`McConfig::max_runs`] — the state space was covered exhaustively
    /// (up to the configured horizon).
    pub complete: bool,
}

/// Shared per-run bookkeeping: check the verdict, check confluence,
/// scan-and-expand the trail. Returns a violation or pushes children.
fn merge_run(
    prefix: &[u32],
    outcome: &RunOutcome,
    visited: &mut HashSet<u64>,
    confluence: &mut HashMap<u64, (u64, Vec<u32>)>,
    stats: &mut ExploreStats,
    children: &mut Vec<Vec<u32>>,
) -> Option<Violation> {
    stats.runs += 1;
    stats.max_depth = stats.max_depth.max(outcome.trail.len());
    if let Err(message) = &outcome.verdict {
        return Some(Violation { prefix: prefix.to_vec(), message: message.clone() });
    }
    // Confluence (invariant 4 within one architecture): paths whose
    // crash + membership outcomes agree must produce bitwise-identical
    // trajectories — delivery order and in-envelope wire faults are
    // delay-only.
    if let Some(digest) = outcome.trace_digest() {
        match confluence.entry(outcome.fault_signature()) {
            Entry::Occupied(e) => {
                if e.get().0 != digest {
                    return Some(Violation {
                        prefix: prefix.to_vec(),
                        message: format!(
                            "agreement: trajectory diverges from fault-equivalent prefix {:?}",
                            e.get().1
                        ),
                    });
                }
            }
            Entry::Vacant(v) => {
                v.insert((digest, prefix.to_vec()));
            }
        }
    }
    for (i, d) in outcome.trail.iter().enumerate().skip(prefix.len()) {
        if let Some(fp) = d.fp {
            if !visited.insert(fp) {
                stats.states_pruned += 1;
                return None; // cut: a previous run owns everything downstream
            }
            stats.states_explored += 1;
            stats.visit_order.push(fp);
        }
        for alt in (d.chosen + 1)..d.options {
            let mut child: Vec<u32> = outcome.trail[..i].iter().map(|r| r.chosen).collect();
            child.push(alt);
            children.push(child);
        }
    }
    None
}

/// Explores the configuration's full decision tree under the chosen
/// strategy, checking every reachable run against the chaos invariants
/// and the confluence rule. Stops at the first violation.
#[must_use]
pub fn explore(config: &McConfig, strategy: Strategy) -> Exploration {
    let mut stats = ExploreStats::default();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut confluence: HashMap<u64, (u64, Vec<u32>)> = HashMap::new();
    match strategy {
        Strategy::Dfs => {
            let mut stack: Vec<Vec<u32>> = vec![Vec::new()];
            while let Some(prefix) = stack.pop() {
                if stats.runs >= config.max_runs {
                    return Exploration { stats, violation: None, complete: false };
                }
                let outcome = replay(config, &prefix);
                let mut children = Vec::new();
                if let Some(v) = merge_run(
                    &prefix,
                    &outcome,
                    &mut visited,
                    &mut confluence,
                    &mut stats,
                    &mut children,
                ) {
                    return Exploration { stats, violation: Some(v), complete: false };
                }
                // Reverse so the lowest-index alternative is explored first.
                stack.extend(children.into_iter().rev());
            }
        }
        Strategy::Bfs => {
            let mut frontier: Vec<Vec<u32>> = vec![Vec::new()];
            while !frontier.is_empty() {
                let outcomes = parallel_map_items(&frontier, |prefix| replay(config, prefix));
                let mut next = Vec::new();
                for (prefix, outcome) in frontier.iter().zip(&outcomes) {
                    if stats.runs >= config.max_runs {
                        return Exploration { stats, violation: None, complete: false };
                    }
                    if let Some(v) = merge_run(
                        prefix,
                        outcome,
                        &mut visited,
                        &mut confluence,
                        &mut stats,
                        &mut next,
                    ) {
                        return Exploration { stats, violation: Some(v), complete: false };
                    }
                }
                frontier = next;
            }
        }
    }
    Exploration { stats, violation: None, complete: true }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Arch;

    /// The smallest interesting space: N=2 master-worker, one round,
    /// lossless. Exploration must terminate, visit more than one run
    /// (there is at least one delivery reordering), and find nothing.
    #[test]
    fn tiny_lossless_space_is_clean_and_finite() {
        let config = McConfig::new(Arch::MasterWorker, 2, 1);
        let ex = explore(&config, Strategy::Dfs);
        assert!(ex.complete);
        assert!(ex.violation.is_none());
        assert!(ex.stats.runs >= 1);
        assert_eq!(ex.stats.states_explored, ex.stats.visit_order.len());
    }

    /// DFS and BFS cover the same state space on the same configuration.
    #[test]
    fn dfs_and_bfs_agree_on_coverage() {
        let config = McConfig::new(Arch::Ring, 3, 2);
        let dfs = explore(&config, Strategy::Dfs);
        let bfs = explore(&config, Strategy::Bfs);
        assert!(dfs.complete && bfs.complete);
        assert!(dfs.violation.is_none() && bfs.violation.is_none());
        // Both strategies must visit the identical set of reachable
        // states (visit *order* and run counts legitimately differ —
        // cuts land in different places).
        let dfs_set: std::collections::HashSet<u64> =
            dfs.stats.visit_order.iter().copied().collect();
        let bfs_set: std::collections::HashSet<u64> =
            bfs.stats.visit_order.iter().copied().collect();
        assert_eq!(dfs_set, bfs_set);
        assert_eq!(dfs.stats.states_explored, bfs.stats.states_explored);
    }

    /// The run cap reports an honest incomplete exploration.
    #[test]
    fn max_runs_reports_incomplete() {
        let config = McConfig::new(Arch::MasterWorker, 3, 3).with_max_runs(2);
        let ex = explore(&config, Strategy::Bfs);
        assert!(!ex.complete);
        assert!(ex.violation.is_none());
        assert!(ex.stats.runs <= 2);
    }
}
