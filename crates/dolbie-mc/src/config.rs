//! Model-checker configurations: which simulator, which fault envelope,
//! which environment.

use dolbie_core::cost::{DynCost, LatencyCost, LinearCost};
use dolbie_core::environment::FnEnvironment;
use dolbie_simnet::{FaultPlan, MembershipSchedule, RetryPolicy};

/// The protocol architecture a configuration explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Algorithm 1 over the master-worker simulator.
    MasterWorker,
    /// Algorithm 2 over the fully-distributed simulator.
    FullyDistributed,
    /// The leaderless token-ring extension architecture.
    Ring,
}

impl Arch {
    /// The tag the corresponding simulator stamps on its traces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Arch::MasterWorker => "master-worker",
            Arch::FullyDistributed => "fully-distributed",
            Arch::Ring => "ring",
        }
    }

    /// All three explorable architectures, in canonical order.
    #[must_use]
    pub fn all() -> [Arch; 3] {
        [Arch::MasterWorker, Arch::FullyDistributed, Arch::Ring]
    }
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash(seed: u64, salt: u64) -> u64 {
    splitmix64(seed ^ splitmix64(salt))
}

/// The chaos-mix environment: per-(round, worker) cost functions drawn
/// from a pure hash of `seed` — half latency-shaped, half linear. This is
/// *the* definition; the chaos sweep's `env_for` delegates here so the
/// model checker's cross-validation replays run against byte-identical
/// cost streams.
pub fn chaos_mix_env(seed: u64, n: usize) -> FnEnvironment<impl FnMut(usize) -> Vec<DynCost>> {
    FnEnvironment::new(n, move |round| {
        (0..n)
            .map(|i| {
                let h = hash(seed, ((round as u64) << 8) | i as u64);
                if h & 1 == 0 {
                    let speed = 50.0 + (h % 2000) as f64;
                    let comm = ((h >> 13) % 100) as f64 / 1000.0;
                    Box::new(LatencyCost::new(256.0, speed, comm)) as DynCost
                } else {
                    let slope = 0.1 + (h % 500) as f64 / 100.0;
                    Box::new(LinearCost::new(slope, ((h >> 9) % 5) as f64 * 0.02)) as DynCost
                }
            })
            .collect()
    })
}

/// One model-checking configuration: an architecture, a fleet, a horizon,
/// and the nondeterminism envelope (which fault coins exist for the
/// scheduler to flip).
///
/// The wire envelope is bounded by the retry policy: every physical
/// attempt of every message contributes at most three binary decision
/// points (data drop, duplication, ack drop), so a small `max_attempts`
/// keeps exploration tractable. [`McConfig::new`] defaults to two
/// attempts — one droppable attempt plus the forced final one — which is
/// the smallest envelope in which loss is still observable.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Which simulator to explore.
    pub arch: Arch,
    /// Fleet size.
    pub n: usize,
    /// Horizon in rounds.
    pub rounds: usize,
    /// Seed for [`chaos_mix_env`].
    pub env_seed: u64,
    /// Fault envelope: crash windows open crash decision points, nonzero
    /// drop/duplicate probabilities open wire decision points.
    pub plan: FaultPlan,
    /// Membership envelope: each scheduled event opens a hold-back
    /// decision point at its round boundary.
    pub schedule: MembershipSchedule,
    /// Test-only bug injection: disable the `straggler_pin_with_guard`
    /// overshoot guard (re-breaking the PR 4 simplex bug) so the checker
    /// pipeline has a real violation to find, shrink, and reproduce.
    pub sabotage_overshoot_guard: bool,
    /// Hard cap on executed runs; exploration reports `complete = false`
    /// when it trips instead of running away.
    pub max_runs: usize,
}

impl McConfig {
    /// A lossless, crash-free, churn-free configuration: the only
    /// nondeterminism is delivery order. Tighten or widen the envelope
    /// with the builder methods.
    #[must_use]
    pub fn new(arch: Arch, n: usize, rounds: usize) -> Self {
        let mut plan = FaultPlan::none();
        plan.retry = RetryPolicy::new(0.05, 2.0, 2);
        Self {
            arch,
            n,
            rounds,
            env_seed: 0xD01B_00AA,
            plan,
            schedule: MembershipSchedule::none(),
            sabotage_overshoot_guard: false,
            max_runs: 1 << 20,
        }
    }

    /// Replaces the environment seed.
    #[must_use]
    pub fn with_env_seed(mut self, seed: u64) -> Self {
        self.env_seed = seed;
        self
    }

    /// Replaces the fault envelope. The plan's retry policy bounds the
    /// wire decision points per message; keep `max_attempts` small.
    #[must_use]
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Replaces the membership envelope.
    #[must_use]
    pub fn with_schedule(mut self, schedule: MembershipSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Arms the test-only overshoot-guard sabotage.
    #[must_use]
    pub fn with_sabotage(mut self) -> Self {
        self.sabotage_overshoot_guard = true;
        self
    }

    /// Replaces the run cap.
    #[must_use]
    pub fn with_max_runs(mut self, max_runs: usize) -> Self {
        self.max_runs = max_runs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dolbie_core::Environment;

    #[test]
    fn chaos_mix_env_is_deterministic_and_mixed() {
        let mut env = chaos_mix_env(7, 8);
        let costs = env.reveal(3);
        assert_eq!(costs.len(), 8);
        let mut again = chaos_mix_env(7, 8);
        let twice = again.reveal(3);
        for (a, b) in costs.iter().zip(&twice) {
            assert_eq!(a.eval(0.3).to_bits(), b.eval(0.3).to_bits());
        }
    }

    #[test]
    fn default_config_is_lossless_with_a_two_attempt_envelope() {
        let c = McConfig::new(Arch::Ring, 4, 3);
        assert!(c.plan.is_lossless());
        assert_eq!(c.plan.retry.max_attempts, 2);
        assert!(!c.sabotage_overshoot_guard);
    }
}
