//! Counterexample minimization and reproducer emission.
//!
//! A violating decision prefix is shrunk greedily: strip trailing
//! defaults, then repeatedly try resetting each non-default choice to
//! the default (or one step toward it), keeping any reduction that still
//! fails. Because [`crate::replay()`] is a pure function of the prefix,
//! the shrunk prefix is stable and the emitted `#[test]` reproduces the
//! violation bitwise.

use crate::config::McConfig;
use crate::replay::replay;
use dolbie_simnet::MembershipChange;

/// Non-default choices in a prefix — the scheduler decisions a human has
/// to absorb to understand a reproducer.
#[must_use]
pub fn decision_count(prefix: &[u32]) -> usize {
    prefix.iter().filter(|&&c| c != 0).count()
}

fn strip_trailing_defaults(prefix: &mut Vec<u32>) {
    while prefix.last() == Some(&0) {
        prefix.pop();
    }
}

/// Greedily shrinks a failing prefix to a local minimum (shortest, most
/// defaulted) while [`replay()`] keeps failing. Returns the input verbatim
/// if it does not fail on its own (a cross-run confluence violation has
/// no single failing run to shrink).
#[must_use]
pub fn shrink(config: &McConfig, prefix: &[u32]) -> Vec<u32> {
    let fails = |p: &[u32]| replay(config, p).verdict.is_err();
    if !fails(prefix) {
        return prefix.to_vec();
    }
    let mut current = prefix.to_vec();
    strip_trailing_defaults(&mut current);
    loop {
        let mut improved = false;
        // Try truncating whole suffixes first — the biggest single cut.
        for len in 0..current.len() {
            let mut cand = current[..len].to_vec();
            strip_trailing_defaults(&mut cand);
            if cand.len() < current.len() && fails(&cand) {
                current = cand;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        // Then pull individual choices toward the default.
        for i in 0..current.len() {
            if current[i] == 0 {
                continue;
            }
            for replacement in [0, current[i] - 1] {
                let mut cand = current.clone();
                cand[i] = replacement;
                strip_trailing_defaults(&mut cand);
                if cand != current && fails(&cand) {
                    current = cand;
                    improved = true;
                    break;
                }
            }
            if improved {
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Renders a violation as a copy-pasteable `#[test]`: the configuration
/// rebuilt from builder calls, the shrunk prefix, and the replay
/// assertion. Replay purity makes the reproducer bitwise-stable.
#[must_use]
pub fn reproducer(config: &McConfig, prefix: &[u32], message: &str) -> String {
    let mut out = String::new();
    out.push_str("#[test]\nfn mc_reproducer() {\n");
    out.push_str(&format!("    // dolbie-mc counterexample: {message}\n"));
    out.push_str(&format!("    // {} non-default scheduler decision(s)\n", decision_count(prefix)));
    out.push_str(&format!(
        "    let mut plan = FaultPlan::seeded({:#018x})\n        .with_drop_probability({:?})\n        .with_duplicate_probability({:?})",
        config.plan.seed, config.plan.drop_probability, config.plan.duplicate_probability
    ));
    for c in &config.plan.crashes {
        out.push_str(&format!(
            "\n        .with_crash(Crash {{ worker: {}, from_round: {}, until_round: {} }})",
            c.worker, c.from_round, c.until_round
        ));
    }
    out.push_str(";\n");
    out.push_str(&format!(
        "    plan.retry = RetryPolicy::new({:?}, {:?}, {});\n",
        config.plan.retry.ack_timeout, config.plan.retry.backoff, config.plan.retry.max_attempts
    ));
    out.push_str("    let schedule = MembershipSchedule::none()");
    for e in &config.schedule.events {
        match e.change {
            MembershipChange::Leave(kind) => out.push_str(&format!(
                "\n        .with_leave({}, {}, LeaveKind::{kind:?})",
                e.round, e.worker
            )),
            MembershipChange::Join => {
                out.push_str(&format!("\n        .with_join({}, {})", e.round, e.worker));
            }
        }
    }
    out.push_str(";\n");
    out.push_str(&format!(
        "    let config = McConfig::new(Arch::{:?}, {}, {})\n        .with_env_seed({:#018x})\n        .with_plan(plan)\n        .with_schedule(schedule)",
        config.arch, config.n, config.rounds, config.env_seed
    ));
    if config.sabotage_overshoot_guard {
        out.push_str("\n        .with_sabotage()");
    }
    out.push_str(";\n");
    out.push_str(&format!("    let prefix: &[u32] = &{prefix:?};\n"));
    out.push_str(
        "    let outcome = dolbie_mc::replay(&config, prefix);\n    assert!(outcome.verdict.is_err(), \"counterexample no longer reproduces\");\n}\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Arch;

    #[test]
    fn decision_count_ignores_defaults() {
        assert_eq!(decision_count(&[]), 0);
        assert_eq!(decision_count(&[0, 0, 0]), 0);
        assert_eq!(decision_count(&[0, 2, 1, 0]), 2);
    }

    #[test]
    fn shrink_returns_passing_prefixes_verbatim() {
        let config = McConfig::new(Arch::MasterWorker, 2, 1);
        // The canonical path passes, so shrink must refuse to touch it.
        assert_eq!(shrink(&config, &[0, 1]), vec![0, 1]);
    }

    #[test]
    fn reproducer_contains_the_full_recipe() {
        let config = McConfig::new(Arch::Ring, 4, 3).with_sabotage();
        let text = reproducer(&config, &[0, 1], "feasibility: demo");
        assert!(text.contains("#[test]"));
        assert!(text.contains("feasibility: demo"));
        assert!(text.contains("Arch::Ring"));
        assert!(text.contains(".with_sabotage()"));
        assert!(text.contains("&[0, 1]"));
        assert!(text.contains("1 non-default scheduler decision(s)"));
    }
}
