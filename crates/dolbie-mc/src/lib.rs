//! # dolbie-mc
//!
//! An exhaustive interleaving model checker for the DOLBIE protocol
//! simulators (`dolbie-simnet`).
//!
//! The chaos sweeps *sample* the fault space; this crate *enumerates*
//! it. Every source of nondeterminism in the simulators — event dequeue
//! order, each wire-fault coin inside the retry envelope, each crash
//! window, each membership boundary — is routed through
//! [`dolbie_simnet::Scheduler`], and the checker drives that trait with
//! replayed decision prefixes ([`replay()`]): stateless CHESS-style
//! exploration, no simulator snapshots. Visited-state pruning over
//! canonical state fingerprints (allocation + α + protocol-phase state +
//! the in-flight message multiset + membership/crash masks, times
//! excluded) cuts the run tree where paths reconverge — delivery
//! reorderings collapse at round barriers, in-envelope drops and
//! duplicates are delay-only — which is what keeps N=3–5 fleets over
//! 3–6 rounds tractable ([`explore()`]).
//!
//! Every reachable run is checked against the shared chaos invariants
//! ([`dolbie_simnet::invariants`]) plus no-deadlock (the simulators'
//! deadlock asserts are caught and reported), plus a per-architecture
//! *confluence* rule: paths with identical crash/membership outcomes
//! must produce bitwise-identical trajectories. A violation is shrunk to
//! a minimal decision prefix ([`shrink()`]) and emitted as a
//! copy-pasteable `#[test]` ([`reproducer()`]).
//!
//! Honest caveat: this verifies the *configured* fleet, horizon, and
//! fault envelope exhaustively — it is bounded model checking, not a
//! proof about all N or unbounded rounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod explore;
pub mod replay;
pub mod shrink;

pub use config::{chaos_mix_env, Arch, McConfig};
pub use explore::{explore, Exploration, ExploreStats, Strategy, Violation};
pub use replay::{membership_masks, replay, DecisionRecord, ReplayScheduler, RunOutcome};
pub use shrink::{decision_count, reproducer, shrink};
