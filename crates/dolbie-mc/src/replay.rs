//! Replay-based controlled execution: one run = one decision prefix.
//!
//! The checker is *stateless* in the CHESS tradition: it never snapshots
//! simulator state. A run is identified by the vector of choice indices
//! it makes at the scheduler's decision points — index 0 is always the
//! default (FIFO delivery, the seeded fault-plan outcome, the scheduled
//! membership event firing) — and [`replay()`] re-executes the simulator
//! from scratch following the prefix, then taking defaults. The
//! [`ReplayScheduler`] records every decision point it passes
//! ([`DecisionRecord`]) plus the canonical state fingerprint observed
//! immediately before each delivery choice, which is what the explorer's
//! visited-state pruning keys on.

use crate::config::{chaos_mix_env, Arch, McConfig};
use dolbie_core::fingerprint::StateFp;
use dolbie_core::DolbieConfig;
use dolbie_simnet::invariants::check_trace;
use dolbie_simnet::{
    DecisionPoint, FixedLatency, FullyDistributedSim, MasterWorkerSim, ProtocolTrace, RingSim,
    Scheduler,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One decision point a run passed through, as recorded by the
/// [`ReplayScheduler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRecord {
    /// Number of alternatives at this point (`pending` for a delivery
    /// choice, 2 for every fault/membership coin).
    pub options: u32,
    /// The choice index taken (0 = default).
    pub chosen: u32,
    /// `None` for a delivery (dequeue) choice; `Some` for a binary
    /// fault/membership decision, identifying it.
    pub point: Option<DecisionPoint>,
    /// For binary decisions, the boolean the simulator actually received.
    pub outcome: bool,
    /// For delivery choices, the canonical state fingerprint the
    /// simulator reported immediately before the dequeue.
    pub fp: Option<u64>,
}

impl DecisionRecord {
    /// Whether this record is a delivery (dequeue) choice.
    #[must_use]
    pub fn is_delivery(&self) -> bool {
        self.point.is_none()
    }
}

/// A [`Scheduler`] that follows a decision prefix and defaults beyond
/// it, recording the full decision trail either way.
#[derive(Debug)]
pub struct ReplayScheduler {
    prefix: Vec<u32>,
    sabotage: bool,
    want_fp: bool,
    pending_fp: Option<u64>,
    /// Every decision point passed, in order.
    pub trail: Vec<DecisionRecord>,
}

impl ReplayScheduler {
    /// A scheduler replaying `prefix` with state observation on.
    #[must_use]
    pub fn new(prefix: &[u32]) -> Self {
        Self {
            prefix: prefix.to_vec(),
            sabotage: false,
            want_fp: true,
            pending_fp: None,
            trail: Vec::new(),
        }
    }

    /// Arms the test-only overshoot-guard sabotage hook.
    #[must_use]
    pub fn with_sabotage(mut self, sabotage: bool) -> Self {
        self.sabotage = sabotage;
        self
    }

    fn next_choice(&self, options: u32) -> u32 {
        self.prefix.get(self.trail.len()).copied().unwrap_or(0).min(options - 1)
    }
}

impl Scheduler for ReplayScheduler {
    fn choose_delivery(&mut self, pending: usize) -> usize {
        let options = pending as u32;
        let chosen = self.next_choice(options);
        self.trail.push(DecisionRecord {
            options,
            chosen,
            point: None,
            outcome: false,
            fp: self.pending_fp.take(),
        });
        chosen as usize
    }

    fn decide(&mut self, point: DecisionPoint, default: bool) -> bool {
        let chosen = self.next_choice(2);
        let outcome = if chosen == 0 { default } else { !default };
        self.trail.push(DecisionRecord {
            options: 2,
            chosen,
            point: Some(point),
            outcome,
            fp: None,
        });
        outcome
    }

    fn wants_state(&self) -> bool {
        self.want_fp
    }

    fn observe_state(&mut self, fingerprint: u64) {
        self.pending_fp = Some(fingerprint);
    }

    fn sabotage_overshoot_guard(&self) -> bool {
        self.sabotage
    }
}

/// The outcome of replaying one decision prefix.
#[derive(Debug)]
pub struct RunOutcome {
    /// Every decision point the run passed, in order.
    pub trail: Vec<DecisionRecord>,
    /// The trace, when the run completed without panicking.
    pub trace: Option<ProtocolTrace>,
    /// Invariants 1, 2, 3, 5 over the trace (a panic — the deadlock
    /// assert or an infeasible allocation — is reported here too).
    pub verdict: Result<(), String>,
}

impl RunOutcome {
    /// Hash of the run's fault-equivalence signature: the outcomes of
    /// every crash and membership decision, in order. Two runs with equal
    /// signatures differ only in delivery order and wire faults — which
    /// are delay-only — so the confluence invariant requires their
    /// trajectories to agree bitwise.
    #[must_use]
    pub fn fault_signature(&self) -> u64 {
        let mut fp = StateFp::new(0xD01B_516A);
        for d in &self.trail {
            match d.point {
                Some(DecisionPoint::Crash { worker, round }) => {
                    fp.push_u64(1);
                    fp.push_usize(worker);
                    fp.push_usize(round);
                    fp.push_u64(u64::from(d.outcome));
                }
                Some(DecisionPoint::Membership { round, worker, join }) => {
                    fp.push_u64(2);
                    fp.push_usize(round);
                    fp.push_usize(worker);
                    fp.push_u64(u64::from(join));
                    fp.push_u64(u64::from(d.outcome));
                }
                _ => {}
            }
        }
        fp.finish()
    }

    /// Bitwise digest of the decision trajectory (allocation bits, α
    /// bits, straggler per round), or `None` if the run panicked.
    #[must_use]
    pub fn trace_digest(&self) -> Option<u64> {
        let trace = self.trace.as_ref()?;
        let mut fp = StateFp::new(0xD01B_D16E);
        for r in &trace.rounds {
            fp.push_f64_slice(r.allocation.as_slice());
            fp.push_f64(r.alpha);
            fp.push_usize(r.straggler);
        }
        Some(fp.finish())
    }
}

/// Feeds pre-recorded membership outcomes back to
/// `MembershipSchedule::apply_round_sched`, for reconstructing the
/// membership masks a finished run actually used.
struct OutcomeFeed {
    outcomes: Vec<bool>,
    pos: usize,
}

impl Scheduler for OutcomeFeed {
    fn decide(&mut self, _point: DecisionPoint, default: bool) -> bool {
        let v = self.outcomes.get(self.pos).copied().unwrap_or(default);
        self.pos += 1;
        v
    }
}

/// The membership mask in force at each round of a finished run,
/// reconstructed by replaying the schedule against the trail's recorded
/// membership-decision outcomes (which appear in the trail in exactly
/// the order `apply_round_sched` consulted them).
#[must_use]
pub fn membership_masks(config: &McConfig, trail: &[DecisionRecord]) -> Vec<Vec<bool>> {
    let outcomes: Vec<bool> = trail
        .iter()
        .filter(|d| matches!(d.point, Some(DecisionPoint::Membership { .. })))
        .map(|d| d.outcome)
        .collect();
    let mut feed = OutcomeFeed { outcomes, pos: 0 };
    let mut members = vec![true; config.n];
    let mut masks = Vec::with_capacity(config.rounds);
    for t in 0..config.rounds {
        config.schedule.apply_round_sched(t, &mut members, &mut feed);
        masks.push(members.clone());
    }
    masks
}

/// Replays one decision prefix through the configured simulator and
/// checks the per-run invariants on the result.
///
/// Runs are pure functions of `(config, prefix)`: replaying the same
/// prefix twice produces bitwise-identical trails, traces, and verdicts,
/// which is what makes emitted reproducers stable.
#[must_use]
pub fn replay(config: &McConfig, prefix: &[u32]) -> RunOutcome {
    let mut sched = ReplayScheduler::new(prefix).with_sabotage(config.sabotage_overshoot_guard);
    let rounds = config.rounds;
    let result = catch_unwind(AssertUnwindSafe(|| match config.arch {
        Arch::MasterWorker => MasterWorkerSim::new(
            chaos_mix_env(config.env_seed, config.n),
            DolbieConfig::new(),
            FixedLatency::lan(),
        )
        .with_fault_plan(config.plan.clone())
        .with_membership(config.schedule.clone())
        .run_with_scheduler(rounds, &mut sched),
        Arch::FullyDistributed => FullyDistributedSim::new(
            chaos_mix_env(config.env_seed, config.n),
            DolbieConfig::new(),
            FixedLatency::lan(),
        )
        .with_fault_plan(config.plan.clone())
        .with_membership(config.schedule.clone())
        .run_with_scheduler(rounds, &mut sched),
        Arch::Ring => RingSim::new(
            chaos_mix_env(config.env_seed, config.n),
            DolbieConfig::new(),
            FixedLatency::lan(),
        )
        .with_fault_plan(config.plan.clone())
        .with_membership(config.schedule.clone())
        .run_with_scheduler(rounds, &mut sched),
    }));
    let (trace, verdict) = match result {
        Ok(trace) => {
            let masks = membership_masks(config, &sched.trail);
            let verdict = check_trace(&trace, rounds, |t| masks[t].clone());
            (Some(trace), verdict)
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic".into());
            (None, Err(format!("panic: {msg}")))
        }
    };
    RunOutcome { trail: sched.trail, trace, verdict }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_replay_matches_the_uncontrolled_sim_bitwise() {
        let config = McConfig::new(Arch::MasterWorker, 3, 3);
        let outcome = replay(&config, &[]);
        assert!(outcome.verdict.is_ok(), "{:?}", outcome.verdict);
        let free = MasterWorkerSim::new(
            chaos_mix_env(config.env_seed, config.n),
            DolbieConfig::new(),
            FixedLatency::lan(),
        )
        .run(config.rounds);
        let trace = outcome.trace.expect("run completed");
        assert_eq!(trace.rounds.len(), free.rounds.len());
        for (a, b) in trace.rounds.iter().zip(&free.rounds) {
            assert_eq!(a.allocation.l2_distance(&b.allocation), 0.0);
            assert_eq!(a.alpha.to_bits(), b.alpha.to_bits());
            assert_eq!(a.straggler, b.straggler);
        }
    }

    #[test]
    fn replay_is_a_pure_function_of_the_prefix() {
        let config = McConfig::new(Arch::Ring, 4, 3);
        let a = replay(&config, &[2, 1]);
        let b = replay(&config, &[2, 1]);
        assert_eq!(a.trail, b.trail);
        assert_eq!(a.trace_digest(), b.trace_digest());
        assert_eq!(a.verdict, b.verdict);
    }

    #[test]
    fn flipping_a_delivery_choice_changes_the_trail_not_the_verdict() {
        let config = McConfig::new(Arch::MasterWorker, 3, 2);
        let base = replay(&config, &[]);
        assert!(base.verdict.is_ok());
        let first_delivery =
            base.trail.iter().position(DecisionRecord::is_delivery).expect("n=3 has reorderings");
        let mut prefix = vec![0u32; first_delivery + 1];
        prefix[first_delivery] = 1;
        let flipped = replay(&config, &prefix);
        assert!(flipped.verdict.is_ok(), "{:?}", flipped.verdict);
        assert_eq!(flipped.trail[first_delivery].chosen, 1);
        // Delivery order is delay-only: the trajectories agree bitwise.
        assert_eq!(base.trace_digest(), flipped.trace_digest());
        assert_eq!(base.fault_signature(), flipped.fault_signature());
    }
}
