//! # dolbie-edge
//!
//! The second motivating application of the DOLBIE paper (§III-B): **task
//! offloading in edge computing**. A user device splits a stream of
//! computation tasks between local execution (`λ_0`) and `N` heterogeneous
//! edge servers (`λ_1..λ_N`). Each round the completion time is the
//! maximum over the chosen execution paths, and all rates fluctuate
//! unpredictably — an online min-max load balancing problem over `N + 1`
//! "workers".
//!
//! The cost structure is deliberately *non-linear*: a server's execution
//! time includes a queueing term that saturates as its assigned load
//! approaches its service capacity, which is exactly the regime where the
//! proportional ABS baseline misbehaves and DOLBIE's inverse-based update
//! shines.
//!
//! ```
//! use dolbie_edge::{EdgeConfig, EdgeScenario};
//! use dolbie_core::{run_episode, Dolbie, EpisodeOptions};
//!
//! let mut env = EdgeScenario::sample(EdgeConfig::small(), 7);
//! let mut dolbie = Dolbie::new(env.num_participants());
//! let trace = run_episode(&mut dolbie, &mut env, EpisodeOptions::new(50));
//! assert_eq!(trace.records.len(), 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dolbie_core::cost::{CostFunction, DynCost, LinearCost};
use dolbie_core::Environment;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The per-server offloading cost `f(x) = m·x + s·x / (c − x)`: an affine
/// uplink-transmission term plus a queueing execution term that saturates
/// as the assigned load approaches the server's capacity `c > 1`.
///
/// Unlike composing [`LinearCost`] with
/// [`ReciprocalCost`](dolbie_core::cost::ReciprocalCost) via
/// [`SumCost`](dolbie_core::cost::SumCost), this combined form supports an
/// **exact closed-form inverse** (the smaller root of a quadratic), so the
/// oracle's feasibility probes and the workers' eq. (4) updates never fall
/// back to bisection on the edge scenario — the dominant cost of the `OPT`
/// baseline there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerCost {
    transmit: f64,
    service: f64,
    capacity: f64,
}

impl ServerCost {
    /// Creates `f(x) = transmit·x + service·x / (capacity − x)`.
    ///
    /// # Panics
    ///
    /// Panics if `transmit` or `service` is negative, `capacity <= 1`
    /// (the cost must be finite on `[0, 1]`), or any parameter is
    /// non-finite.
    pub fn new(transmit: f64, service: f64, capacity: f64) -> Self {
        assert!(
            transmit.is_finite() && service.is_finite() && capacity.is_finite(),
            "parameters must be finite"
        );
        assert!(transmit >= 0.0 && service >= 0.0, "rates must be non-negative");
        assert!(capacity > 1.0, "capacity must exceed 1 so the cost is finite on [0, 1]");
        Self { transmit, service, capacity }
    }
}

impl CostFunction for ServerCost {
    fn eval(&self, x: f64) -> f64 {
        self.transmit * x + self.service * x / (self.capacity - x)
    }

    fn max_share_within(&self, level: f64) -> Option<f64> {
        if level < 0.0 {
            return None;
        }
        let (m, s, c) = (self.transmit, self.service, self.capacity);
        if m == 0.0 {
            if s == 0.0 {
                return Some(1.0);
            }
            return Some((c * level / (s + level)).min(1.0));
        }
        // m·x + s·x/(c−x) = L  ⇔  m·x² − (m·c + s + L)·x + L·c = 0; the
        // smaller root is the solution below the pole at x = c. Written in
        // the cancellation-free form 2·L·c / (b + √(b² − 4·m·L·c)).
        let b = m * c + s + level;
        let disc = (b * b - 4.0 * m * level * c).max(0.0);
        let x = 2.0 * level * c / (b + disc.sqrt());
        Some(x.clamp(0.0, 1.0))
    }

    fn derivative(&self, x: f64) -> f64 {
        let d = self.capacity - x;
        self.transmit + self.service * self.capacity / (d * d)
    }

    fn lipschitz_bound(&self) -> f64 {
        self.derivative(1.0)
    }
}

/// Parameters of the offloading scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeConfig {
    /// Number of edge servers `N` (participants are `N + 1` including the
    /// local device).
    pub num_servers: usize,
    /// Total task workload per round, in giga-cycles.
    pub task_gigacycles: f64,
    /// Total task data per round, in megabytes (uplink transfer).
    pub task_megabytes: f64,
    /// Local CPU speed in giga-cycles/second (nominal).
    pub local_speed: f64,
    /// Range of nominal server speeds in giga-cycles/second.
    pub server_speed_range: (f64, f64),
    /// Range of nominal uplink rates in megabytes/second.
    pub uplink_range: (f64, f64),
    /// Range of server queueing capacities (as a multiple of full load; a
    /// capacity of 1.5 means the server saturates at 150% of the round's
    /// whole workload).
    pub capacity_range: (f64, f64),
    /// Per-round multiplicative jitter half-width on every rate
    /// (`rate ← rate · U[1−j, 1+j]`).
    pub jitter: f64,
}

impl EdgeConfig {
    /// A 1-user, 8-server scenario with pronounced heterogeneity.
    pub fn paper_like() -> Self {
        Self {
            num_servers: 8,
            task_gigacycles: 6.0,
            task_megabytes: 40.0,
            local_speed: 1.0,
            server_speed_range: (2.0, 12.0),
            uplink_range: (5.0, 60.0),
            capacity_range: (1.3, 3.0),
            jitter: 0.15,
        }
    }

    /// A small 3-server scenario for fast tests and the quickstart.
    pub fn small() -> Self {
        let mut cfg = Self::paper_like();
        cfg.num_servers = 3;
        cfg
    }
}

#[derive(Debug, Clone)]
struct ServerSim {
    speed: f64,
    uplink: f64,
    capacity: f64,
}

/// The edge-offloading environment: participant 0 is the local device,
/// participants `1..=N` are the edge servers.
#[derive(Debug, Clone)]
pub struct EdgeScenario {
    config: EdgeConfig,
    servers: Vec<ServerSim>,
    rng: StdRng,
}

impl EdgeScenario {
    /// Samples server speeds, uplinks and capacities from the configured
    /// ranges, seeded for reproducibility (and clairvoyant replay).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no servers, non-positive
    /// rates, capacities not exceeding 1, or jitter outside `[0, 1)`).
    pub fn sample(config: EdgeConfig, seed: u64) -> Self {
        assert!(config.num_servers > 0, "at least one edge server required");
        assert!(config.task_gigacycles > 0.0 && config.task_megabytes > 0.0);
        assert!(config.local_speed > 0.0, "local speed must be positive");
        assert!((0.0..1.0).contains(&config.jitter), "jitter must be in [0, 1)");
        let (slo, shi) = config.server_speed_range;
        let (ulo, uhi) = config.uplink_range;
        let (clo, chi) = config.capacity_range;
        assert!(slo > 0.0 && shi >= slo, "invalid server speed range");
        assert!(ulo > 0.0 && uhi >= ulo, "invalid uplink range");
        assert!(clo > 1.0 && chi >= clo, "capacities must exceed 1 for finite costs");
        let mut rng = StdRng::seed_from_u64(seed);
        let servers = (0..config.num_servers)
            .map(|_| ServerSim {
                speed: if shi > slo { rng.gen_range(slo..shi) } else { slo },
                uplink: if uhi > ulo { rng.gen_range(ulo..uhi) } else { ulo },
                capacity: if chi > clo { rng.gen_range(clo..chi) } else { clo },
            })
            .collect();
        Self { config, servers, rng }
    }

    /// Number of participants (`N + 1`, local device included).
    pub fn num_participants(&self) -> usize {
        self.servers.len() + 1
    }

    /// The sampled nominal server speeds (giga-cycles/second).
    pub fn server_speeds(&self) -> Vec<f64> {
        self.servers.iter().map(|s| s.speed).collect()
    }

    fn jittered(&mut self, nominal: f64) -> f64 {
        let j = self.config.jitter;
        if j == 0.0 {
            return nominal;
        }
        nominal * self.rng.gen_range(1.0 - j..1.0 + j)
    }
}

impl Environment for EdgeScenario {
    fn num_workers(&self) -> usize {
        self.num_participants()
    }

    fn reveal(&mut self, _round: usize) -> Vec<DynCost> {
        let w = self.config.task_gigacycles;
        let d = self.config.task_megabytes;
        // Local execution: pure compute, linear in the retained fraction.
        let local_speed = self.jittered(self.config.local_speed);
        let mut costs: Vec<DynCost> = vec![Box::new(LinearCost::new(w / local_speed, 0.0))];
        for idx in 0..self.servers.len() {
            let (speed, uplink, capacity) = {
                let s = &self.servers[idx];
                (s.speed, s.uplink, s.capacity)
            };
            let speed = self.jittered(speed);
            let uplink = self.jittered(uplink);
            // Transmission (linear in the offloaded fraction) plus
            // execution (queueing delay saturating near the server's
            // capacity), combined so the inverse stays closed-form.
            costs.push(Box::new(ServerCost::new(d / uplink, w / speed, capacity)));
        }
        costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dolbie_baselines::paper_suite;
    use dolbie_core::cost::CostFunction;
    use dolbie_core::{run_episode, Dolbie, EpisodeOptions};

    #[test]
    fn server_cost_matches_sum_composition() {
        use dolbie_core::cost::{ReciprocalCost, SumCost};
        let combined = ServerCost::new(0.8, 1.4, 1.6);
        let composed = SumCost::new(LinearCost::new(0.8, 0.0), ReciprocalCost::new(0.0, 1.4, 1.6));
        for k in 0..=10 {
            let x = k as f64 / 10.0;
            assert_eq!(combined.eval(x), composed.eval(x), "eval at {x}");
            assert!((combined.derivative(x) - composed.derivative(x)).abs() < 1e-12);
        }
        assert_eq!(combined.lipschitz_bound(), composed.lipschitz_bound());
    }

    #[test]
    fn server_cost_inverse_is_exact() {
        for (m, s, c) in [(0.5, 1.0, 1.5), (2.0, 0.3, 2.5), (0.0, 1.0, 1.2), (1.0, 0.0, 2.0)] {
            let f = ServerCost::new(m, s, c);
            for k in 0..=10 {
                let x = k as f64 / 10.0;
                let level = f.eval(x);
                let back = f.max_share_within(level).unwrap();
                assert!((back - x).abs() < 1e-10, "m={m} s={s} c={c}: x={x} back={back}");
            }
            assert_eq!(f.max_share_within(-0.1), None);
            assert_eq!(f.max_share_within(1e12), Some(1.0));
            assert!(f.max_share_within(0.0).unwrap().abs() < 1e-15);
        }
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let a = EdgeScenario::sample(EdgeConfig::paper_like(), 5);
        let b = EdgeScenario::sample(EdgeConfig::paper_like(), 5);
        assert_eq!(a.server_speeds(), b.server_speeds());
        let c = EdgeScenario::sample(EdgeConfig::paper_like(), 6);
        assert_ne!(a.server_speeds(), c.server_speeds());
    }

    #[test]
    fn participants_include_local_device() {
        let env = EdgeScenario::sample(EdgeConfig::small(), 1);
        assert_eq!(env.num_participants(), 4);
        assert_eq!(env.num_workers(), 4);
    }

    #[test]
    fn costs_are_increasing_and_zero_at_zero_for_local() {
        let mut env = EdgeScenario::sample(EdgeConfig::small(), 2);
        let costs = env.reveal(0);
        // Local execution costs nothing when everything is offloaded.
        assert_eq!(costs[0].eval(0.0), 0.0);
        for (i, f) in costs.iter().enumerate() {
            let mut last = f.eval(0.0);
            for k in 1..=10 {
                let v = f.eval(k as f64 / 10.0);
                assert!(v + 1e-12 >= last, "cost {i} must be non-decreasing");
                last = v;
            }
        }
    }

    #[test]
    fn queueing_makes_server_costs_convex() {
        let mut cfg = EdgeConfig::small();
        cfg.jitter = 0.0;
        let mut env = EdgeScenario::sample(cfg, 3);
        let costs = env.reveal(0);
        // The server cost (index >= 1) should be super-linear: doubling the
        // load more than doubles the execution component near saturation.
        let f = &costs[1];
        let half = f.eval(0.5);
        let full = f.eval(1.0);
        assert!(full > 2.0 * half * 0.99, "expected convex growth: {half} vs {full}");
    }

    #[test]
    fn clone_replays_for_clairvoyant_opt() {
        let env = EdgeScenario::sample(EdgeConfig::small(), 11);
        let mut a = env.clone();
        let mut b = env;
        for t in 0..5 {
            let ca = a.reveal(t);
            let cb = b.reveal(t);
            for (x, y) in ca.iter().zip(cb.iter()) {
                assert_eq!(x.eval(0.4), y.eval(0.4));
            }
        }
    }

    #[test]
    fn dolbie_improves_over_time_and_suite_runs() {
        let env = EdgeScenario::sample(EdgeConfig::paper_like(), 17);
        let mut dolbie = Dolbie::new(env.num_participants());
        let mut driver = env.clone();
        let trace = run_episode(&mut dolbie, &mut driver, EpisodeOptions::new(120));
        let early: f64 = trace.global_costs()[..10].iter().sum();
        let late: f64 = trace.global_costs()[110..].iter().sum();
        assert!(late < early, "DOLBIE should reduce completion time: {early} -> {late}");

        // The whole §VI suite runs on the edge scenario too.
        let mut totals = Vec::new();
        for mut balancer in paper_suite(env.num_participants(), env.clone()) {
            let mut driver = env.clone();
            let t = run_episode(balancer.as_mut(), &mut driver, EpisodeOptions::new(60));
            totals.push((t.algorithm.clone(), t.total_cost()));
        }
        let opt = totals.iter().find(|(n, _)| n == "OPT").unwrap().1;
        for (name, total) in &totals {
            assert!(opt <= total + 1e-6, "OPT must lower-bound {name}");
        }
    }
}
