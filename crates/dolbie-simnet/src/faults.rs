//! Deterministic, seeded fault injection shared by all three protocol
//! simulators.
//!
//! The paper motivates the fully-distributed architecture with fault
//! tolerance ("no single point of failure", §IV-C) but never evaluates
//! faults. This module is the evaluation substrate: one [`FaultPlan`]
//! describes every fault a run injects —
//!
//! - **crash windows** ([`Crash`]): a worker neither executes nor responds
//!   for a range of rounds; survivors freeze its share and balance among
//!   themselves (the recovery policy all three architectures implement
//!   identically, so their trajectories agree even through faults);
//! - **message loss and duplication**: every logical protocol message is
//!   carried by a simulated reliable link layer — each physical
//!   transmission is dropped with [`FaultPlan::drop_probability`] and an
//!   arriving copy is duplicated with
//!   [`FaultPlan::duplicate_probability`]; the sender retransmits on an
//!   ack timeout with exponential backoff ([`RetryPolicy`]) until a data
//!   copy *and* its ack both get through (the final attempt is forced
//!   through, so delivery — and therefore protocol progress — is
//!   guaranteed);
//! - **cost timeouts**: a coordinator-side report deadline. Only the
//!   master-worker protocol has a coordinator, so
//!   [`FaultPlan::cost_timeout`] is honored by `MasterWorkerSim` and
//!   documented as a no-op for the leaderless architectures.
//!
//! ## Determinism
//!
//! Fault decisions must not depend on execution order — the experiment
//! harness replays runs across arbitrary thread counts and requires
//! byte-identical outputs. Every drop/duplicate decision is therefore a
//! pure hash of `(seed, round, from, to, payload kind, attempt, channel)`
//! rather than a draw from a stateful RNG: the same message meets the same
//! fate no matter when it is sent or what else is in flight. An empty plan
//! ([`FaultPlan::none`]) takes a dedicated lossless path through
//! [`FaultPlan::transmit`] that adds no retries, acks, or bytes, so
//! fault-free runs reproduce the pre-fault-layer traces bitwise.

use crate::message::{Message, NodeId, Payload};

/// A window of rounds during which a worker is unresponsive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// The crashed worker.
    pub worker: usize,
    /// First affected round (inclusive).
    pub from_round: usize,
    /// First healthy round again (exclusive end).
    pub until_round: usize,
}

impl Crash {
    /// Whether this crash window makes `worker` unresponsive in `round`.
    pub fn covers(&self, worker: usize, round: usize) -> bool {
        self.worker == worker && round >= self.from_round && round < self.until_round
    }
}

/// Retransmission parameters of the simulated reliable link layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Seconds the sender waits for an ack before the first retransmission.
    pub ack_timeout: f64,
    /// Multiplicative backoff applied to the ack timeout per retry.
    pub backoff: f64,
    /// Hard cap on physical transmissions of one logical message; the
    /// final attempt is forced through so delivery is guaranteed.
    pub max_attempts: usize,
}

impl RetryPolicy {
    /// Validates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `ack_timeout` is not positive and finite, `backoff < 1`,
    /// or `max_attempts == 0`.
    pub fn new(ack_timeout: f64, backoff: f64, max_attempts: usize) -> Self {
        assert!(
            ack_timeout > 0.0 && ack_timeout.is_finite(),
            "ack timeout must be positive and finite"
        );
        assert!(backoff >= 1.0 && backoff.is_finite(), "backoff factor must be >= 1");
        assert!(max_attempts >= 1, "at least one transmission attempt is required");
        Self { ack_timeout, backoff, max_attempts }
    }
}

impl Default for RetryPolicy {
    /// 50 ms initial ack timeout, doubling per retry, at most 16 attempts.
    fn default() -> Self {
        Self { ack_timeout: 0.05, backoff: 2.0, max_attempts: 16 }
    }
}

/// Wire size of a link-layer acknowledgement frame: the 16-byte header
/// (sender, recipient, round tag) and no payload, matching the accounting
/// model of [`Payload::size_bytes`].
pub const ACK_BYTES: usize = 16;

/// A seeded, deterministic description of every fault a run injects.
///
/// # Examples
///
/// ```
/// use dolbie_simnet::faults::{Crash, FaultPlan};
///
/// let plan = FaultPlan::seeded(7)
///     .with_crash(Crash { worker: 1, from_round: 3, until_round: 6 })
///     .with_drop_probability(0.1);
/// assert!(plan.crashed(1, 4));
/// assert!(!plan.crashed(1, 6));
/// assert!(!plan.is_lossless());
/// assert!(FaultPlan::none().is_lossless());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every per-message fault decision.
    pub seed: u64,
    /// Crash windows.
    pub crashes: Vec<Crash>,
    /// Coordinator-side cost-report deadline in seconds (master-worker
    /// only; the leaderless architectures have no coordinator to enforce
    /// it and ignore the field).
    pub cost_timeout: Option<f64>,
    /// Probability that a physical transmission (data or ack) is dropped.
    pub drop_probability: f64,
    /// Probability that a delivered data copy is duplicated in flight.
    pub duplicate_probability: f64,
    /// Retransmission parameters used when the plan is lossy.
    pub retry: RetryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Distinguishes the hash streams of one attempt's fault decisions.
#[derive(Clone, Copy)]
enum Channel {
    Data,
    Ack,
    Duplicate,
}

impl FaultPlan {
    /// The empty plan: no crashes, no timeout, lossless links.
    pub fn none() -> Self {
        Self {
            seed: 0,
            crashes: Vec::new(),
            cost_timeout: None,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            retry: RetryPolicy::default(),
        }
    }

    /// An empty plan carrying `seed` for later probabilistic faults.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, ..Self::none() }
    }

    /// Adds a crash window.
    pub fn with_crash(mut self, crash: Crash) -> Self {
        self.crashes.push(crash);
        self
    }

    /// Sets the coordinator-side cost-report deadline (seconds from the
    /// round's barrier time).
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not positive and finite.
    pub fn with_cost_timeout(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0 && seconds.is_finite(), "timeout must be positive");
        self.cost_timeout = Some(seconds);
        self
    }

    /// Sets the per-transmission drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)` (a probability of 1 could never
    /// deliver anything without the forced final attempt doing all the
    /// work, which is a misconfiguration, not a fault model).
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1)");
        self.drop_probability = p;
        self
    }

    /// Sets the per-delivery duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn with_duplicate_probability(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "duplicate probability must be in [0, 1)");
        self.duplicate_probability = p;
        self
    }

    /// Overrides the retransmission parameters.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Whether any crash window makes `worker` unresponsive in `round`.
    pub fn crashed(&self, worker: usize, round: usize) -> bool {
        self.crashes.iter().any(|c| c.covers(worker, round))
    }

    /// Whether the plan's links neither drop nor duplicate messages.
    pub fn is_lossless(&self) -> bool {
        self.drop_probability == 0.0 && self.duplicate_probability == 0.0
    }

    /// Largest worker index any crash window names, for range validation.
    pub fn max_crash_worker(&self) -> Option<usize> {
        self.crashes.iter().map(|c| c.worker).max()
    }

    /// Simulates carrying one logical message over the (possibly lossy)
    /// link, given the latency model's one-way delay for it.
    ///
    /// Returns when the receiver first holds the message and what the
    /// retransmission machinery cost on the wire. On a lossless plan this
    /// is exactly one transmission with no acks — byte-for-byte the
    /// pre-fault-layer behavior.
    pub fn transmit(&self, message: &Message, latency_delay: f64) -> LinkOutcome {
        self.transmit_with(message, latency_delay, &mut crate::sched::FifoScheduler)
    }

    /// [`transmit`](Self::transmit) with every drop/duplicate/ack-loss
    /// coin routed through a [`Scheduler`](crate::sched::Scheduler): each
    /// becomes a binary [`decide`](crate::sched::Scheduler::decide) whose
    /// default is the seeded hash outcome, so the
    /// [`FifoScheduler`](crate::sched::FifoScheduler) reproduces
    /// `transmit` bitwise while a model checker can branch on both sides
    /// of every coin within the retry envelope. The forced final attempt
    /// never consults the scheduler — loss stays delay-only by
    /// construction, in the controlled runs too.
    pub fn transmit_with(
        &self,
        message: &Message,
        latency_delay: f64,
        sched: &mut dyn crate::sched::Scheduler,
    ) -> LinkOutcome {
        use crate::sched::DecisionPoint;
        if self.is_lossless() {
            return LinkOutcome {
                delivery_delay: latency_delay,
                retries: 0,
                acks: 0,
                duplicates: 0,
                extra_bytes: 0,
            };
        }
        let round = message.round;
        let mut outcome =
            LinkOutcome { delivery_delay: 0.0, retries: 0, acks: 0, duplicates: 0, extra_bytes: 0 };
        let mut delivery: Option<f64> = None;
        let mut offset = 0.0;
        let mut rto = self.retry.ack_timeout;
        for attempt in 0..self.retry.max_attempts {
            let forced = attempt + 1 == self.retry.max_attempts;
            if attempt > 0 {
                outcome.retries += 1;
                outcome.extra_bytes += message.size_bytes();
            }
            let data_arrives = forced
                || !sched.decide(
                    DecisionPoint::WireDrop { round, attempt },
                    self.chance(message, attempt, Channel::Data, self.drop_probability),
                );
            if data_arrives {
                if delivery.is_none() {
                    delivery = Some(offset + latency_delay);
                }
                if sched.decide(
                    DecisionPoint::WireDuplicate { round, attempt },
                    self.chance(message, attempt, Channel::Duplicate, self.duplicate_probability),
                ) {
                    outcome.duplicates += 1;
                    outcome.extra_bytes += message.size_bytes();
                }
                // The receiver acks every arriving copy; the sender stops
                // once one ack makes it back.
                outcome.acks += 1;
                outcome.extra_bytes += ACK_BYTES;
                let ack_arrives = forced
                    || !sched.decide(
                        DecisionPoint::WireAckDrop { round, attempt },
                        self.chance(message, attempt, Channel::Ack, self.drop_probability),
                    );
                if ack_arrives {
                    break;
                }
            }
            offset += rto;
            rto *= self.retry.backoff;
        }
        outcome.delivery_delay = delivery.expect("the forced final attempt always delivers");
        outcome
    }

    /// Pure per-message fault decision: `true` with probability `p`,
    /// independent of execution order.
    fn chance(&self, message: &Message, attempt: usize, channel: Channel, p: f64) -> bool {
        self.hashed_chance(
            [
                message.round as u64,
                node_code(message.from),
                node_code(message.to),
                payload_kind(&message.payload),
                attempt as u64,
                channel as u64,
            ],
            p,
        )
    }

    /// Whether a real socket-layer data transmission is dropped.
    ///
    /// This is the wire-runtime (`dolbie-net`) counterpart of the
    /// simulator-internal decision stream: the same plan drives the same
    /// kind of pure, order-independent per-attempt fate, but keyed on a
    /// link-layer sequence number and node codes instead of a simulated
    /// [`Message`], because the wire runtime frames its own traffic.
    ///
    /// # Examples
    ///
    /// ```
    /// use dolbie_simnet::faults::FaultPlan;
    ///
    /// let plan = FaultPlan::seeded(7).with_drop_probability(0.5);
    /// // Pure: the same transmission always meets the same fate.
    /// assert_eq!(plan.wire_drop(3, 0, 1, 0), plan.wire_drop(3, 0, 1, 0));
    /// // Lossless plans never drop.
    /// assert!(!FaultPlan::none().wire_drop(3, 0, 1, 0));
    /// ```
    pub fn wire_drop(&self, seq: u64, from: u64, to: u64, attempt: usize) -> bool {
        self.hashed_chance(
            [seq, from, to, WIRE_KIND, attempt as u64, Channel::Data as u64],
            self.drop_probability,
        )
    }

    /// Whether a delivered socket-layer data copy is duplicated in flight.
    /// Same decision model as [`FaultPlan::wire_drop`].
    pub fn wire_duplicate(&self, seq: u64, from: u64, to: u64, attempt: usize) -> bool {
        self.hashed_chance(
            [seq, from, to, WIRE_KIND, attempt as u64, Channel::Duplicate as u64],
            self.duplicate_probability,
        )
    }

    /// Whether the acknowledgement of a delivered socket-layer copy is
    /// dropped on the way back. Same decision model as
    /// [`FaultPlan::wire_drop`].
    pub fn wire_ack_drop(&self, seq: u64, from: u64, to: u64, attempt: usize) -> bool {
        self.hashed_chance(
            [seq, from, to, WIRE_KIND, attempt as u64, Channel::Ack as u64],
            self.drop_probability,
        )
    }

    /// The shared pure-hash Bernoulli draw behind every fault decision.
    fn hashed_chance(&self, words: [u64; 6], p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for word in words {
            h = splitmix64(h ^ word);
        }
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Payload-kind code reserved for the wire runtime's decision stream, so
/// socket-layer fates never collide with any simulated [`Payload`] kind.
const WIRE_KIND: u64 = 0xD0;

/// One logical message's trip through the link layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkOutcome {
    /// Seconds from the logical send until the receiver first holds the
    /// message (retransmission wait included).
    pub delivery_delay: f64,
    /// Physical data transmissions beyond the first attempt.
    pub retries: usize,
    /// Acknowledgement frames the receiver put on the wire.
    pub acks: usize,
    /// Network-duplicated data copies (deduplicated before the protocol
    /// sees them).
    pub duplicates: usize,
    /// Wire bytes beyond the first data transmission (retransmissions,
    /// duplicates, and acks).
    pub extra_bytes: usize,
}

/// Per-round wire accounting shared by the protocol simulators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Logical protocol messages (the §IV-C counts).
    pub messages: usize,
    /// Total wire bytes, retransmissions and acks included.
    pub bytes: usize,
    /// Data retransmissions beyond each message's first attempt.
    pub retries: usize,
    /// Acknowledgement frames.
    pub acks: usize,
    /// Network-duplicated data copies.
    pub duplicates: usize,
}

impl LinkStats {
    /// Folds one logical message and its link-layer outcome into the
    /// round's totals.
    pub fn record(&mut self, message: &Message, outcome: &LinkOutcome) {
        self.messages += 1;
        self.bytes += message.size_bytes() + outcome.extra_bytes;
        self.retries += outcome.retries;
        self.acks += outcome.acks;
        self.duplicates += outcome.duplicates;
    }
}

fn node_code(node: NodeId) -> u64 {
    match node {
        NodeId::Master => 0,
        NodeId::Worker(i) => i as u64 + 1,
    }
}

fn payload_kind(payload: &Payload) -> u64 {
    match payload {
        Payload::LocalCost { .. } => 1,
        Payload::CostAndStepSize { .. } => 2,
        Payload::Coordination { .. } => 3,
        Payload::Decision { .. } => 4,
        Payload::StragglerAssignment { .. } => 5,
        Payload::RingAggregate { .. } => 6,
        Payload::RingUpdate { .. } => 7,
        Payload::ShardAggregate { .. } => 8,
        Payload::ShardCoordination { .. } => 9,
        Payload::ShardPartial { .. } => 10,
        Payload::ShardRescale { .. } => 11,
    }
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(round: usize, from: usize, to: usize) -> Message {
        Message {
            from: NodeId::Worker(from),
            to: NodeId::Worker(to),
            round,
            payload: Payload::Decision { share: 0.25 },
        }
    }

    #[test]
    fn lossless_plan_is_a_single_bare_transmission() {
        let plan = FaultPlan::none();
        let out = plan.transmit(&msg(0, 0, 1), 0.003);
        assert_eq!(
            out,
            LinkOutcome {
                delivery_delay: 0.003,
                retries: 0,
                acks: 0,
                duplicates: 0,
                extra_bytes: 0
            }
        );
    }

    #[test]
    fn crash_windows_cover_their_rounds() {
        let plan = FaultPlan::none()
            .with_crash(Crash { worker: 2, from_round: 5, until_round: 9 })
            .with_crash(Crash { worker: 0, from_round: 0, until_round: 1 });
        assert!(plan.crashed(2, 5) && plan.crashed(2, 8));
        assert!(!plan.crashed(2, 4) && !plan.crashed(2, 9));
        assert!(plan.crashed(0, 0) && !plan.crashed(1, 0));
        assert_eq!(plan.max_crash_worker(), Some(2));
        assert_eq!(FaultPlan::none().max_crash_worker(), None);
    }

    #[test]
    fn transmit_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(1).with_drop_probability(0.5);
        let b = FaultPlan::seeded(2).with_drop_probability(0.5);
        let outcomes_a: Vec<LinkOutcome> =
            (0..64).map(|t| a.transmit(&msg(t, 0, 1), 0.001)).collect();
        let outcomes_a2: Vec<LinkOutcome> =
            (0..64).map(|t| a.transmit(&msg(t, 0, 1), 0.001)).collect();
        let outcomes_b: Vec<LinkOutcome> =
            (0..64).map(|t| b.transmit(&msg(t, 0, 1), 0.001)).collect();
        assert_eq!(outcomes_a, outcomes_a2, "same plan, same fate");
        assert_ne!(outcomes_a, outcomes_b, "different seeds diverge");
        // With 50% loss, some message somewhere needed a retry.
        assert!(outcomes_a.iter().any(|o| o.retries > 0));
        // And every message was eventually delivered with bounded delay.
        for o in &outcomes_a {
            assert!(o.delivery_delay.is_finite() && o.delivery_delay >= 0.001);
        }
    }

    #[test]
    fn retries_wait_out_exponential_backoff() {
        // Find a message whose first data attempt is dropped; its delivery
        // must be delayed by at least the first ack timeout.
        let plan = FaultPlan::seeded(3)
            .with_drop_probability(0.6)
            .with_retry(RetryPolicy::new(0.1, 2.0, 10));
        let delayed = (0..256)
            .map(|t| plan.transmit(&msg(t, 1, 2), 0.0))
            .find(|o| o.delivery_delay > 0.0)
            .expect("60% loss must delay someone");
        assert!(delayed.delivery_delay >= 0.1 - 1e-12);
    }

    #[test]
    fn duplicates_do_not_delay_delivery() {
        let plan = FaultPlan::seeded(9).with_duplicate_probability(0.5);
        let mut dup_total = 0;
        for t in 0..128 {
            let out = plan.transmit(&msg(t, 0, 3), 0.002);
            // Duplication without loss: one attempt, delivered on time.
            assert_eq!(out.retries, 0);
            assert_eq!(out.delivery_delay, 0.002);
            dup_total += out.duplicates;
        }
        assert!(dup_total > 0, "50% duplication must fire");
    }

    #[test]
    fn wire_bytes_account_for_every_frame() {
        let plan = FaultPlan::seeded(4).with_drop_probability(0.4).with_duplicate_probability(0.2);
        for t in 0..64 {
            let m = msg(t, 0, 1);
            let out = plan.transmit(&m, 0.001);
            assert_eq!(
                out.extra_bytes,
                (out.retries + out.duplicates) * m.size_bytes() + out.acks * ACK_BYTES
            );
            assert!(out.acks >= 1, "delivery implies at least one ack frame");
        }
    }

    #[test]
    fn link_stats_fold_logical_and_physical_traffic() {
        let plan = FaultPlan::seeded(5).with_drop_probability(0.3);
        let mut stats = LinkStats::default();
        let mut expected_bytes = 0;
        for t in 0..32 {
            let m = msg(t, 2, 0);
            let out = plan.transmit(&m, 0.001);
            expected_bytes += m.size_bytes() + out.extra_bytes;
            stats.record(&m, &out);
        }
        assert_eq!(stats.messages, 32);
        assert_eq!(stats.bytes, expected_bytes);
        assert!(stats.acks >= 32, "lossy links ack every delivery");
    }

    #[test]
    fn wire_decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(11).with_drop_probability(0.5).with_duplicate_probability(0.5);
        let b = FaultPlan::seeded(12).with_drop_probability(0.5).with_duplicate_probability(0.5);
        let stream = |plan: &FaultPlan| -> Vec<(bool, bool, bool)> {
            (0..256u64)
                .map(|seq| {
                    (
                        plan.wire_drop(seq, 0, 3, 0),
                        plan.wire_duplicate(seq, 0, 3, 0),
                        plan.wire_ack_drop(seq, 0, 3, 0),
                    )
                })
                .collect()
        };
        assert_eq!(stream(&a), stream(&a), "pure decisions replay identically");
        assert_ne!(stream(&a), stream(&b), "different seeds diverge");
        // Each of the three channels is an independent stream: at 50% each,
        // every channel fires somewhere in 256 draws.
        let s = stream(&a);
        assert!(s.iter().any(|&(d, _, _)| d));
        assert!(s.iter().any(|&(_, dup, _)| dup));
        assert!(s.iter().any(|&(_, _, ack)| ack));
        // And they are not the same stream.
        assert!(s.iter().any(|&(d, dup, _)| d != dup));
    }

    #[test]
    fn wire_decisions_vary_with_every_key_component() {
        let plan = FaultPlan::seeded(13).with_drop_probability(0.5);
        let base: Vec<bool> = (0..128u64).map(|s| plan.wire_drop(s, 0, 1, 0)).collect();
        let other_to: Vec<bool> = (0..128u64).map(|s| plan.wire_drop(s, 0, 2, 0)).collect();
        let other_from: Vec<bool> = (0..128u64).map(|s| plan.wire_drop(s, 1, 1, 0)).collect();
        let other_attempt: Vec<bool> = (0..128u64).map(|s| plan.wire_drop(s, 0, 1, 1)).collect();
        assert_ne!(base, other_to);
        assert_ne!(base, other_from);
        assert_ne!(base, other_attempt);
    }

    #[test]
    fn lossless_wire_plan_never_drops_or_duplicates() {
        let plan = FaultPlan::none();
        for seq in 0..64u64 {
            assert!(!plan.wire_drop(seq, 0, 1, 0));
            assert!(!plan.wire_duplicate(seq, 0, 1, 0));
            assert!(!plan.wire_ack_drop(seq, 0, 1, 0));
        }
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn drop_probability_of_one_is_rejected() {
        let _ = FaultPlan::none().with_drop_probability(1.0);
    }

    #[test]
    #[should_panic(expected = "ack timeout")]
    fn non_positive_ack_timeout_is_rejected() {
        let _ = RetryPolicy::new(0.0, 2.0, 4);
    }
}
