//! Scheduler injection points: controlled nondeterminism for the sims.
//!
//! Every source of nondeterminism in the protocol simulations is routed
//! through one trait so that a model checker can *enumerate* it instead
//! of sampling it:
//!
//! - **Delivery order.** Each event-queue dequeue with more than one
//!   pending event asks [`Scheduler::choose_delivery`] for a rank in the
//!   canonical `(time, seq)` order ([`EventQueue::pop_nth`]).
//! - **Wire faults.** Each drop/duplicate/ack-loss coin inside the
//!   retry envelope ([`FaultPlan::transmit_with`]) becomes a binary
//!   [`Scheduler::decide`] with the seeded hash outcome as the default.
//! - **Crash windows.** Whether a worker actually crashes in a round its
//!   fault plan covers is a [`Scheduler::decide`] (default: it does).
//! - **Membership boundaries.** Whether a scheduled leave/join fires at
//!   its round boundary is a [`Scheduler::decide`] (default: it does),
//!   via [`MembershipSchedule::apply_round_sched`].
//!
//! The default implementation of every method reproduces the uncontrolled
//! sims exactly: [`FifoScheduler`] answers rank 0 (the earliest pending
//! event — `pop_nth(0)` is `pop()`) and every default decision, so
//! `run()` delegating to `run_with_scheduler(rounds, &mut FifoScheduler)`
//! is *bitwise* identical to the pre-scheduler code path. That identity
//! is what lets the chaos sweeps and the model checker share ground: a
//! random sweep case is the model checker's all-default path.
//!
//! [`EventQueue::pop_nth`]: crate::event::EventQueue::pop_nth
//! [`FaultPlan::transmit_with`]: crate::faults::FaultPlan::transmit_with
//! [`MembershipSchedule::apply_round_sched`]: crate::membership::MembershipSchedule::apply_round_sched

use crate::event::{EventQueue, Scheduled};

/// A point at which a fault plan or membership schedule consults the
/// scheduler. Carried alongside the binary decision so an exploring
/// scheduler can label the branch it is taking (and a shrinker can
/// describe it in a reproducer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionPoint {
    /// Drop the data frame of `attempt` on the wire?
    WireDrop {
        /// Protocol round of the message.
        round: usize,
        /// Link attempt index within the retry envelope.
        attempt: usize,
    },
    /// Duplicate the delivered data frame?
    WireDuplicate {
        /// Protocol round of the message.
        round: usize,
        /// Link attempt index within the retry envelope.
        attempt: usize,
    },
    /// Drop the acknowledgement of a delivered attempt?
    WireAckDrop {
        /// Protocol round of the message.
        round: usize,
        /// Link attempt index within the retry envelope.
        attempt: usize,
    },
    /// Does the crash window covering (`worker`, `round`) actually fire?
    Crash {
        /// Worker whose plan window covers the round.
        worker: usize,
        /// The round being started.
        round: usize,
    },
    /// Does the scheduled membership event fire at its round boundary?
    Membership {
        /// The round boundary.
        round: usize,
        /// Worker leaving or joining.
        worker: usize,
        /// `true` for a join, `false` for a leave.
        join: bool,
    },
}

/// Controlled-nondeterminism hooks threaded through
/// `run_with_scheduler` on every protocol sim.
///
/// All methods have defaults reproducing the uncontrolled sims, so a
/// scheduler only overrides the axes it wants to control. The state
/// observation pair ([`wants_state`](Scheduler::wants_state) /
/// [`observe_state`](Scheduler::observe_state)) exists so the sims only
/// pay for fingerprinting when a model checker is actually attached.
pub trait Scheduler {
    /// Picks which pending event to deliver next, as a rank in the
    /// canonical `(time, seq)` order over the `pending` queued events
    /// (`0` = the event `pop()` would deliver). Called only when
    /// `pending > 1`; out-of-range answers are clamped by the caller.
    fn choose_delivery(&mut self, pending: usize) -> usize {
        let _ = pending;
        0
    }

    /// Resolves one binary fault/membership decision. `default` is the
    /// seeded hash outcome the uncontrolled sims would use.
    fn decide(&mut self, point: DecisionPoint, default: bool) -> bool {
        let _ = point;
        default
    }

    /// Whether the sim should compute and report state fingerprints
    /// before each delivery choice. Costs one full state hash per
    /// dequeue when `true`; [`FifoScheduler`] answers `false`.
    fn wants_state(&self) -> bool {
        false
    }

    /// Receives the canonical state fingerprint computed immediately
    /// before the next [`choose_delivery`](Scheduler::choose_delivery)
    /// call. Only invoked when [`wants_state`](Scheduler::wants_state)
    /// returns `true`.
    fn observe_state(&mut self, fingerprint: u64) {
        let _ = fingerprint;
    }

    /// Test-only sabotage hook: when `true`, the sims skip the simplex
    /// overshoot guard in the straggler pin (re-introducing the PR 4 bug)
    /// so the model checker's violation path can be exercised end to end.
    /// Never overridden outside `dolbie-mc`'s bug-injection tests.
    #[doc(hidden)]
    fn sabotage_overshoot_guard(&self) -> bool {
        false
    }
}

/// The identity scheduler: earliest-event delivery, every default fault
/// decision, no state observation. `run_with_scheduler(rounds, &mut
/// FifoScheduler)` is bitwise identical to the historical `run(rounds)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {}

/// Dequeues the next event under scheduler control: FIFO when zero or
/// one event is pending (no choice exists — the scheduler is not even
/// consulted, keeping decision traces free of forced moves), otherwise
/// the scheduler's chosen rank in canonical order, clamped into range.
pub fn pop_with<E>(queue: &mut EventQueue<E>, sched: &mut dyn Scheduler) -> Option<Scheduled<E>> {
    match queue.len() {
        0 => None,
        1 => queue.pop(),
        pending => {
            let rank = sched.choose_delivery(pending).min(pending - 1);
            queue.pop_nth(rank)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_scheduler_answers_defaults() {
        let mut fifo = FifoScheduler;
        assert_eq!(fifo.choose_delivery(5), 0);
        assert!(fifo.decide(DecisionPoint::Crash { worker: 0, round: 0 }, true));
        assert!(!fifo.decide(DecisionPoint::Crash { worker: 0, round: 0 }, false));
        assert!(!fifo.wants_state());
        assert!(!fifo.sabotage_overshoot_guard());
    }

    #[test]
    fn pop_with_clamps_out_of_range_ranks() {
        struct Always(usize);
        impl Scheduler for Always {
            fn choose_delivery(&mut self, _pending: usize) -> usize {
                self.0
            }
        }
        let mut queue = EventQueue::new();
        queue.schedule(1.0, "a");
        queue.schedule(2.0, "b");
        let mut sched = Always(99);
        let got = pop_with(&mut queue, &mut sched).unwrap();
        assert_eq!(got.event, "b");
        // The remaining (earlier) event still pops, and the clock does
        // not run backwards.
        let rest = pop_with(&mut queue, &mut sched).unwrap();
        assert_eq!(rest.event, "a");
        assert_eq!(queue.now(), 2.0);
    }

    #[test]
    fn pop_with_is_fifo_under_the_fifo_scheduler() {
        let mut controlled = EventQueue::new();
        let mut plain = EventQueue::new();
        for (t, e) in [(3.0, "c"), (1.0, "a"), (2.0, "b")] {
            controlled.schedule(t, e);
            plain.schedule(t, e);
        }
        let mut fifo = FifoScheduler;
        while let Some(expect) = plain.pop() {
            let got = pop_with(&mut controlled, &mut fifo).unwrap();
            assert_eq!(got.event, expect.event);
            assert_eq!(got.time.to_bits(), expect.time.to_bits());
        }
        assert!(pop_with(&mut controlled, &mut fifo).is_none());
    }
}
