//! Network latency models for the protocol simulations.
//!
//! The decisions DOLBIE makes are *delay-invariant* — the protocols are
//! synchronous within a round, so message latency affects only the wall
//! clock, never the trajectory. The models here let the experiments (and a
//! property test) demonstrate exactly that, and let the fault-injection
//! extension perturb the network without touching protocol code.

use crate::message::Message;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Computes the in-flight delay of a message.
pub trait LatencyModel {
    /// Seconds between send and delivery of `message`.
    fn delay(&mut self, message: &Message) -> f64;
}

impl<T: LatencyModel + ?Sized> LatencyModel for Box<T> {
    fn delay(&mut self, message: &Message) -> f64 {
        (**self).delay(message)
    }
}

/// Constant per-message base delay plus size-proportional transfer time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedLatency {
    /// Propagation delay per message, in seconds.
    pub base: f64,
    /// Link bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl FixedLatency {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `base < 0` or `bandwidth <= 0`.
    pub fn new(base: f64, bandwidth: f64) -> Self {
        assert!(base >= 0.0 && base.is_finite(), "base delay must be non-negative");
        assert!(bandwidth > 0.0 && !bandwidth.is_nan(), "bandwidth must be positive");
        Self { base, bandwidth }
    }

    /// A LAN-ish default: 0.5 ms base, 1 GB/s.
    pub fn lan() -> Self {
        Self::new(5e-4, 1e9)
    }

    /// Zero-delay network, useful for tests.
    pub fn instant() -> Self {
        Self { base: 0.0, bandwidth: f64::INFINITY }
    }
}

impl LatencyModel for FixedLatency {
    fn delay(&mut self, message: &Message) -> f64 {
        self.base + message.size_bytes() as f64 / self.bandwidth
    }
}

/// Fixed latency plus uniformly distributed jitter, seeded for
/// reproducibility.
#[derive(Debug, Clone)]
pub struct JitteredLatency {
    fixed: FixedLatency,
    jitter_max: f64,
    rng: StdRng,
}

impl JitteredLatency {
    /// Creates the model with jitter drawn uniformly from
    /// `[0, jitter_max]` per message.
    ///
    /// # Panics
    ///
    /// Panics if `jitter_max < 0`.
    pub fn new(fixed: FixedLatency, jitter_max: f64, seed: u64) -> Self {
        assert!(jitter_max >= 0.0 && jitter_max.is_finite(), "jitter must be non-negative");
        Self { fixed, jitter_max, rng: StdRng::seed_from_u64(seed) }
    }
}

impl LatencyModel for JitteredLatency {
    fn delay(&mut self, message: &Message) -> f64 {
        let jitter =
            if self.jitter_max > 0.0 { self.rng.gen_range(0.0..=self.jitter_max) } else { 0.0 };
        self.fixed.delay(message) + jitter
    }
}

/// A topology-aware model: per-link base delays from an `N×N` matrix (plus
/// the master, treated as node `N`), with size-proportional transfer time.
/// Models racks, cross-datacenter links, or any non-uniform fabric — the
/// regime where the ring architecture's neighbor-only traffic can beat
/// all-to-all broadcast despite its `O(N)` depth.
#[derive(Debug, Clone)]
pub struct PerLinkLatency {
    /// `delays[from][to]` in seconds; row/column `N` is the master.
    delays: Vec<Vec<f64>>,
    bandwidth: f64,
}

impl PerLinkLatency {
    /// Creates the model from an `(N+1) × (N+1)` base-delay matrix (the
    /// last index is the master) and a shared link bandwidth in
    /// bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty or ragged, any delay is negative or
    /// non-finite, or `bandwidth <= 0`.
    pub fn new(delays: Vec<Vec<f64>>, bandwidth: f64) -> Self {
        assert!(!delays.is_empty(), "delay matrix must be non-empty");
        let n = delays.len();
        for (i, row) in delays.iter().enumerate() {
            assert_eq!(row.len(), n, "delay matrix row {i} is ragged");
            assert!(
                row.iter().all(|d| d.is_finite() && *d >= 0.0),
                "delays must be finite and non-negative"
            );
        }
        assert!(bandwidth > 0.0 && !bandwidth.is_nan(), "bandwidth must be positive");
        Self { delays, bandwidth }
    }

    /// A two-rack topology over `n` workers: intra-rack hops cost
    /// `near`, cross-rack hops (and all master links) cost `far`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the delays are not `0 <= near <= far`.
    pub fn two_racks(n: usize, near: f64, far: f64) -> Self {
        assert!(n > 0, "at least one worker required");
        assert!(near >= 0.0 && far >= near, "need 0 <= near <= far");
        let rack = |i: usize| i < n / 2;
        let delays = (0..=n)
            .map(|from| {
                (0..=n)
                    .map(|to| {
                        if from == n || to == n {
                            far
                        } else if rack(from) == rack(to) {
                            near
                        } else {
                            far
                        }
                    })
                    .collect()
            })
            .collect();
        Self::new(delays, 1e9)
    }

    /// A ring-shaped fabric over `n` workers: hops between ring neighbors
    /// (`|i − j| = 1 mod n`) cost `near`, every other link — including all
    /// master links — costs `far`. The natural habitat of [`RingSim`](crate::RingSim)
    /// (`crate::RingSim`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the delays are not `0 <= near <= far`.
    pub fn ring_topology(n: usize, near: f64, far: f64) -> Self {
        assert!(n > 0, "at least one worker required");
        assert!(near >= 0.0 && far >= near, "need 0 <= near <= far");
        let delays = (0..=n)
            .map(|from| {
                (0..=n)
                    .map(|to| {
                        if from == n || to == n {
                            far
                        } else {
                            let d = from.abs_diff(to);
                            if d == 1 || d == n - 1 {
                                near
                            } else {
                                far
                            }
                        }
                    })
                    .collect()
            })
            .collect();
        Self::new(delays, 1e9)
    }

    fn index(&self, node: crate::message::NodeId) -> usize {
        match node {
            crate::message::NodeId::Worker(i) => {
                assert!(i < self.delays.len() - 1, "worker {i} outside the delay matrix");
                i
            }
            crate::message::NodeId::Master => self.delays.len() - 1,
        }
    }
}

impl LatencyModel for PerLinkLatency {
    fn delay(&mut self, message: &Message) -> f64 {
        let from = self.index(message.from);
        let to = self.index(message.to);
        self.delays[from][to] + message.size_bytes() as f64 / self.bandwidth
    }
}

/// Fault injection: wraps a model and stretches delays of messages touching
/// a chosen node by a multiplicative factor during a window of rounds —
/// the "degraded link / slow NIC" scenario of the robustness experiments.
#[derive(Debug, Clone)]
pub struct DegradedNode<M> {
    inner: M,
    node: crate::message::NodeId,
    factor: f64,
    from_round: usize,
    until_round: usize,
}

impl<M: LatencyModel> DegradedNode<M> {
    /// Wraps `inner`; messages to or from `node` in rounds
    /// `[from_round, until_round)` take `factor`× as long.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1`.
    pub fn new(
        inner: M,
        node: crate::message::NodeId,
        factor: f64,
        from_round: usize,
        until_round: usize,
    ) -> Self {
        assert!(factor >= 1.0 && factor.is_finite(), "degradation factor must be >= 1");
        Self { inner, node, factor, from_round, until_round }
    }
}

impl<M: LatencyModel> LatencyModel for DegradedNode<M> {
    fn delay(&mut self, message: &Message) -> f64 {
        let base = self.inner.delay(message);
        let touches = message.from == self.node || message.to == self.node;
        let active = message.round >= self.from_round && message.round < self.until_round;
        if touches && active {
            base * self.factor
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{NodeId, Payload};

    fn msg(round: usize) -> Message {
        Message {
            from: NodeId::Worker(0),
            to: NodeId::Master,
            round,
            payload: Payload::LocalCost { cost: 1.0 },
        }
    }

    #[test]
    fn fixed_latency_is_base_plus_transfer() {
        let mut m = FixedLatency::new(0.001, 24.0);
        // 24-byte message over 24 B/s = 1 s transfer.
        assert!((m.delay(&msg(0)) - 1.001).abs() < 1e-12);
    }

    #[test]
    fn instant_is_zero() {
        let mut m = FixedLatency::instant();
        assert_eq!(m.delay(&msg(0)), 0.0);
    }

    #[test]
    fn jitter_is_bounded_and_reproducible() {
        let mut a = JitteredLatency::new(FixedLatency::instant(), 0.01, 42);
        let mut b = JitteredLatency::new(FixedLatency::instant(), 0.01, 42);
        for _ in 0..100 {
            let da = a.delay(&msg(0));
            let db = b.delay(&msg(0));
            assert_eq!(da, db, "same seed, same jitter");
            assert!((0.0..=0.01).contains(&da));
        }
    }

    #[test]
    fn zero_jitter_matches_fixed() {
        let mut j = JitteredLatency::new(FixedLatency::lan(), 0.0, 1);
        let mut f = FixedLatency::lan();
        assert_eq!(j.delay(&msg(0)), f.delay(&msg(0)));
    }

    #[test]
    fn degraded_node_stretches_matching_messages() {
        let mut m =
            DegradedNode::new(FixedLatency::new(1.0, f64::INFINITY), NodeId::Worker(0), 3.0, 2, 5);
        assert_eq!(m.delay(&msg(0)), 1.0, "before the window");
        assert_eq!(m.delay(&msg(2)), 3.0, "inside the window");
        assert_eq!(m.delay(&msg(4)), 3.0);
        assert_eq!(m.delay(&msg(5)), 1.0, "after the window");
        // A message not touching the node is unaffected.
        let other = Message {
            from: NodeId::Worker(1),
            to: NodeId::Worker(2),
            round: 3,
            payload: Payload::Decision { share: 0.1 },
        };
        assert_eq!(m.delay(&other), 1.0);
    }

    #[test]
    fn per_link_latency_uses_the_matrix() {
        let mut m = PerLinkLatency::new(
            vec![vec![0.0, 0.001, 0.5], vec![0.001, 0.0, 0.5], vec![0.5, 0.5, 0.0]],
            f64::INFINITY,
        );
        // Worker 0 -> worker 1: near link.
        let near = Message {
            from: NodeId::Worker(0),
            to: NodeId::Worker(1),
            round: 0,
            payload: Payload::Decision { share: 0.1 },
        };
        assert_eq!(m.delay(&near), 0.001);
        // Worker 0 -> master (index N): far link.
        assert_eq!(m.delay(&msg(0)), 0.5);
    }

    #[test]
    fn two_racks_topology_shape() {
        let mut m = PerLinkLatency::two_racks(4, 0.001, 0.05);
        let link = |from: usize, to: usize| Message {
            from: NodeId::Worker(from),
            to: NodeId::Worker(to),
            round: 0,
            payload: Payload::Decision { share: 0.1 },
        };
        // Workers 0,1 share a rack; 2,3 share the other.
        assert!(m.delay(&link(0, 1)) < m.delay(&link(0, 2)));
        assert!(m.delay(&link(2, 3)) < m.delay(&link(1, 3)));
        // Master links are always far.
        assert!(m.delay(&msg(0)) >= 0.05);
    }

    #[test]
    fn ring_neighbors_beat_master_worker_on_a_ring_fabric() {
        // On a ring-shaped fabric with a far-away coordinator, neighbor-only
        // ring traffic yields a lower control overhead than the star
        // topology despite O(N) hops.
        use crate::master_worker::MasterWorkerSim;
        use crate::ring::RingSim;
        use dolbie_core::environment::StaticLinearEnvironment;
        use dolbie_core::DolbieConfig;
        let n = 6;
        let env = StaticLinearEnvironment::from_slopes((1..=n).map(|i| i as f64).collect());
        let topo = || PerLinkLatency::ring_topology(n, 0.0005, 0.08);
        let mw = MasterWorkerSim::new(env.clone(), DolbieConfig::new(), topo()).run(5);
        let ring = RingSim::new(env, DolbieConfig::new(), topo()).run(5);
        // 4 star phases x 0.08 s vs ~2N neighbor hops at 0.0005 s.
        assert!(
            ring.mean_control_overhead() < mw.mean_control_overhead(),
            "ring {} vs mw {}",
            ring.mean_control_overhead(),
            mw.mean_control_overhead()
        );
        // And, as always, identical decisions.
        for (a, b) in mw.rounds.iter().zip(&ring.rounds) {
            assert!(a.allocation.l2_distance(&b.allocation) < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_delay_matrix_panics() {
        let _ = PerLinkLatency::new(vec![vec![0.0, 1.0], vec![0.0]], 1e9);
    }

    #[test]
    fn boxed_model_works() {
        let mut m: Box<dyn LatencyModel> = Box::new(FixedLatency::instant());
        assert_eq!(m.delay(&msg(0)), 0.0);
    }
}
