//! Discrete-event simulation of Algorithm 1 (master-worker DOLBIE).
//!
//! Every protocol step of the paper's Algorithm 1 is an explicit message
//! with simulated latency:
//!
//! 1. workers execute their shares (the local cost *is* the execution
//!    time) and send `l_{i,t}` to the master (line 4);
//! 2. the master collects all costs, identifies `l_t` and the straggler,
//!    and sends `(l_t, α_t, 1{i≠s_t})` to every worker (lines 9–12);
//! 3. non-stragglers compute `x'_{i,t}`, take the risk-averse step, and
//!    send `x_{i,t+1}` back (lines 6–7);
//! 4. the master assigns the remainder to the straggler (lines 14–15) and
//!    tightens `α` per eq. (7) (line 16).
//!
//! The per-round message count is `3·|active|` and the byte volume is
//! `Θ(N)` — the §IV-C claim, which the `comms` experiment measures.
//!
//! Workers pipeline: each starts executing round `t+1` the moment it knows
//! its own next share, so the simulated wall-clock reflects both execution
//! latency and protocol overhead.
//!
//! ## Fault tolerance (extension)
//!
//! The paper assumes responsive workers. This simulator additionally
//! models **worker crashes** ([`Crash`] windows) and a **master-side cost
//! timeout** ([`MasterWorkerSim::with_cost_timeout`]): when a worker does
//! not report in time, the master excludes it from the round — its share
//! is frozen, the straggler is chosen among the responders, and the
//! remainder arithmetic still preserves `Σ_i x_i = 1` exactly. A recovered
//! worker rejoins with its stale share and the system re-balances around
//! it.

use crate::event::EventQueue;
use crate::latency::LatencyModel;
use crate::message::{Message, NodeId, Payload};
use crate::trace::{ProtocolRound, ProtocolTrace};
use dolbie_core::observation::max_acceptable_share;
use dolbie_core::step_size::feasibility_cap;
use dolbie_core::{Allocation, DolbieConfig, Environment};

#[derive(Debug, Clone, Copy)]
enum Ev {
    ComputeDone { worker: usize },
    Deliver(Message),
    CostTimeout,
}

/// A window of rounds during which a worker is unresponsive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// The crashed worker.
    pub worker: usize,
    /// First affected round (inclusive).
    pub from_round: usize,
    /// First healthy round again (exclusive end).
    pub until_round: usize,
}

impl Crash {
    /// Whether this crash window makes `worker` unresponsive in `round`.
    pub fn covers(&self, worker: usize, round: usize) -> bool {
        self.worker == worker && round >= self.from_round && round < self.until_round
    }
}

/// The master-worker protocol simulator.
///
/// # Examples
///
/// ```
/// use dolbie_simnet::{FixedLatency, MasterWorkerSim};
/// use dolbie_core::environment::StaticLinearEnvironment;
/// use dolbie_core::DolbieConfig;
///
/// let env = StaticLinearEnvironment::from_slopes(vec![3.0, 1.0]);
/// let mut sim = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan());
/// let trace = sim.run(10);
/// assert_eq!(trace.rounds.len(), 10);
/// assert_eq!(trace.rounds[0].messages, 3 * 2); // 3N messages per round
/// ```
#[derive(Debug)]
pub struct MasterWorkerSim<E, L> {
    env: E,
    latency: L,
    shares: Vec<f64>,
    alpha: f64,
    crashes: Vec<Crash>,
    cost_timeout: Option<f64>,
}

impl<E: Environment, L: LatencyModel> MasterWorkerSim<E, L> {
    /// Creates the simulator with the uniform initial partition.
    pub fn new(env: E, config: DolbieConfig, latency: L) -> Self {
        let n = env.num_workers();
        let initial = Allocation::uniform(n);
        let alpha = config.resolve_initial_alpha(&initial);
        Self {
            env,
            latency,
            shares: initial.into_inner(),
            alpha,
            crashes: Vec::new(),
            cost_timeout: None,
        }
    }

    /// Injects a crash window: the worker neither executes nor responds
    /// during `[from_round, until_round)`; its share is frozen and the
    /// rest of the cluster balances without it.
    ///
    /// # Panics
    ///
    /// Panics if the worker index is out of range.
    pub fn with_crash(mut self, crash: Crash) -> Self {
        assert!(crash.worker < self.shares.len(), "crash worker out of range");
        self.crashes.push(crash);
        self
    }

    /// Sets a master-side timeout (seconds from the round's barrier time):
    /// workers that have not reported their cost by then are excluded from
    /// the round as if crashed.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not positive and finite.
    pub fn with_cost_timeout(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0 && seconds.is_finite(), "timeout must be positive");
        self.cost_timeout = Some(seconds);
        self
    }

    /// Runs the protocol for `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if the environment produces malformed cost functions or a
    /// crash plan leaves a round with no responsive worker.
    pub fn run(&mut self, rounds: usize) -> ProtocolTrace {
        let n = self.shares.len();
        let mut trace = Vec::with_capacity(rounds);
        // Per-worker time at which it may begin executing the round.
        let mut ready_at = vec![0.0f64; n];

        for t in 0..rounds {
            let fns = self.env.reveal(t);
            assert_eq!(fns.len(), n, "environment must cover every worker");
            let crashed: Vec<bool> = (0..n)
                .map(|i| self.crashes.iter().any(|c| c.covers(i, t)))
                .collect();
            let alive_count = crashed.iter().filter(|&&c| !c).count();
            assert!(alive_count >= 1, "round {t} has no responsive worker");
            let local_costs: Vec<f64> = (0..n)
                .map(|i| if crashed[i] { 0.0 } else { fns[i].eval(self.shares[i]) })
                .collect();

            let mut queue: EventQueue<Ev> = EventQueue::new();
            let mut round_base = 0.0f64;
            for i in 0..n {
                if crashed[i] {
                    continue;
                }
                queue.schedule(ready_at[i] + local_costs[i], Ev::ComputeDone { worker: i });
                round_base = round_base.max(ready_at[i]);
            }
            if let Some(timeout) = self.cost_timeout {
                queue.schedule(round_base + timeout, Ev::CostTimeout);
            }

            // Master state for the round.
            let mut costs_received = vec![false; n];
            let mut costs_count = 0usize;
            let mut coordination_sent = false;
            let mut participants: Vec<bool> = vec![false; n];
            let mut global_cost = f64::MIN;
            let mut straggler = 0usize;
            let mut decisions: Vec<Option<f64>> = vec![None; n];
            let mut decisions_count = 0usize;
            let mut expected_decisions = usize::MAX;
            let mut next_shares = self.shares.clone();
            let mut messages = 0usize;
            let mut bytes = 0usize;
            let mut compute_finished = 0.0f64;
            let mut control_finished = 0.0f64;
            let mut round_done = false;

            let send = |queue: &mut EventQueue<Ev>,
                        latency: &mut L,
                        messages: &mut usize,
                        bytes: &mut usize,
                        msg: Message| {
                *messages += 1;
                *bytes += msg.size_bytes();
                let delay = latency.delay(&msg);
                assert!(delay >= 0.0, "latency model produced a negative delay");
                queue.schedule(queue.now() + delay, Ev::Deliver(msg));
            };

            // Lines 9-12, shared between the all-reported and timeout
            // paths: fix the participant set, identify the straggler among
            // it, and broadcast the coordination scalars.
            macro_rules! send_coordination {
                () => {{
                    coordination_sent = true;
                    participants.copy_from_slice(&costs_received);
                    global_cost = f64::MIN;
                    for j in 0..n {
                        if participants[j] && local_costs[j] > global_cost {
                            global_cost = local_costs[j];
                            straggler = j;
                        }
                    }
                    expected_decisions = participants.iter().filter(|&&p| p).count() - 1;
                    for j in 0..n {
                        if !participants[j] {
                            continue;
                        }
                        send(
                            &mut queue,
                            &mut self.latency,
                            &mut messages,
                            &mut bytes,
                            Message {
                                from: NodeId::Master,
                                to: NodeId::Worker(j),
                                round: t,
                                payload: Payload::Coordination {
                                    global_cost,
                                    alpha: self.alpha,
                                    is_straggler: j == straggler,
                                },
                            },
                        );
                    }
                }};
            }

            // Lines 14-16, triggered once every expected decision arrived
            // (immediately if the straggler is the only participant).
            macro_rules! finalize_round {
                () => {{
                    let mut others = 0.0;
                    for j in 0..n {
                        if j == straggler {
                            continue;
                        }
                        if participants[j] {
                            let share = decisions[j].expect("participant reported");
                            next_shares[j] = share;
                            others += share;
                        } else {
                            // Frozen share of a crashed/timed-out worker.
                            others += next_shares[j];
                        }
                    }
                    let s_share = (1.0 - others).max(0.0);
                    next_shares[straggler] = s_share;
                    self.alpha = self.alpha.min(feasibility_cap(n, s_share));
                    send(
                        &mut queue,
                        &mut self.latency,
                        &mut messages,
                        &mut bytes,
                        Message {
                            from: NodeId::Master,
                            to: NodeId::Worker(straggler),
                            round: t,
                            payload: Payload::StragglerAssignment { share: s_share },
                        },
                    );
                }};
            }

            while let Some(scheduled) = queue.pop() {
                if round_done {
                    break;
                }
                match scheduled.event {
                    Ev::ComputeDone { worker } => {
                        compute_finished = compute_finished.max(scheduled.time);
                        // Line 4: share the local cost with the master.
                        send(
                            &mut queue,
                            &mut self.latency,
                            &mut messages,
                            &mut bytes,
                            Message {
                                from: NodeId::Worker(worker),
                                to: NodeId::Master,
                                round: t,
                                payload: Payload::LocalCost { cost: local_costs[worker] },
                            },
                        );
                    }
                    Ev::CostTimeout => {
                        if !coordination_sent && costs_count >= 1 {
                            send_coordination!();
                            if expected_decisions == 0 {
                                finalize_round!();
                            }
                        }
                    }
                    Ev::Deliver(msg) => match msg.payload {
                        Payload::LocalCost { .. } => {
                            let NodeId::Worker(i) = msg.from else {
                                unreachable!("only workers report costs")
                            };
                            if coordination_sent {
                                // Late report after the timeout: the worker
                                // sat this round out.
                                continue;
                            }
                            assert!(!costs_received[i], "duplicate cost report");
                            costs_received[i] = true;
                            costs_count += 1;
                            if costs_count == alive_count {
                                send_coordination!();
                                if expected_decisions == 0 {
                                    finalize_round!();
                                }
                            }
                        }
                        Payload::Coordination { global_cost: l_t, alpha, is_straggler } => {
                            let NodeId::Worker(i) = msg.to else {
                                unreachable!("coordination goes to workers")
                            };
                            if is_straggler {
                                // Line 8: the straggler waits for its share.
                                continue;
                            }
                            // Lines 5-7: risk-averse assistance.
                            let x_i = self.shares[i];
                            let target = max_acceptable_share(&fns[i], x_i, l_t);
                            let updated = x_i - alpha * (x_i - target);
                            send(
                                &mut queue,
                                &mut self.latency,
                                &mut messages,
                                &mut bytes,
                                Message {
                                    from: NodeId::Worker(i),
                                    to: NodeId::Master,
                                    round: t,
                                    payload: Payload::Decision { share: updated },
                                },
                            );
                            // The worker may start the next round as soon
                            // as it committed to its own share.
                            ready_at[i] = scheduled.time;
                        }
                        Payload::Decision { share } => {
                            let NodeId::Worker(i) = msg.from else {
                                unreachable!("only workers send decisions")
                            };
                            assert!(decisions[i].is_none(), "duplicate decision");
                            decisions[i] = Some(share);
                            decisions_count += 1;
                            if decisions_count == expected_decisions {
                                finalize_round!();
                            }
                        }
                        Payload::StragglerAssignment { .. } => {
                            let NodeId::Worker(i) = msg.to else {
                                unreachable!("assignment goes to the straggler")
                            };
                            ready_at[i] = scheduled.time;
                            control_finished = scheduled.time;
                            round_done = true;
                        }
                        _ => {
                            unreachable!("non-master-worker payload in Algorithm 1")
                        }
                    },
                }
            }
            assert!(round_done || n == 1, "protocol deadlocked in round {t}");

            let executed = Allocation::from_update(self.shares.clone())
                .expect("protocol preserves feasibility");
            trace.push(ProtocolRound {
                round: t,
                allocation: executed,
                local_costs,
                global_cost,
                straggler,
                messages,
                bytes,
                compute_finished,
                control_finished,
                active: participants.clone(),
            });
            self.shares = next_shares;
        }
        ProtocolTrace { architecture: "master-worker", rounds: trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{FixedLatency, JitteredLatency};
    use dolbie_core::environment::{RotatingStragglerEnvironment, StaticLinearEnvironment};
    use dolbie_core::{run_episode, Dolbie, EpisodeOptions};

    #[test]
    fn message_count_is_3n_per_round() {
        let env = StaticLinearEnvironment::from_slopes(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut sim = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan());
        let trace = sim.run(7);
        for r in &trace.rounds {
            assert_eq!(r.messages, 15, "3N messages per round");
            assert!(r.active.iter().all(|&a| a), "everyone participates");
        }
        assert_eq!(trace.total_messages(), 7 * 15);
        assert!(trace.total_bytes() > 0);
    }

    #[test]
    fn trajectory_matches_sequential_dolbie() {
        let env = RotatingStragglerEnvironment::new(4, 3, 8.0, 1.0);
        let mut sim =
            MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan());
        let protocol = sim.run(30);

        let mut sequential = Dolbie::new(4);
        let mut driver = env;
        let reference = run_episode(&mut sequential, &mut driver, EpisodeOptions::new(30));

        for (p, r) in protocol.rounds.iter().zip(&reference.records) {
            assert!(
                p.allocation.l2_distance(&r.allocation) < 1e-9,
                "round {}: protocol {} vs sequential {}",
                p.round,
                p.allocation,
                r.allocation
            );
            assert_eq!(p.straggler, r.straggler, "round {}", p.round);
            assert!((p.global_cost - r.global_cost).abs() < 1e-9);
        }
    }

    #[test]
    fn decisions_are_delay_invariant() {
        // Same environment under wildly different network conditions must
        // produce the same allocation sequence (synchronous protocol).
        let env = StaticLinearEnvironment::from_slopes(vec![5.0, 1.0, 2.0]);
        let fast = MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::instant())
            .run(20);
        let slow = MasterWorkerSim::new(
            env.clone(),
            DolbieConfig::new(),
            JitteredLatency::new(FixedLatency::new(0.5, 1e3), 0.2, 7),
        )
        .run(20);
        for (a, b) in fast.rounds.iter().zip(&slow.rounds) {
            assert!(a.allocation.l2_distance(&b.allocation) < 1e-12);
        }
        // But the wall clock differs.
        assert!(slow.makespan() > fast.makespan());
    }

    #[test]
    fn control_overhead_is_positive_with_real_latency() {
        let env = StaticLinearEnvironment::from_slopes(vec![2.0, 1.0]);
        let mut sim = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan());
        let trace = sim.run(5);
        for r in &trace.rounds {
            assert!(r.control_overhead() > 0.0);
            assert!(r.control_finished >= r.compute_finished);
        }
    }

    #[test]
    fn global_cost_decreases_on_static_instance() {
        let env = StaticLinearEnvironment::from_slopes(vec![6.0, 1.0, 2.0]);
        let mut sim = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan());
        let trace = sim.run(60);
        let first = trace.rounds.first().unwrap().global_cost;
        let last = trace.rounds.last().unwrap().global_cost;
        assert!(last < first * 0.7, "protocol DOLBIE must improve: {first} -> {last}");
    }

    #[test]
    fn crashed_worker_is_excluded_and_its_share_frozen() {
        let env = StaticLinearEnvironment::from_slopes(vec![4.0, 1.0, 2.0, 1.5]);
        let crash = Crash { worker: 1, from_round: 5, until_round: 12 };
        let mut sim = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_crash(crash);
        let trace = sim.run(25);
        let frozen_share = trace.rounds[5].allocation.share(1);
        for t in 5..12 {
            let r = &trace.rounds[t];
            assert!(!r.active[1], "round {t}: crashed worker must not participate");
            assert!(
                (r.allocation.share(1) - frozen_share).abs() < 1e-12,
                "round {t}: crashed worker's share must be frozen"
            );
            // Fewer protocol messages while one worker is out.
            assert_eq!(r.messages, 3 * 3, "3 * |active| messages");
            let sum: f64 = r.allocation.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        // After recovery the worker participates and regains work.
        assert!(trace.rounds[24].active[1]);
        assert!(
            trace.rounds[24].allocation.share(1) > frozen_share,
            "the fast worker should win back work after recovering"
        );
    }

    #[test]
    fn cost_timeout_excludes_an_extreme_straggler() {
        // Worker 0 takes ~4 s per round; with a 1 s timeout the master
        // proceeds without it.
        let env = StaticLinearEnvironment::from_slopes(vec![16.0, 1.0, 1.0, 1.0]);
        let mut sim = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_cost_timeout(1.0);
        let trace = sim.run(10);
        let first = &trace.rounds[0];
        assert!(!first.active[0], "the slow worker times out");
        assert!(first.active[1] && first.active[2] && first.active[3]);
        // The round completes in ~1 s + protocol, far below worker 0's 4 s.
        assert!(first.control_finished < 2.0, "control at {}", first.control_finished);
        let sum: f64 = trace.rounds.last().unwrap().allocation.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn generous_timeout_changes_nothing() {
        let env = StaticLinearEnvironment::from_slopes(vec![3.0, 1.0, 2.0]);
        let plain =
            MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(15);
        let with_timeout = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_cost_timeout(1e6)
            .run(15);
        for (a, b) in plain.rounds.iter().zip(&with_timeout.rounds) {
            assert!(a.allocation.l2_distance(&b.allocation) < 1e-12);
            assert_eq!(a.messages, b.messages);
        }
    }

    #[test]
    #[should_panic(expected = "no responsive worker")]
    fn fully_crashed_round_panics() {
        let env = StaticLinearEnvironment::from_slopes(vec![1.0, 2.0]);
        let mut sim = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_crash(Crash { worker: 0, from_round: 0, until_round: 1 })
            .with_crash(Crash { worker: 1, from_round: 0, until_round: 1 });
        let _ = sim.run(1);
    }
}
