//! Discrete-event simulation of Algorithm 1 (master-worker DOLBIE).
//!
//! Every protocol step of the paper's Algorithm 1 is an explicit message
//! with simulated latency:
//!
//! 1. workers execute their shares (the local cost *is* the execution
//!    time) and send `l_{i,t}` to the master (line 4);
//! 2. the master collects all costs, identifies `l_t` and the straggler,
//!    and sends `(l_t, α_t, 1{i≠s_t})` to every worker (lines 9–12);
//! 3. non-stragglers compute `x'_{i,t}`, take the risk-averse step, and
//!    send `x_{i,t+1}` back (lines 6–7);
//! 4. the master assigns the remainder to the straggler (lines 14–15) and
//!    tightens `α` per eq. (7) (line 16).
//!
//! The per-round message count is `3·|active|` and the byte volume is
//! `Θ(N)` — the §IV-C claim, which the `comms` experiment measures.
//!
//! Workers pipeline: each starts executing round `t+1` the moment it knows
//! its own next share, so the simulated wall-clock reflects both execution
//! latency and protocol overhead.
//!
//! ## Fault tolerance (extension)
//!
//! The paper assumes responsive workers. This simulator additionally
//! accepts a shared [`FaultPlan`] — worker
//! crashes ([`Crash`] windows), a master-side cost timeout, and lossy
//! links with ack/retry-with-backoff. When a worker does not report in
//! time, the master excludes it from the round — its share is frozen, the
//! straggler is chosen among the responders, and the remainder arithmetic
//! still preserves `Σ_i x_i = 1` exactly. An excluded worker still has to
//! finish executing its abandoned round-`t` share before it may begin
//! round `t+1`, and that abandoned execution counts toward the round's
//! compute span (timeout-accounting bugfixes). A recovered worker rejoins
//! with its stale share and the system re-balances around it. If every
//! worker is down simultaneously the round freezes all shares and the run
//! continues — membership collapse degrades gracefully instead of
//! panicking.

use crate::coordinator::{
    assist_step, elect_straggler, frozen_round, straggler_pin_with_guard, tighten_alpha,
};
use crate::event::EventQueue;
use crate::faults::{FaultPlan, LinkStats};
use crate::latency::LatencyModel;
use crate::membership::{epoch_transition, MembershipSchedule, DEFAULT_DETECTION_TIMEOUT};
use crate::message::{Message, NodeId, Payload};
use crate::sched::{pop_with, DecisionPoint, FifoScheduler, Scheduler};
use crate::trace::{ProtocolRound, ProtocolTrace};
use dolbie_core::fingerprint::{MultisetFp, StateFp};
use dolbie_core::{Allocation, DolbieConfig, Environment};

pub use crate::faults::Crash;

#[derive(Debug, Clone, Copy)]
enum Ev {
    ComputeDone { worker: usize },
    Deliver(Message),
    CostTimeout,
}

/// The master-worker protocol simulator.
///
/// # Examples
///
/// ```
/// use dolbie_simnet::{FixedLatency, MasterWorkerSim};
/// use dolbie_core::environment::StaticLinearEnvironment;
/// use dolbie_core::DolbieConfig;
///
/// let env = StaticLinearEnvironment::from_slopes(vec![3.0, 1.0]);
/// let mut sim = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan());
/// let trace = sim.run(10);
/// assert_eq!(trace.rounds.len(), 10);
/// assert_eq!(trace.rounds[0].messages, 3 * 2); // 3N messages per round
/// ```
#[derive(Debug)]
pub struct MasterWorkerSim<E, L> {
    env: E,
    latency: L,
    shares: Vec<f64>,
    alpha: f64,
    plan: FaultPlan,
    membership: MembershipSchedule,
}

impl<E: Environment, L: LatencyModel> MasterWorkerSim<E, L> {
    /// Creates the simulator with the uniform initial partition.
    pub fn new(env: E, config: DolbieConfig, latency: L) -> Self {
        let n = env.num_workers();
        let initial = Allocation::uniform(n);
        let alpha = config.resolve_initial_alpha(&initial);
        Self {
            env,
            latency,
            shares: initial.into_inner(),
            alpha,
            plan: FaultPlan::none(),
            membership: MembershipSchedule::none(),
        }
    }

    /// Installs a membership schedule: at scheduled epoch boundaries
    /// workers leave (their shares redistributed proportionally) or
    /// (re)join at share zero, and `α` shrinks to the cap re-derived
    /// against the new member count. Replaces any schedule set earlier.
    ///
    /// # Panics
    ///
    /// Panics if the schedule names a worker out of range or would empty
    /// the active set.
    pub fn with_membership(mut self, schedule: MembershipSchedule) -> Self {
        schedule.validate(self.shares.len());
        self.membership = schedule;
        self
    }

    /// Installs a complete fault plan (crashes, cost timeout, lossy
    /// links). Replaces any plan set earlier.
    ///
    /// # Panics
    ///
    /// Panics if a crash window names a worker index out of range.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        if let Some(max) = plan.max_crash_worker() {
            assert!(max < self.shares.len(), "crash worker out of range");
        }
        self.plan = plan;
        self
    }

    /// Injects a crash window: the worker neither executes nor responds
    /// during `[from_round, until_round)`; its share is frozen and the
    /// rest of the cluster balances without it.
    ///
    /// # Panics
    ///
    /// Panics if the worker index is out of range.
    pub fn with_crash(mut self, crash: Crash) -> Self {
        assert!(crash.worker < self.shares.len(), "crash worker out of range");
        self.plan.crashes.push(crash);
        self
    }

    /// Sets a master-side timeout (seconds from the round's barrier time):
    /// workers that have not reported their cost by then are excluded from
    /// the round as if crashed.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not positive and finite.
    pub fn with_cost_timeout(mut self, seconds: f64) -> Self {
        self.plan = self.plan.with_cost_timeout(seconds);
        self
    }

    /// Runs the protocol for `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if the environment produces malformed cost functions.
    pub fn run(&mut self, rounds: usize) -> ProtocolTrace {
        self.run_with_scheduler(rounds, &mut FifoScheduler)
    }

    /// [`run`](Self::run) under controlled nondeterminism: every event
    /// dequeue, wire-fault coin, crash window, and membership boundary is
    /// routed through `sched` (see [`crate::sched`]). With
    /// [`FifoScheduler`] this is bitwise identical to [`run`](Self::run);
    /// with an exploring scheduler it is the model checker's branching
    /// execution.
    ///
    /// # Panics
    ///
    /// Panics if the environment produces malformed cost functions, or if
    /// a scheduler drives the protocol into a round that cannot complete
    /// (the deadlock check — unreachable under any delivery order the
    /// checker can express, which is exactly what `dolbie-mc` verifies).
    pub fn run_with_scheduler(
        &mut self,
        rounds: usize,
        sched: &mut dyn Scheduler,
    ) -> ProtocolTrace {
        let n = self.shares.len();
        let mut trace = Vec::with_capacity(rounds);
        // Per-worker time at which it may begin executing the round.
        let mut ready_at = vec![0.0f64; n];
        // Active membership view (epoch state, distinct from crash windows).
        let mut members = vec![true; n];

        for t in 0..rounds {
            // Epoch boundary: apply scheduled leaves/joins, re-normalize
            // onto the new member simplex, shrink α to the re-derived cap.
            let boundary = self.membership.apply_round_sched(t, &mut members, sched);
            if boundary.changed {
                let mut alpha_state = [self.alpha];
                self.alpha =
                    epoch_transition(&mut self.shares, &mut alpha_state, &[true], &members);
                if boundary.crash_detected {
                    // Survivors discover the departure via timeout.
                    let detection = self.plan.cost_timeout.unwrap_or(DEFAULT_DETECTION_TIMEOUT);
                    for (r, &m) in ready_at.iter_mut().zip(&members) {
                        if m {
                            *r += detection;
                        }
                    }
                }
            }
            let member_count = members.iter().filter(|&&m| m).count();

            let fns = self.env.reveal(t);
            assert_eq!(fns.len(), n, "environment must cover every worker");
            let down: Vec<bool> = (0..n)
                .map(|i| {
                    !members[i]
                        || (self.plan.crashed(i, t)
                            && sched.decide(DecisionPoint::Crash { worker: i, round: t }, true))
                })
                .collect();
            let alive_count = down.iter().filter(|&&c| !c).count();
            let local_costs: Vec<f64> =
                (0..n).map(|i| if down[i] { 0.0 } else { fns[i].eval(self.shares[i]) }).collect();
            if alive_count == 0 {
                // Membership collapsed: freeze every share and continue.
                trace.push(frozen_round(t, &self.shares, local_costs, &ready_at, n, self.alpha));
                continue;
            }

            // A full round is cost + share + ack per live worker, plus
            // retries and an optional timeout; reserve up front so the
            // heap never reallocates mid-round.
            let mut queue: EventQueue<Ev> = EventQueue::with_capacity(3 * alive_count + 1);
            let mut round_base = 0.0f64;
            for i in 0..n {
                if down[i] {
                    continue;
                }
                queue.schedule(ready_at[i] + local_costs[i], Ev::ComputeDone { worker: i });
                round_base = round_base.max(ready_at[i]);
            }
            if let Some(timeout) = self.plan.cost_timeout {
                queue.schedule(round_base + timeout, Ev::CostTimeout);
            }

            // Master state for the round.
            let mut costs_received = vec![false; n];
            let mut costs_count = 0usize;
            let mut coordination_sent = false;
            let mut participants: Vec<bool> = vec![false; n];
            // Alive workers shut out by the cost timeout this round.
            let mut excluded = vec![false; n];
            let mut global_cost = f64::MIN;
            let mut straggler = 0usize;
            let mut decisions: Vec<Option<f64>> = vec![None; n];
            let mut decisions_count = 0usize;
            let mut expected_decisions = usize::MAX;
            let mut next_shares = self.shares.clone();
            let mut stats = LinkStats::default();
            let mut compute_finished = 0.0f64;
            let mut control_finished = 0.0f64;
            let mut round_done = false;

            let send = |queue: &mut EventQueue<Ev>,
                        latency: &mut L,
                        plan: &FaultPlan,
                        stats: &mut LinkStats,
                        sched: &mut dyn Scheduler,
                        msg: Message| {
                let delay = latency.delay(&msg);
                assert!(delay >= 0.0, "latency model produced a negative delay");
                let outcome = plan.transmit_with(&msg, delay, sched);
                stats.record(&msg, &outcome);
                queue.schedule(queue.now() + outcome.delivery_delay, Ev::Deliver(msg));
            };

            // Lines 9-12, shared between the all-reported and timeout
            // paths: fix the participant set, identify the straggler among
            // it, and broadcast the coordination scalars.
            macro_rules! send_coordination {
                () => {{
                    coordination_sent = true;
                    participants.copy_from_slice(&costs_received);
                    for j in 0..n {
                        if down[j] || participants[j] {
                            continue;
                        }
                        // Timed out: the worker's in-flight execution is
                        // abandoned, but it still has to finish it before
                        // round t+1, and that execution is compute time of
                        // *this* round (accounting bugfixes).
                        excluded[j] = true;
                        let finish = ready_at[j] + local_costs[j];
                        ready_at[j] = finish;
                        compute_finished = compute_finished.max(finish);
                    }
                    let elected = elect_straggler(&local_costs, &participants)
                        .expect("coordination requires at least one participant");
                    global_cost = elected.global_cost;
                    straggler = elected.straggler;
                    expected_decisions = participants.iter().filter(|&&p| p).count() - 1;
                    for j in 0..n {
                        if !participants[j] {
                            continue;
                        }
                        send(
                            &mut queue,
                            &mut self.latency,
                            &self.plan,
                            &mut stats,
                            &mut *sched,
                            Message {
                                from: NodeId::Master,
                                to: NodeId::Worker(j),
                                round: t,
                                payload: Payload::Coordination {
                                    global_cost,
                                    alpha: self.alpha,
                                    is_straggler: j == straggler,
                                },
                            },
                        );
                    }
                }};
            }

            // Lines 14-16, triggered once every expected decision arrived
            // (immediately if the straggler is the only participant).
            macro_rules! finalize_round {
                () => {{
                    for j in 0..n {
                        if j != straggler && participants[j] {
                            next_shares[j] = decisions[j].expect("participant reported");
                        }
                    }
                    // Crashed/timed-out workers keep their frozen entry in
                    // `next_shares`; the guarded pin counts them as-is.
                    let s_share = straggler_pin_with_guard(
                        &self.shares,
                        &mut next_shares,
                        straggler,
                        !sched.sabotage_overshoot_guard(),
                    );
                    // Eq. (7) against the active member count (== n when
                    // no membership schedule is installed).
                    self.alpha = tighten_alpha(self.alpha, member_count, s_share);
                    send(
                        &mut queue,
                        &mut self.latency,
                        &self.plan,
                        &mut stats,
                        &mut *sched,
                        Message {
                            from: NodeId::Master,
                            to: NodeId::Worker(straggler),
                            round: t,
                            payload: Payload::StragglerAssignment { share: s_share },
                        },
                    );
                }};
            }

            while !round_done {
                // Fingerprint the full continuation-determining state
                // before each genuine delivery choice (len > 1), so an
                // exploring scheduler can prune revisited states. The
                // FIFO scheduler declines (`wants_state`), costing the
                // uncontrolled sims nothing.
                if sched.wants_state() && queue.len() > 1 {
                    let mut fp = StateFp::new(0xD01B_0001);
                    fp.push_usize(t);
                    fp.push_usize(rounds);
                    fp.push_f64_slice(&self.shares);
                    fp.push_f64(self.alpha);
                    fp.push_f64_slice(&next_shares);
                    fp.push_bool_slice(&members);
                    fp.push_bool_slice(&down);
                    fp.push_bool_slice(&costs_received);
                    fp.push_bool_slice(&participants);
                    fp.push_bool_slice(&excluded);
                    fp.push_u64(u64::from(coordination_sent));
                    fp.push_f64(global_cost);
                    fp.push_usize(straggler);
                    fp.push_usize(decisions_count);
                    fp.push_usize(expected_decisions);
                    for d in &decisions {
                        fp.push_opt_f64(*d);
                    }
                    let mut pending = MultisetFp::new();
                    queue.for_each_pending(|ev| {
                        pending.insert(match ev {
                            Ev::ComputeDone { worker } => 1 + *worker as u64,
                            Ev::CostTimeout => 0,
                            Ev::Deliver(msg) => msg.fingerprint(),
                        });
                    });
                    fp.push_u64(pending.finish());
                    sched.observe_state(fp.finish());
                }
                let Some(scheduled) = pop_with(&mut queue, sched) else {
                    break;
                };
                match scheduled.event {
                    Ev::ComputeDone { worker } => {
                        if excluded[worker] {
                            // Already accounted at exclusion time; the
                            // worker knows the round moved on without it
                            // and reports nothing.
                            continue;
                        }
                        compute_finished = compute_finished.max(scheduled.time);
                        // Line 4: share the local cost with the master.
                        send(
                            &mut queue,
                            &mut self.latency,
                            &self.plan,
                            &mut stats,
                            &mut *sched,
                            Message {
                                from: NodeId::Worker(worker),
                                to: NodeId::Master,
                                round: t,
                                payload: Payload::LocalCost { cost: local_costs[worker] },
                            },
                        );
                    }
                    Ev::CostTimeout => {
                        if !coordination_sent && costs_count >= 1 {
                            send_coordination!();
                            if expected_decisions == 0 {
                                finalize_round!();
                            }
                        }
                    }
                    Ev::Deliver(msg) => match msg.payload {
                        Payload::LocalCost { .. } => {
                            let NodeId::Worker(i) = msg.from else {
                                unreachable!("only workers report costs")
                            };
                            if coordination_sent {
                                // Late report after the timeout: the worker
                                // sat this round out.
                                continue;
                            }
                            assert!(!costs_received[i], "duplicate cost report");
                            costs_received[i] = true;
                            costs_count += 1;
                            if costs_count == alive_count {
                                send_coordination!();
                                if expected_decisions == 0 {
                                    finalize_round!();
                                }
                            }
                        }
                        Payload::Coordination { global_cost: l_t, alpha, is_straggler } => {
                            let NodeId::Worker(i) = msg.to else {
                                unreachable!("coordination goes to workers")
                            };
                            if is_straggler {
                                // Line 8: the straggler waits for its share.
                                continue;
                            }
                            // Lines 5-7: risk-averse assistance.
                            let updated = assist_step(&fns[i], self.shares[i], l_t, alpha);
                            send(
                                &mut queue,
                                &mut self.latency,
                                &self.plan,
                                &mut stats,
                                &mut *sched,
                                Message {
                                    from: NodeId::Worker(i),
                                    to: NodeId::Master,
                                    round: t,
                                    payload: Payload::Decision { share: updated },
                                },
                            );
                            // The worker may start the next round as soon
                            // as it committed to its own share.
                            ready_at[i] = scheduled.time;
                        }
                        Payload::Decision { share } => {
                            let NodeId::Worker(i) = msg.from else {
                                unreachable!("only workers send decisions")
                            };
                            assert!(decisions[i].is_none(), "duplicate decision");
                            decisions[i] = Some(share);
                            decisions_count += 1;
                            if decisions_count == expected_decisions {
                                finalize_round!();
                            }
                        }
                        Payload::StragglerAssignment { .. } => {
                            let NodeId::Worker(i) = msg.to else {
                                unreachable!("assignment goes to the straggler")
                            };
                            ready_at[i] = scheduled.time;
                            control_finished = scheduled.time;
                            round_done = true;
                        }
                        _ => {
                            unreachable!("non-master-worker payload in Algorithm 1")
                        }
                    },
                }
            }
            assert!(round_done || n == 1, "protocol deadlocked in round {t}");

            let executed = Allocation::from_update(self.shares.clone())
                .expect("protocol preserves feasibility");
            trace.push(ProtocolRound {
                round: t,
                allocation: executed,
                local_costs,
                global_cost,
                straggler,
                messages: stats.messages,
                bytes: stats.bytes,
                retries: stats.retries,
                acks: stats.acks,
                duplicates: stats.duplicates,
                compute_finished,
                control_finished,
                active: participants.clone(),
                alpha: self.alpha,
            });
            self.shares = next_shares;
        }
        ProtocolTrace { architecture: "master-worker", rounds: trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{FixedLatency, JitteredLatency};
    use dolbie_core::environment::{RotatingStragglerEnvironment, StaticLinearEnvironment};
    use dolbie_core::{run_episode, Dolbie, EpisodeOptions};

    #[test]
    fn message_count_is_3n_per_round() {
        let env = StaticLinearEnvironment::from_slopes(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut sim = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan());
        let trace = sim.run(7);
        for r in &trace.rounds {
            assert_eq!(r.messages, 15, "3N messages per round");
            assert!(r.active.iter().all(|&a| a), "everyone participates");
            assert_eq!(r.retries, 0, "lossless links never retransmit");
            assert_eq!(r.acks, 0, "lossless links send no acks");
        }
        assert_eq!(trace.total_messages(), 7 * 15);
        assert!(trace.total_bytes() > 0);
    }

    #[test]
    fn trajectory_matches_sequential_dolbie() {
        let env = RotatingStragglerEnvironment::new(4, 3, 8.0, 1.0);
        let mut sim = MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan());
        let protocol = sim.run(30);

        let mut sequential = Dolbie::new(4);
        let mut driver = env;
        let reference = run_episode(&mut sequential, &mut driver, EpisodeOptions::new(30));

        for (p, r) in protocol.rounds.iter().zip(&reference.records) {
            assert!(
                p.allocation.l2_distance(&r.allocation) < 1e-9,
                "round {}: protocol {} vs sequential {}",
                p.round,
                p.allocation,
                r.allocation
            );
            assert_eq!(p.straggler, r.straggler, "round {}", p.round);
            assert!((p.global_cost - r.global_cost).abs() < 1e-9);
        }
    }

    #[test]
    fn decisions_are_delay_invariant() {
        // Same environment under wildly different network conditions must
        // produce the same allocation sequence (synchronous protocol).
        let env = StaticLinearEnvironment::from_slopes(vec![5.0, 1.0, 2.0]);
        let fast =
            MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::instant()).run(20);
        let slow = MasterWorkerSim::new(
            env.clone(),
            DolbieConfig::new(),
            JitteredLatency::new(FixedLatency::new(0.5, 1e3), 0.2, 7),
        )
        .run(20);
        for (a, b) in fast.rounds.iter().zip(&slow.rounds) {
            assert!(a.allocation.l2_distance(&b.allocation) < 1e-12);
        }
        // But the wall clock differs.
        assert!(slow.makespan() > fast.makespan());
    }

    #[test]
    fn decisions_survive_lossy_links_unchanged() {
        // Message loss delays rounds (retransmissions) but the protocol is
        // synchronous: the allocation sequence is bit-identical.
        let env = StaticLinearEnvironment::from_slopes(vec![5.0, 1.0, 2.0, 3.0]);
        let clean =
            MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(20);
        let lossy = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(
                FaultPlan::seeded(42).with_drop_probability(0.3).with_duplicate_probability(0.1),
            )
            .run(20);
        for (a, b) in clean.rounds.iter().zip(&lossy.rounds) {
            assert!(a.allocation.l2_distance(&b.allocation) == 0.0, "round {}", a.round);
            assert_eq!(a.messages, b.messages, "logical message counts agree");
        }
        assert!(lossy.total_retries() > 0, "30% loss must retransmit");
        assert!(lossy.total_acks() >= lossy.total_messages(), "every delivery acked");
        assert!(lossy.total_bytes() > clean.total_bytes());
        assert!(lossy.makespan() > clean.makespan(), "retransmission waits cost wall-clock");
    }

    #[test]
    fn empty_fault_plan_reproduces_the_plain_trace_bitwise() {
        let env = StaticLinearEnvironment::from_slopes(vec![3.0, 1.0, 2.0]);
        let plain =
            MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(15);
        let planned = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(FaultPlan::none())
            .run(15);
        for (a, b) in plain.rounds.iter().zip(&planned.rounds) {
            for (x, y) in a.allocation.iter().zip(b.allocation.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(a.messages, b.messages);
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.compute_finished.to_bits(), b.compute_finished.to_bits());
            assert_eq!(a.control_finished.to_bits(), b.control_finished.to_bits());
        }
    }

    #[test]
    fn control_overhead_is_positive_with_real_latency() {
        let env = StaticLinearEnvironment::from_slopes(vec![2.0, 1.0]);
        let mut sim = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan());
        let trace = sim.run(5);
        for r in &trace.rounds {
            assert!(r.control_overhead() > 0.0);
            assert!(r.control_finished >= r.compute_finished);
        }
    }

    #[test]
    fn global_cost_decreases_on_static_instance() {
        let env = StaticLinearEnvironment::from_slopes(vec![6.0, 1.0, 2.0]);
        let mut sim = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan());
        let trace = sim.run(60);
        let first = trace.rounds.first().unwrap().global_cost;
        let last = trace.rounds.last().unwrap().global_cost;
        assert!(last < first * 0.7, "protocol DOLBIE must improve: {first} -> {last}");
    }

    #[test]
    fn crashed_worker_is_excluded_and_its_share_frozen() {
        let env = StaticLinearEnvironment::from_slopes(vec![4.0, 1.0, 2.0, 1.5]);
        let crash = Crash { worker: 1, from_round: 5, until_round: 12 };
        let mut sim =
            MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan()).with_crash(crash);
        let trace = sim.run(25);
        let frozen_share = trace.rounds[5].allocation.share(1);
        for t in 5..12 {
            let r = &trace.rounds[t];
            assert!(!r.active[1], "round {t}: crashed worker must not participate");
            assert!(
                (r.allocation.share(1) - frozen_share).abs() < 1e-12,
                "round {t}: crashed worker's share must be frozen"
            );
            // Fewer protocol messages while one worker is out.
            assert_eq!(r.messages, 3 * 3, "3 * |active| messages");
            let sum: f64 = r.allocation.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        // After recovery the worker participates and regains work.
        assert!(trace.rounds[24].active[1]);
        assert!(
            trace.rounds[24].allocation.share(1) > frozen_share,
            "the fast worker should win back work after recovering"
        );
    }

    #[test]
    fn cost_timeout_excludes_an_extreme_straggler() {
        // Worker 0 takes ~4 s per round; with a 1 s timeout the master
        // proceeds without it.
        let env = StaticLinearEnvironment::from_slopes(vec![16.0, 1.0, 1.0, 1.0]);
        let mut sim = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_cost_timeout(1.0);
        let trace = sim.run(10);
        let first = &trace.rounds[0];
        assert!(!first.active[0], "the slow worker times out");
        assert!(first.active[1] && first.active[2] && first.active[3]);
        // The round completes in ~1 s + protocol, far below worker 0's 4 s.
        assert!(first.control_finished < 2.0, "control at {}", first.control_finished);
        let sum: f64 = trace.rounds.last().unwrap().allocation.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn excluded_worker_finishes_its_abandoned_share_before_the_next_round() {
        // Regression (timeout accounting): worker 0 computes 16 * 0.25 =
        // 4 s per round with its frozen share. Its abandoned round-t
        // execution must complete before its round-(t+1) execution starts,
        // so its round-t finish times are ~4, 8, 12, ... — not a constant
        // 4 s as the pre-fix pipelining allowed.
        let env = StaticLinearEnvironment::from_slopes(vec![16.0, 1.0, 1.0, 1.0]);
        let mut sim = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_cost_timeout(1.0);
        let trace = sim.run(5);
        let w0_cost = trace.rounds[0].local_costs[0];
        assert!(w0_cost > 3.9, "worker 0's share stays frozen at ~4 s of work");
        for (t, r) in trace.rounds.iter().enumerate() {
            assert!(!r.active[0], "round {t}: worker 0 always times out");
            // compute_finished includes the excluded worker's abandoned
            // execution, which cannot overlap its previous round's.
            let serialized_floor = (t + 1) as f64 * w0_cost;
            assert!(
                r.compute_finished >= serialized_floor - 1e-9,
                "round {t}: compute finished {} but worker 0 alone needs {}",
                r.compute_finished,
                serialized_floor
            );
        }
    }

    #[test]
    fn timeout_rounds_do_not_book_compute_time_as_control_overhead() {
        // Regression (timeout accounting): the excluded worker computes
        // until long after the decision phase ends, so the round has no
        // idle coordination tail — control_overhead must be 0, not the
        // pre-fix "decision end minus fastest computes" gap.
        let env = StaticLinearEnvironment::from_slopes(vec![16.0, 1.0, 1.0, 1.0]);
        let trace = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_cost_timeout(1.0)
            .run(5);
        for (t, r) in trace.rounds.iter().enumerate() {
            assert!(
                r.compute_finished > r.control_finished,
                "round {t}: the abandoned execution outlasts the decision phase"
            );
            assert_eq!(
                r.control_overhead(),
                0.0,
                "round {t}: compute time must not be attributed to control"
            );
        }
    }

    #[test]
    fn generous_timeout_changes_nothing() {
        let env = StaticLinearEnvironment::from_slopes(vec![3.0, 1.0, 2.0]);
        let plain =
            MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(15);
        let with_timeout = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_cost_timeout(1e6)
            .run(15);
        for (a, b) in plain.rounds.iter().zip(&with_timeout.rounds) {
            assert!(a.allocation.l2_distance(&b.allocation) < 1e-12);
            assert_eq!(a.messages, b.messages);
        }
    }

    #[test]
    fn fully_crashed_round_freezes_shares_and_continues() {
        // Membership collapse: both workers down in round 1. The round
        // freezes every share, exchanges nothing, and the run continues —
        // the graceful-degradation semantics shared by all architectures.
        let env = StaticLinearEnvironment::from_slopes(vec![1.0, 2.0]);
        let mut sim = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_crash(Crash { worker: 0, from_round: 1, until_round: 2 })
            .with_crash(Crash { worker: 1, from_round: 1, until_round: 2 });
        let trace = sim.run(4);
        let dead = &trace.rounds[1];
        assert!(dead.active.iter().all(|&a| !a), "nobody participates");
        assert_eq!(dead.messages, 0, "nothing is exchanged");
        // Round 2 executes the exact shares the dead round froze.
        assert!(dead.allocation.l2_distance(&trace.rounds[2].allocation) < 1e-15);
        let frozen: f64 = dead.allocation.iter().sum();
        assert!((frozen - 1.0).abs() < 1e-9, "frozen shares stay feasible");
        // The cluster resumes balancing afterwards.
        assert!(trace.rounds[3].active.iter().all(|&a| a));
        assert!(trace.rounds[3].messages > 0);
    }

    #[test]
    fn single_survivor_rounds_keep_the_frozen_remainder() {
        // alive_count == 1: the lone responder is trivially the straggler
        // and absorbs the remainder of the frozen shares — the same
        // degradation the leaderless architectures implement (asserted in
        // their own lone-survivor tests and the crash-equivalence suites).
        let env = StaticLinearEnvironment::from_slopes(vec![3.0, 1.0, 2.0]);
        let crash_a = Crash { worker: 0, from_round: 4, until_round: 7 };
        let crash_b = Crash { worker: 2, from_round: 4, until_round: 7 };
        let trace = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_crash(crash_a)
            .with_crash(crash_b)
            .run(12);
        let frozen = trace.rounds[4].allocation.share(1);
        for t in 4..7 {
            let r = &trace.rounds[t];
            assert_eq!(r.active, vec![false, true, false], "round {t}: lone survivor");
            assert_eq!(r.straggler, 1, "a lone survivor is trivially the straggler");
            assert!(
                (r.allocation.share(1) - frozen).abs() < 1e-12,
                "round {t}: the survivor's share is stable while alone"
            );
            let sum: f64 = r.allocation.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "round {t}: feasibility through collapse");
        }
        assert!(trace.rounds[11].active.iter().all(|&a| a), "everyone rejoined");
        let mut prev = f64::INFINITY;
        for r in &trace.rounds {
            assert!(r.alpha <= prev, "round {}: alpha rose through collapse", r.round);
            prev = r.alpha;
        }
    }

    #[test]
    fn zero_survivor_rounds_freeze_everything_and_continue() {
        // alive_count == 0: full membership collapse freezes every share,
        // sends nothing, stalls the clock, and the run resumes when the
        // workers come back — mirroring the leaderless architectures.
        let env = StaticLinearEnvironment::from_slopes(vec![3.0, 1.0, 2.0]);
        let trace = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_crash(Crash { worker: 0, from_round: 4, until_round: 7 })
            .with_crash(Crash { worker: 1, from_round: 5, until_round: 6 })
            .with_crash(Crash { worker: 2, from_round: 4, until_round: 7 })
            .run(12);
        // The shares executed in round 4 (produced by round 3's update,
        // when everyone was alive) stay frozen for the whole window.
        let frozen = trace.rounds[4].allocation.clone();
        let dead = &trace.rounds[5];
        assert!(dead.active.iter().all(|&a| !a), "nobody participates");
        assert_eq!(dead.messages, 0, "a dead cluster sends nothing");
        assert_eq!(dead.global_cost, 0.0, "nothing executes");
        let sum: f64 = dead.allocation.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "frozen shares stay feasible");
        for t in 4..7 {
            let r = &trace.rounds[t];
            assert!(
                (r.allocation.share(0) - frozen.share(0)).abs() < 1e-12,
                "round {t}: crashed shares are frozen, not redistributed"
            );
        }
        assert!(trace.rounds[11].active.iter().all(|&a| a), "everyone rejoined");
        let mut prev = f64::INFINITY;
        for r in &trace.rounds {
            assert!(r.alpha <= prev, "round {}: alpha rose through collapse", r.round);
            prev = r.alpha;
        }
    }
}
