//! Per-round records produced by the protocol simulations.

use dolbie_core::Allocation;

/// What one simulated protocol round produced.
#[derive(Debug, Clone)]
pub struct ProtocolRound {
    /// Round index `t` (0-based).
    pub round: usize,
    /// The allocation `x_t` executed this round.
    pub allocation: Allocation,
    /// Per-worker local costs `l_{i,t}` (interpreted as execution seconds).
    pub local_costs: Vec<f64>,
    /// Global cost `l_t`.
    pub global_cost: f64,
    /// The straggler `s_t`.
    pub straggler: usize,
    /// Protocol messages exchanged this round.
    pub messages: usize,
    /// Protocol bytes exchanged this round.
    pub bytes: usize,
    /// Simulated time at which the last worker finished executing.
    pub compute_finished: f64,
    /// Simulated time at which the decision phase completed (every worker
    /// knows its next share).
    pub control_finished: f64,
    /// Which workers participated in the round's decision phase (all true
    /// unless crash/timeout fault injection excluded someone).
    pub active: Vec<bool>,
}

impl ProtocolRound {
    /// The decision-phase overhead: wall-clock spent coordinating after the
    /// last worker finished computing.
    pub fn control_overhead(&self) -> f64 {
        self.control_finished - self.compute_finished
    }
}

/// The full trace of a simulated protocol run.
#[derive(Debug, Clone)]
pub struct ProtocolTrace {
    /// Which architecture produced the trace (`"master-worker"` or
    /// `"fully-distributed"`).
    pub architecture: &'static str,
    /// One record per round.
    pub rounds: Vec<ProtocolRound>,
}

impl ProtocolTrace {
    /// Total messages over the run.
    pub fn total_messages(&self) -> usize {
        self.rounds.iter().map(|r| r.messages).sum()
    }

    /// Total bytes over the run.
    pub fn total_bytes(&self) -> usize {
        self.rounds.iter().map(|r| r.bytes).sum()
    }

    /// The sequence of executed allocations, for trajectory comparisons.
    pub fn allocations(&self) -> Vec<&Allocation> {
        self.rounds.iter().map(|r| &r.allocation).collect()
    }

    /// Total accumulated global cost `Σ_t l_t`.
    pub fn total_cost(&self) -> f64 {
        self.rounds.iter().map(|r| r.global_cost).sum()
    }

    /// Simulated end-to-end wall-clock of the run.
    pub fn makespan(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.control_finished)
    }

    /// Mean per-round decision-phase overhead.
    pub fn mean_control_overhead(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.control_overhead()).sum::<f64>() / self.rounds.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(t: usize, msgs: usize, bytes: usize) -> ProtocolRound {
        ProtocolRound {
            round: t,
            allocation: Allocation::uniform(2),
            local_costs: vec![1.0, 0.5],
            global_cost: 1.0,
            straggler: 0,
            messages: msgs,
            bytes,
            compute_finished: t as f64 + 1.0,
            control_finished: t as f64 + 1.25,
            active: vec![true; 2],
        }
    }

    #[test]
    fn aggregates() {
        let trace = ProtocolTrace {
            architecture: "master-worker",
            rounds: vec![round(0, 6, 100), round(1, 6, 100)],
        };
        assert_eq!(trace.total_messages(), 12);
        assert_eq!(trace.total_bytes(), 200);
        assert_eq!(trace.allocations().len(), 2);
        assert!((trace.total_cost() - 2.0).abs() < 1e-12);
        assert!((trace.makespan() - 2.25).abs() < 1e-12);
        assert!((trace.mean_control_overhead() - 0.25).abs() < 1e-12);
        assert!((trace.rounds[0].control_overhead() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_safe() {
        let trace = ProtocolTrace { architecture: "fully-distributed", rounds: vec![] };
        assert_eq!(trace.makespan(), 0.0);
        assert_eq!(trace.mean_control_overhead(), 0.0);
        assert_eq!(trace.total_messages(), 0);
    }
}
