//! Per-round records produced by the protocol simulations.

use dolbie_core::Allocation;

/// What one simulated protocol round produced.
#[derive(Debug, Clone)]
pub struct ProtocolRound {
    /// Round index `t` (0-based).
    pub round: usize,
    /// The allocation `x_t` executed this round.
    pub allocation: Allocation,
    /// Per-worker local costs `l_{i,t}` (interpreted as execution seconds).
    pub local_costs: Vec<f64>,
    /// Global cost `l_t`.
    pub global_cost: f64,
    /// The straggler `s_t`.
    pub straggler: usize,
    /// Logical protocol messages exchanged this round (the §IV-C counts).
    pub messages: usize,
    /// Wire bytes exchanged this round, including link-layer
    /// retransmissions, duplicates, and acks under a lossy fault plan.
    pub bytes: usize,
    /// Link-layer data retransmissions beyond each message's first
    /// attempt (0 on lossless links).
    pub retries: usize,
    /// Link-layer acknowledgement frames (0 on lossless links).
    pub acks: usize,
    /// Network-duplicated data copies, deduplicated before the protocol
    /// saw them (0 on lossless links).
    pub duplicates: usize,
    /// Simulated time at which the last worker finished executing.
    pub compute_finished: f64,
    /// Simulated time at which the decision phase completed (every worker
    /// knows its next share).
    pub control_finished: f64,
    /// Which workers participated in the round's decision phase (all true
    /// unless crash/timeout fault injection or a membership schedule
    /// excluded someone).
    pub active: Vec<bool>,
    /// The system step size `α` at the end of the round (the master's
    /// state, or the minimum over the workers' local values in the
    /// leaderless architectures). Non-increasing over a run — the eq. (7)
    /// invariant the chaos harness machine-checks through churn.
    pub alpha: f64,
}

impl ProtocolRound {
    /// The decision-phase overhead: wall-clock spent coordinating after the
    /// last worker finished computing.
    ///
    /// Clamped at zero: in a timeout round the excluded worker's abandoned
    /// execution counts toward `compute_finished` and can outlast the
    /// decision phase, in which case the round had no idle coordination
    /// tail at all — compute time is never attributed to control.
    pub fn control_overhead(&self) -> f64 {
        (self.control_finished - self.compute_finished).max(0.0)
    }
}

/// The full trace of a simulated protocol run.
#[derive(Debug, Clone)]
pub struct ProtocolTrace {
    /// Which architecture produced the trace (`"master-worker"` or
    /// `"fully-distributed"`).
    pub architecture: &'static str,
    /// One record per round.
    pub rounds: Vec<ProtocolRound>,
}

impl ProtocolTrace {
    /// Total messages over the run.
    pub fn total_messages(&self) -> usize {
        self.rounds.iter().map(|r| r.messages).sum()
    }

    /// Total bytes over the run.
    pub fn total_bytes(&self) -> usize {
        self.rounds.iter().map(|r| r.bytes).sum()
    }

    /// Total link-layer retransmissions over the run.
    pub fn total_retries(&self) -> usize {
        self.rounds.iter().map(|r| r.retries).sum()
    }

    /// Total link-layer acknowledgement frames over the run.
    pub fn total_acks(&self) -> usize {
        self.rounds.iter().map(|r| r.acks).sum()
    }

    /// Rounds in which at least one worker sat out the decision phase
    /// (crashed or timed out) — the "recovery rounds" of the fault
    /// experiments.
    pub fn degraded_rounds(&self) -> usize {
        self.rounds.iter().filter(|r| r.active.iter().any(|&a| !a)).count()
    }

    /// The sequence of executed allocations, for trajectory comparisons.
    pub fn allocations(&self) -> Vec<&Allocation> {
        self.rounds.iter().map(|r| &r.allocation).collect()
    }

    /// Total accumulated global cost `Σ_t l_t`.
    pub fn total_cost(&self) -> f64 {
        self.rounds.iter().map(|r| r.global_cost).sum()
    }

    /// Simulated end-to-end wall-clock of the run.
    pub fn makespan(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.control_finished)
    }

    /// Mean per-round decision-phase overhead.
    pub fn mean_control_overhead(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.control_overhead()).sum::<f64>() / self.rounds.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(t: usize, msgs: usize, bytes: usize) -> ProtocolRound {
        ProtocolRound {
            round: t,
            allocation: Allocation::uniform(2),
            local_costs: vec![1.0, 0.5],
            global_cost: 1.0,
            straggler: 0,
            messages: msgs,
            bytes,
            retries: 0,
            acks: 0,
            duplicates: 0,
            compute_finished: t as f64 + 1.0,
            control_finished: t as f64 + 1.25,
            active: vec![true; 2],
            alpha: 0.5,
        }
    }

    #[test]
    fn aggregates() {
        let trace = ProtocolTrace {
            architecture: "master-worker",
            rounds: vec![round(0, 6, 100), round(1, 6, 100)],
        };
        assert_eq!(trace.total_messages(), 12);
        assert_eq!(trace.total_bytes(), 200);
        assert_eq!(trace.total_retries(), 0);
        assert_eq!(trace.total_acks(), 0);
        assert_eq!(trace.degraded_rounds(), 0);
        assert_eq!(trace.allocations().len(), 2);
        assert!((trace.total_cost() - 2.0).abs() < 1e-12);
        assert!((trace.makespan() - 2.25).abs() < 1e-12);
        assert!((trace.mean_control_overhead() - 0.25).abs() < 1e-12);
        assert!((trace.rounds[0].control_overhead() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn control_overhead_is_clamped_when_compute_outlasts_control() {
        let mut r = round(0, 3, 10);
        r.compute_finished = 5.0;
        r.control_finished = 1.5;
        assert_eq!(r.control_overhead(), 0.0, "compute time is not control overhead");
    }

    #[test]
    fn degraded_rounds_count_partial_participation() {
        let mut degraded = round(1, 4, 80);
        degraded.active = vec![true, false];
        let trace = ProtocolTrace {
            architecture: "master-worker",
            rounds: vec![round(0, 6, 100), degraded],
        };
        assert_eq!(trace.degraded_rounds(), 1);
    }

    #[test]
    fn empty_trace_is_safe() {
        let trace = ProtocolTrace { architecture: "fully-distributed", rounds: vec![] };
        assert_eq!(trace.makespan(), 0.0);
        assert_eq!(trace.mean_control_overhead(), 0.0);
        assert_eq!(trace.total_messages(), 0);
    }
}
