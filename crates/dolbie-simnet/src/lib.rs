//! # dolbie-simnet
//!
//! The distributed substrate of the DOLBIE reproduction: the paper's two
//! architectures (§IV-B) realized as actual message-passing protocols.
//!
//! - [`MasterWorkerSim`] — Algorithm 1 on a deterministic discrete-event
//!   simulator ([`event::EventQueue`]) with pluggable network latency
//!   ([`latency::LatencyModel`]). `3N` messages per round, `Θ(N)` bytes.
//! - [`FullyDistributedSim`] — Algorithm 2: all-to-all cost/step-size
//!   broadcast, decisions sent only to the straggler. `N(N−1) + (N−1)`
//!   messages per round, `Θ(N²)` bytes, no single point of failure.
//! - [`RingSim`] — an extension architecture: a leaderless token ring
//!   with `2N + 1` messages per round — `2N` when the ring head is itself
//!   the straggler, since no assignment hop is needed — but `O(N)`
//!   protocol depth, trading latency for both low message volume and no
//!   coordinator.
//! - [`ShardedSim`] — the two-level shard tier (extension): M
//!   shard-masters coordinate N/M workers each and a root coordinator
//!   runs the same min-max step over shard aggregates, cutting the
//!   coordinator's fan-in from Θ(N) to O(M) messages per round while
//!   staying bitwise identical to [`MasterWorkerSim`].
//! - [`threaded`] — Algorithm 1 executed across real OS threads over
//!   crossbeam channels, verifying that the protocol is deterministic
//!   under true concurrency.
//! - [`faults::FaultPlan`] — a deterministic, seeded fault-injection plan
//!   (crash windows, per-link drop/duplication probabilities, cost
//!   timeouts) accepted by all three protocol simulators; lossy links are
//!   survived with ack/retry-with-backoff and membership collapse
//!   degrades gracefully (shares freeze, the run continues).
//! - [`membership::MembershipSchedule`] — elastic membership (extension):
//!   a deterministic, seeded schedule of worker leave/join epochs honored
//!   by all three protocol simulators. Departing shares are redistributed
//!   proportionally onto the survivors, joiners enter at share zero and
//!   are grown by the ordinary eq. (5)/(6) updates, and the eq. (7) step
//!   size cap is re-derived against the active member count (never
//!   loosened).
//! - [`latency::DegradedNode`] — latency-side fault injection (slow
//!   links/NICs), used to demonstrate that DOLBIE's *decisions* are
//!   delay-invariant even when the wall clock is not.
//! - [`sched::Scheduler`] — controlled nondeterminism: every event
//!   dequeue, wire-fault coin, crash window, and membership boundary in
//!   the sims is routed through one trait so the `dolbie-mc` model
//!   checker can enumerate interleavings instead of sampling them; the
//!   default [`FifoScheduler`] reproduces the uncontrolled sims bitwise.
//! - [`invariants`] — the five chaos invariants (simplex feasibility, α
//!   monotonicity, no stranded share, architecture agreement,
//!   termination), defined once and consumed by the chaos sweeps and the
//!   model checker alike.
//!
//! All three implementations are tested to produce trajectories identical
//! to the sequential engine in `dolbie-core`, which is what licenses the
//! evaluation crates to use the cheap sequential form.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod event;
pub mod faults;
pub mod fully_distributed;
pub mod invariants;
pub mod latency;
pub mod master_worker;
pub mod membership;
pub mod message;
pub mod ring;
pub mod sched;
pub mod sharded;
pub mod threaded;
pub mod trace;

pub use faults::{Crash, FaultPlan, LinkStats, RetryPolicy};
pub use fully_distributed::FullyDistributedSim;
pub use latency::{DegradedNode, FixedLatency, JitteredLatency, LatencyModel, PerLinkLatency};
pub use master_worker::MasterWorkerSim;
pub use membership::{
    EpochChange, LeaveKind, MembershipChange, MembershipEvent, MembershipSchedule,
    DEFAULT_DETECTION_TIMEOUT,
};
pub use message::{Message, NodeId, Payload};
pub use ring::RingSim;
pub use sched::{DecisionPoint, FifoScheduler, Scheduler};
pub use sharded::{RootTierRound, ShardedRun, ShardedSim};
pub use trace::{ProtocolRound, ProtocolTrace};
