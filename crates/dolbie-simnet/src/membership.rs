//! Seeded, deterministic worker-churn schedules (epoch boundaries).
//!
//! A [`MembershipSchedule`] is the membership analogue of
//! [`FaultPlan`](crate::faults::FaultPlan): a declarative, seeded
//! description of every *epoch boundary* a run crosses. At the start of a
//! round named by the schedule, workers may
//!
//! - **leave** — [`LeaveKind::Graceful`] (announced, costs no detection
//!   time) or [`LeaveKind::CrashDetected`] (survivors discover the
//!   departure through the timeout machinery, which charges them a
//!   detection delay on the simulated clock); either way the departing
//!   worker's share is *redistributed* proportionally over the continuing
//!   members (contrast a `FaultPlan` crash window, which freezes the
//!   share in place for the worker's return);
//! - **join** (or rejoin) — the worker enters at share exactly `0.0` and
//!   is grown by the ordinary eq. (5)/(6) update.
//!
//! All three protocol simulators accept a schedule via
//! `with_membership` and cross boundaries with the same pure
//! re-normalization ([`renormalize_onto_members`]) and the same α rule
//! (`α ← min(α, cap)` with the cap re-derived against the new member
//! count), so their trajectories stay bitwise-identical through churn.
//! How the new view is disseminated is out of scope here — the sims model
//! an out-of-band membership service (e.g. the cluster manager that
//! started the workers); only the *detection* of a crash-style departure
//! costs simulated time.
//!
//! Like fault decisions, random schedules are pure hashes of
//! `(seed, round, worker)` — no stateful RNG — so a schedule is fully
//! determined by its seed regardless of execution order.

use dolbie_core::membership::renormalize_onto_members;

/// How a worker departs at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaveKind {
    /// The worker announces its departure; survivors learn the new view
    /// for free.
    Graceful,
    /// The worker vanishes; survivors discover it via timeout and pay a
    /// detection delay on the simulated clock before the round starts.
    CrashDetected,
}

/// One worker's membership change at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipChange {
    /// The worker leaves the active set; its share is redistributed.
    Leave(LeaveKind),
    /// The worker (re)joins at share exactly `0.0`.
    Join,
}

/// A scheduled membership change: at the start of `round`, `worker`
/// undergoes `change`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// The round at whose start the change takes effect.
    pub round: usize,
    /// The affected worker.
    pub worker: usize,
    /// What happens to it.
    pub change: MembershipChange,
}

/// Detection delay charged to every continuing member when a boundary
/// contains a [`LeaveKind::CrashDetected`] departure and the fault plan
/// sets no [`cost_timeout`](crate::faults::FaultPlan::cost_timeout) to
/// reuse as the detector's deadline.
pub const DEFAULT_DETECTION_TIMEOUT: f64 = 0.25;

/// A seeded, deterministic sequence of epoch boundaries.
///
/// Events are applied in order at the start of their round. Redundant
/// events — a leave for a worker already out, a join for one already in —
/// are no-ops, which keeps shrunken (event-deleted) schedules valid in
/// the chaos harness.
///
/// # Examples
///
/// ```
/// use dolbie_simnet::membership::{LeaveKind, MembershipSchedule};
///
/// let schedule = MembershipSchedule::none()
///     .with_leave(5, 2, LeaveKind::Graceful)
///     .with_join(9, 2);
/// let members = schedule.members_at(4, 6);
/// assert_eq!(members, vec![true, true, false, true]);
/// assert_eq!(schedule.members_at(4, 9), vec![true; 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MembershipSchedule {
    /// Seed the random generator derived this schedule from (0 for
    /// hand-built schedules; carried for reproducer printing).
    pub seed: u64,
    /// The boundary events, in application order.
    pub events: Vec<MembershipEvent>,
}

impl MembershipSchedule {
    /// The empty schedule: the worker set never changes.
    pub fn none() -> Self {
        Self { seed: 0, events: Vec::new() }
    }

    /// Whether the schedule contains no events.
    pub fn is_none(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a leave event (builder style).
    pub fn with_leave(mut self, round: usize, worker: usize, kind: LeaveKind) -> Self {
        self.events.push(MembershipEvent { round, worker, change: MembershipChange::Leave(kind) });
        self.sort_events();
        self
    }

    /// Adds a join/rejoin event (builder style).
    pub fn with_join(mut self, round: usize, worker: usize) -> Self {
        self.events.push(MembershipEvent { round, worker, change: MembershipChange::Join });
        self.sort_events();
        self
    }

    fn sort_events(&mut self) {
        self.events.sort_by_key(|e| (e.round, e.worker));
    }

    /// Generates a random schedule over `n` workers and `rounds` rounds:
    /// each round, each member leaves with probability `leave_p` (never
    /// emptying the set; graceful or crash-detected decided by a second
    /// hash bit) and each absentee rejoins with probability `join_p`.
    /// Pure function of the arguments — no stateful RNG.
    pub fn random(seed: u64, n: usize, rounds: usize, leave_p: f64, join_p: f64) -> Self {
        let mut events = Vec::new();
        let mut members = vec![true; n];
        let mut member_count = n;
        for t in 0..rounds {
            for (w, member) in members.iter_mut().enumerate() {
                let u = hash_unit(seed, t as u64, w as u64, 0);
                if *member {
                    if member_count > 1 && u < leave_p {
                        let kind = if hash_unit(seed, t as u64, w as u64, 1) < 0.5 {
                            LeaveKind::Graceful
                        } else {
                            LeaveKind::CrashDetected
                        };
                        events.push(MembershipEvent {
                            round: t,
                            worker: w,
                            change: MembershipChange::Leave(kind),
                        });
                        *member = false;
                        member_count -= 1;
                    }
                } else if u < join_p {
                    events.push(MembershipEvent {
                        round: t,
                        worker: w,
                        change: MembershipChange::Join,
                    });
                    *member = true;
                    member_count += 1;
                }
            }
        }
        Self { seed, events }
    }

    /// Largest worker index any event names, for range validation.
    pub fn max_worker(&self) -> Option<usize> {
        self.events.iter().map(|e| e.worker).max()
    }

    /// Validates the schedule against a fleet of `n` workers: every named
    /// worker must exist and folding the events from the all-member state
    /// must never empty the active set.
    ///
    /// # Panics
    ///
    /// Panics on either violation.
    pub fn validate(&self, n: usize) {
        if let Some(max) = self.max_worker() {
            assert!(max < n, "membership event names worker {max}, fleet has {n}");
        }
        let mut members = vec![true; n];
        let mut rounds: Vec<usize> = self.events.iter().map(|e| e.round).collect();
        rounds.dedup();
        for t in rounds {
            self.apply_round(t, &mut members);
            assert!(
                members.iter().any(|&m| m),
                "membership schedule empties the worker set at round {t}"
            );
        }
    }

    /// Applies all events scheduled for the start of `round` to the
    /// member mask, reporting whether the view changed and whether any
    /// departure was crash-detected (costing detection time).
    pub fn apply_round(&self, round: usize, members: &mut [bool]) -> EpochChange {
        let mut change = EpochChange { changed: false, crash_detected: false };
        for event in self.events.iter().filter(|e| e.round == round) {
            let w = event.worker;
            match event.change {
                MembershipChange::Leave(kind) => {
                    if members[w] {
                        members[w] = false;
                        change.changed = true;
                        change.crash_detected |= kind == LeaveKind::CrashDetected;
                    }
                }
                MembershipChange::Join => {
                    if !members[w] {
                        members[w] = true;
                        change.changed = true;
                    }
                }
            }
        }
        change
    }

    /// [`apply_round`](Self::apply_round) with each event's firing gated
    /// by a [`Scheduler`](crate::sched::Scheduler) decision (default:
    /// it fires), so a model checker can branch on every join/leave
    /// boundary. A leave whose firing would empty the member set — only
    /// reachable on a branch where the scheduler previously held back a
    /// join, never on the all-default path of a
    /// [`validate`](Self::validate)d schedule — is force-skipped without
    /// consulting the scheduler, keeping controlled runs inside the
    /// non-empty-membership domain the epoch transition is defined on.
    pub fn apply_round_sched(
        &self,
        round: usize,
        members: &mut [bool],
        sched: &mut dyn crate::sched::Scheduler,
    ) -> EpochChange {
        use crate::sched::DecisionPoint;
        let mut change = EpochChange { changed: false, crash_detected: false };
        for event in self.events.iter().filter(|e| e.round == round) {
            let w = event.worker;
            match event.change {
                MembershipChange::Leave(kind) => {
                    if members[w] {
                        let sole_member = members.iter().filter(|&&m| m).count() == 1;
                        let fires = !sole_member
                            && sched.decide(
                                DecisionPoint::Membership { round, worker: w, join: false },
                                true,
                            );
                        if fires {
                            members[w] = false;
                            change.changed = true;
                            change.crash_detected |= kind == LeaveKind::CrashDetected;
                        }
                    }
                }
                MembershipChange::Join => {
                    if !members[w]
                        && sched.decide(
                            DecisionPoint::Membership { round, worker: w, join: true },
                            true,
                        )
                    {
                        members[w] = true;
                        change.changed = true;
                    }
                }
            }
        }
        change
    }

    /// The member mask in effect *during* `round` (events with
    /// `event.round <= round` applied to the all-member initial state)
    /// over a fleet of `n` workers.
    pub fn members_at(&self, n: usize, round: usize) -> Vec<bool> {
        let mut members = vec![true; n];
        for t in self.events.iter().map(|e| e.round).filter(|&t| t <= round) {
            self.apply_round(t, &mut members);
        }
        members
    }
}

/// What a boundary did to the view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochChange {
    /// Whether any membership flag flipped.
    pub changed: bool,
    /// Whether any departure was crash-detected.
    pub crash_detected: bool,
}

/// A pure hash of `(seed, round, worker, salt)` mapped to `[0, 1)`,
/// mirroring the `FaultPlan` decision hash.
fn hash_unit(seed: u64, round: u64, worker: u64, salt: u64) -> f64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for word in [round, worker, salt] {
        h = splitmix64(h ^ word);
    }
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The shared epoch-boundary state transition every simulator runs when
/// the view changes: re-normalize the shares onto the new member simplex
/// and shrink the step size(s) to the cap re-derived against the new
/// member count. `local_alphas` is the per-worker α state (one entry for
/// the master-worker sim); `previous_members` is the view *before* the
/// boundary. Returns the synchronized α every member holds afterwards.
///
/// The sync rule — take the minimum over the *outgoing* members' local
/// values, then `min` with the new cap, and install it everywhere —
/// matches what an explicit view-change round would compute (the FD/ring
/// consensus already folds a min over participant α values every round),
/// and is what keeps the three architectures' α state, and therefore
/// their trajectories, bitwise-identical through churn.
pub(crate) fn epoch_transition(
    shares: &mut [f64],
    local_alphas: &mut [f64],
    previous_members: &[bool],
    members: &[bool],
) -> f64 {
    renormalize_onto_members(shares, members);
    let mut sync = f64::INFINITY;
    for (&a, &m) in local_alphas.iter().zip(previous_members) {
        if m && a < sync {
            sync = a;
        }
    }
    if !sync.is_finite() {
        // Single-alpha callers (master-worker) pass an all-true previous
        // mask, so this only triggers on a degenerate empty previous view.
        sync = local_alphas.iter().copied().fold(f64::INFINITY, f64::min);
    }
    let alpha = sync.min(dolbie_core::membership::membership_alpha_cap(shares, members));
    local_alphas.fill(alpha);
    alpha
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_events_apply_in_order() {
        let s = MembershipSchedule::none()
            .with_join(8, 1)
            .with_leave(3, 1, LeaveKind::Graceful)
            .with_leave(3, 2, LeaveKind::CrashDetected);
        assert_eq!(s.events[0].round, 3);
        let mut members = vec![true; 4];
        let change = s.apply_round(3, &mut members);
        assert!(change.changed && change.crash_detected);
        assert_eq!(members, vec![true, false, false, true]);
        let change = s.apply_round(8, &mut members);
        assert!(change.changed && !change.crash_detected);
        assert_eq!(members, vec![true, true, false, true]);
    }

    #[test]
    fn redundant_events_are_no_ops() {
        let s = MembershipSchedule::none().with_join(0, 1).with_leave(2, 3, LeaveKind::Graceful);
        let mut members = vec![true; 4];
        // Join for a present worker: nothing happens.
        assert_eq!(
            s.apply_round(0, &mut members),
            EpochChange { changed: false, crash_detected: false }
        );
        members[3] = false;
        // Leave for an absent worker: nothing happens.
        assert_eq!(
            s.apply_round(2, &mut members),
            EpochChange { changed: false, crash_detected: false }
        );
    }

    #[test]
    fn random_schedules_are_deterministic_and_never_empty() {
        for seed in 0..32u64 {
            let a = MembershipSchedule::random(seed, 6, 40, 0.2, 0.3);
            let b = MembershipSchedule::random(seed, 6, 40, 0.2, 0.3);
            assert_eq!(a, b, "same seed, same schedule");
            a.validate(6);
            for t in 0..40 {
                assert!(a.members_at(6, t).iter().any(|&m| m), "seed {seed} empties at {t}");
            }
        }
        let a = MembershipSchedule::random(1, 6, 40, 0.2, 0.3);
        let b = MembershipSchedule::random(2, 6, 40, 0.2, 0.3);
        assert_ne!(a, b, "different seeds diverge");
    }

    #[test]
    fn random_schedules_do_churn() {
        let s = MembershipSchedule::random(7, 8, 60, 0.1, 0.3);
        let leaves =
            s.events.iter().filter(|e| matches!(e.change, MembershipChange::Leave(_))).count();
        let joins = s.events.iter().filter(|e| e.change == MembershipChange::Join).count();
        assert!(leaves > 0 && joins > 0, "schedule must contain both leaves and joins");
        let kinds: Vec<_> = s
            .events
            .iter()
            .filter_map(|e| match e.change {
                MembershipChange::Leave(k) => Some(k),
                MembershipChange::Join => None,
            })
            .collect();
        assert!(kinds.contains(&LeaveKind::Graceful) || kinds.contains(&LeaveKind::CrashDetected));
    }

    #[test]
    #[should_panic(expected = "names worker")]
    fn out_of_range_worker_is_rejected() {
        MembershipSchedule::none().with_leave(0, 9, LeaveKind::Graceful).validate(4);
    }

    #[test]
    #[should_panic(expected = "empties the worker set")]
    fn emptying_schedule_is_rejected() {
        MembershipSchedule::none()
            .with_leave(1, 0, LeaveKind::Graceful)
            .with_leave(1, 1, LeaveKind::CrashDetected)
            .validate(2);
    }

    #[test]
    fn epoch_transition_syncs_alphas_and_never_raises_them() {
        let mut shares = vec![0.4, 0.35, 0.25];
        let mut alphas = vec![0.2, 0.05, 0.4];
        let previous = vec![true, true, true];
        let members = vec![true, false, true];
        let alpha = epoch_transition(&mut shares, &mut alphas, &previous, &members);
        // The departing worker 1 held the minimum α = 0.05; the sync must
        // preserve it (α never increases across a boundary).
        assert!(alpha <= 0.05);
        assert!(alphas.iter().all(|&a| a == alpha));
        assert_eq!(shares[1], 0.0);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
