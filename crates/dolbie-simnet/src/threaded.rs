//! A real concurrent runtime for master-worker DOLBIE.
//!
//! Where [`MasterWorkerSim`](crate::MasterWorkerSim) simulates time, this
//! module actually runs Algorithm 1 across OS threads connected by
//! channels: one thread per worker plus the master on the calling thread.
//! Workers hold only their own share and their own revealed cost function —
//! the privacy property of §IV-B — and exchange exactly the scalars the
//! algorithm prescribes.
//!
//! The trajectory is verified (in tests) to match the sequential engine,
//! demonstrating that DOLBIE's decision logic is deterministic under real
//! concurrency: the protocol has a full barrier per phase, so thread
//! interleaving cannot change the outcome.
//!
//! Worker failure is detected, not waited out: each worker reports over its
//! own channel, so a worker thread that dies mid-round (e.g. a panicking
//! cost function) drops its sender and the master surfaces a structured
//! [`ThreadedError`] instead of blocking forever on a channel that can no
//! longer produce a message.

use crate::coordinator::{assist_step, tighten_alpha};
use crossbeam_channel::{unbounded, Receiver, Sender};
use dolbie_core::cost::DynCost;
use dolbie_core::{Allocation, DolbieConfig, Environment};
use std::thread;

/// Master → worker traffic.
enum ToWorker {
    /// Start a round with the worker's revealed cost function.
    Round { cost_fn: DynCost },
    /// Line 12 of Algorithm 1.
    Coordination { global_cost: f64, alpha: f64, is_straggler: bool },
    /// Line 15 of Algorithm 1 (straggler only).
    Assignment { share: f64 },
    /// End of run.
    Shutdown,
}

/// Worker → master traffic.
enum ToMaster {
    /// Line 4 of Algorithm 1.
    LocalCost { worker: usize, cost: f64 },
    /// Line 7 of Algorithm 1.
    Decision { worker: usize, share: f64 },
}

/// A failure of the threaded runtime, surfaced instead of a hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadedError {
    /// A worker thread died mid-run (its channel disconnected) — most
    /// commonly a panicking cost function. Names the worker and the round
    /// in which the master noticed.
    WorkerDisconnected {
        /// The worker whose channel went dead.
        worker: usize,
        /// The round the master was coordinating when it noticed.
        round: usize,
    },
}

impl std::fmt::Display for ThreadedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WorkerDisconnected { worker, round } => write!(
                f,
                "worker {worker} disconnected in round {round} (its thread panicked or exited)"
            ),
        }
    }
}

impl std::error::Error for ThreadedError {}

/// One round's outcome as recorded by the master.
#[derive(Debug, Clone)]
pub struct ThreadedRound {
    /// Round index.
    pub round: usize,
    /// The allocation executed this round.
    pub allocation: Allocation,
    /// Per-worker local costs.
    pub local_costs: Vec<f64>,
    /// Global cost.
    pub global_cost: f64,
    /// The straggler.
    pub straggler: usize,
}

/// Runs master-worker DOLBIE over real threads for `rounds` rounds and
/// returns the per-round records.
///
/// Each worker reports over a dedicated channel; a worker thread that
/// panics mid-round is detected through its disconnected channel and
/// reported as [`ThreadedError::WorkerDisconnected`] — the master never
/// blocks on a dead worker, and the surviving threads are shut down before
/// the error is returned.
///
/// # Panics
///
/// Panics if the environment has no workers or reveals the wrong number of
/// cost functions (protocol misuse, not a runtime fault).
///
/// # Examples
///
/// ```
/// use dolbie_simnet::threaded::run_threaded_master_worker;
/// use dolbie_core::environment::StaticLinearEnvironment;
/// use dolbie_core::DolbieConfig;
///
/// let env = StaticLinearEnvironment::from_slopes(vec![3.0, 1.0]);
/// let rounds = run_threaded_master_worker(env, DolbieConfig::new(), 5).unwrap();
/// assert_eq!(rounds.len(), 5);
/// ```
pub fn run_threaded_master_worker<E: Environment>(
    mut env: E,
    config: DolbieConfig,
    rounds: usize,
) -> Result<Vec<ThreadedRound>, ThreadedError> {
    let n = env.num_workers();
    assert!(n > 0, "at least one worker required");

    let mut to_worker_txs: Vec<Sender<ToWorker>> = Vec::with_capacity(n);
    let mut from_worker_rxs: Vec<Receiver<ToMaster>> = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);

    for worker_id in 0..n {
        let (tx, rx): (Sender<ToWorker>, Receiver<ToWorker>) = unbounded();
        let (reply_tx, reply_rx): (Sender<ToMaster>, Receiver<ToMaster>) = unbounded();
        to_worker_txs.push(tx);
        from_worker_rxs.push(reply_rx);
        let initial_share = 1.0 / n as f64;
        handles.push(thread::spawn(move || {
            worker_loop(worker_id, initial_share, rx, reply_tx);
        }));
    }

    let result = drive_master(&mut env, config, rounds, n, &to_worker_txs, &from_worker_rxs);

    // Wind the fleet down on both paths: drop the senders so any healthy
    // worker's `recv` disconnects and its loop exits, then reap the
    // threads. A panicked worker's `join` error is expected on the error
    // path and deliberately discarded — the structured error carries the
    // diagnosis.
    for tx in &to_worker_txs {
        let _ = tx.send(ToWorker::Shutdown);
    }
    drop(to_worker_txs);
    for handle in handles {
        let _ = handle.join();
    }
    result
}

/// The master's round loop, separated so cleanup runs on every exit path.
fn drive_master<E: Environment>(
    env: &mut E,
    config: DolbieConfig,
    rounds: usize,
    n: usize,
    to_worker_txs: &[Sender<ToWorker>],
    from_worker_rxs: &[Receiver<ToMaster>],
) -> Result<Vec<ThreadedRound>, ThreadedError> {
    let initial = Allocation::uniform(n);
    let mut alpha = config.resolve_initial_alpha(&initial);
    // The master mirrors the share vector only to produce the trace and the
    // straggler assignment; each worker is authoritative for its own share.
    let mut shares = initial.into_inner();
    let mut records = Vec::with_capacity(rounds);

    for t in 0..rounds {
        let dead = |worker: usize| ThreadedError::WorkerDisconnected { worker, round: t };
        let mut fns = env.reveal(t);
        assert_eq!(fns.len(), n, "environment must cover every worker");
        // Hand each worker its revealed cost function for the round.
        for (worker, cost_fn) in fns.drain(..).enumerate().rev() {
            to_worker_txs[worker].send(ToWorker::Round { cost_fn }).map_err(|_| dead(worker))?;
        }
        // Lines 9-11: collect local costs, each worker on its own channel —
        // a dead worker disconnects instead of silencing a shared queue.
        let mut local_costs = vec![0.0f64; n];
        for (worker, rx) in from_worker_rxs.iter().enumerate() {
            match rx.recv().map_err(|_| dead(worker))? {
                ToMaster::LocalCost { worker: reporter, cost } => {
                    debug_assert_eq!(reporter, worker);
                    local_costs[worker] = cost;
                }
                ToMaster::Decision { .. } => unreachable!("decision before coordination"),
            }
        }
        let mut global_cost = f64::MIN;
        let mut straggler = 0usize;
        for (j, &c) in local_costs.iter().enumerate() {
            if c > global_cost {
                global_cost = c;
                straggler = j;
            }
        }
        // Line 12.
        for (j, tx) in to_worker_txs.iter().enumerate() {
            tx.send(ToWorker::Coordination { global_cost, alpha, is_straggler: j == straggler })
                .map_err(|_| dead(j))?;
        }
        // Lines 13-14.
        let mut next_shares = shares.clone();
        let mut others = 0.0;
        for (worker, rx) in from_worker_rxs.iter().enumerate() {
            if worker == straggler {
                continue;
            }
            match rx.recv().map_err(|_| dead(worker))? {
                ToMaster::Decision { worker: reporter, share } => {
                    debug_assert_eq!(reporter, worker);
                    others += share;
                    next_shares[worker] = share;
                }
                ToMaster::LocalCost { .. } => unreachable!("stale cost report"),
            }
        }
        let s_share = (1.0 - others).max(0.0);
        next_shares[straggler] = s_share;
        // Line 15.
        to_worker_txs[straggler]
            .send(ToWorker::Assignment { share: s_share })
            .map_err(|_| dead(straggler))?;
        // Line 16 / eq. (7).
        alpha = tighten_alpha(alpha, n, s_share);

        let executed =
            Allocation::from_update(shares.clone()).expect("protocol preserves feasibility");
        shares = next_shares;
        records.push(ThreadedRound {
            round: t,
            allocation: executed,
            local_costs,
            global_cost,
            straggler,
        });
    }
    Ok(records)
}

fn worker_loop(worker_id: usize, mut share: f64, rx: Receiver<ToWorker>, master: Sender<ToMaster>) {
    let mut current_fn: Option<DynCost> = None;
    // A disconnected channel in either direction means the master is gone
    // (run aborted); exit quietly instead of panicking the worker too.
    loop {
        let Ok(message) = rx.recv() else { return };
        match message {
            ToWorker::Round { cost_fn } => {
                // Lines 1-4: execute, observe the local cost, report it.
                let cost = cost_fn.eval(share);
                current_fn = Some(cost_fn);
                if master.send(ToMaster::LocalCost { worker: worker_id, cost }).is_err() {
                    return;
                }
            }
            ToWorker::Coordination { global_cost, alpha, is_straggler } => {
                if is_straggler {
                    // Line 8: wait for the assignment.
                    continue;
                }
                // Lines 5-7: risk-averse assistance.
                let f = current_fn.as_ref().expect("round started before coordination");
                share = assist_step(f, share, global_cost, alpha);
                if master.send(ToMaster::Decision { worker: worker_id, share }).is_err() {
                    return;
                }
            }
            ToWorker::Assignment { share: assigned } => {
                share = assigned;
            }
            ToWorker::Shutdown => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dolbie_core::cost::CostFunction;
    use dolbie_core::environment::{
        FnEnvironment, RotatingStragglerEnvironment, StaticLinearEnvironment,
    };
    use dolbie_core::{run_episode, Dolbie, EpisodeOptions};

    #[test]
    fn threaded_trajectory_matches_sequential() {
        let env = RotatingStragglerEnvironment::new(6, 3, 9.0, 1.0);
        let threaded = run_threaded_master_worker(env.clone(), DolbieConfig::new(), 25).unwrap();
        let mut sequential = Dolbie::new(6);
        let mut driver = env;
        let reference = run_episode(&mut sequential, &mut driver, EpisodeOptions::new(25));
        assert_eq!(threaded.len(), 25);
        for (p, r) in threaded.iter().zip(&reference.records) {
            assert!(
                p.allocation.l2_distance(&r.allocation) < 1e-9,
                "round {}: threaded {} vs sequential {}",
                p.round,
                p.allocation,
                r.allocation
            );
            // Straggler identity is only well-defined when the max is
            // unique; under exact cost ties any argmax is a valid straggler
            // and 1-ulp renormalization differences may break ties apart.
            let max = r.local_costs.iter().cloned().fold(f64::MIN, f64::max);
            let near_max = r.local_costs.iter().filter(|&&c| (c - max).abs() < 1e-9).count();
            if near_max == 1 {
                assert_eq!(p.straggler, r.straggler, "round {}", p.round);
            }
            assert!((p.global_cost - r.global_cost).abs() < 1e-9);
        }
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let env = StaticLinearEnvironment::from_slopes(vec![4.0, 1.0, 2.0]);
        let a = run_threaded_master_worker(env.clone(), DolbieConfig::new(), 15).unwrap();
        let b = run_threaded_master_worker(env, DolbieConfig::new(), 15).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!(x.allocation.l2_distance(&y.allocation) < 1e-15);
        }
    }

    #[test]
    fn many_workers_terminate_cleanly() {
        let env = StaticLinearEnvironment::from_slopes((1..=32).map(|i| i as f64).collect());
        let rounds = run_threaded_master_worker(env, DolbieConfig::new(), 5).unwrap();
        assert_eq!(rounds.len(), 5);
        // Costs improve even in 5 rounds on a static instance.
        assert!(rounds.last().unwrap().global_cost <= rounds[0].global_cost);
    }

    #[test]
    fn single_worker_degenerates_gracefully() {
        let env = StaticLinearEnvironment::from_slopes(vec![2.0]);
        let rounds = run_threaded_master_worker(env, DolbieConfig::new(), 3).unwrap();
        for r in &rounds {
            assert_eq!(r.allocation.share(0), 1.0);
            assert_eq!(r.straggler, 0);
        }
    }

    /// A cost function that panics when evaluated — the trigger for the
    /// worker-thread-death regression below.
    #[derive(Debug)]
    struct PanickingCost;

    impl CostFunction for PanickingCost {
        fn eval(&self, _share: f64) -> f64 {
            panic!("injected cost-function panic");
        }

        fn max_share_within(&self, _budget: f64) -> Option<f64> {
            None
        }
    }

    /// Regression: a worker thread that panics mid-round must surface as a
    /// structured error naming the worker, not hang the master forever on
    /// a channel that will never produce a message.
    #[test]
    fn panicking_worker_is_reported_not_hung() {
        let env = FnEnvironment::new(3, |round| {
            (0..3)
                .map(|i| {
                    if round == 2 && i == 1 {
                        Box::new(PanickingCost) as DynCost
                    } else {
                        Box::new(dolbie_core::cost::LinearCost::new(1.0 + i as f64, 0.0)) as DynCost
                    }
                })
                .collect()
        });
        let err = run_threaded_master_worker(env, DolbieConfig::new(), 10)
            .expect_err("a dead worker must fail the run");
        assert_eq!(err, ThreadedError::WorkerDisconnected { worker: 1, round: 2 });
        assert!(err.to_string().contains("worker 1"), "error names the worker: {err}");
    }
}
